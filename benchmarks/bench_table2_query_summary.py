"""Table II — per-query selectivity and GROUP-BY subgroup statistics."""

from repro.experiments import table2_summary


def test_table2_query_summary(benchmark, query_records, publish):
    rows = benchmark.pedantic(
        lambda: table2_summary.table2_rows(query_records), rounds=1, iterations=1
    )
    publish("table2_query_summary", table2_summary.render(query_records))
    assert len(rows) == 13
    by_query = {row[0]: row for row in rows}
    # Q1.x perform a single PIM aggregation in every PIM configuration.
    for name in ("Q1.1", "Q1.2", "Q1.3"):
        assert by_query[name][4] == 1  # one_xb
        assert by_query[name][6] == 1  # pimdb
    # GROUP-BY queries enumerate more than one candidate subgroup.
    assert by_query["Q3.1"][2] >= 100
    assert by_query["Q2.1"][2] >= 100
