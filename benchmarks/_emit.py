"""Re-export of the shared trajectory-artifact envelope for bench scripts.

The implementation lives in :mod:`repro.experiments.emit` (importable from
library code); bench scripts that want to write a ``BENCH_*.json`` artifact
import from here so the benchmarks directory has one obvious entry point.
"""

from repro.experiments.emit import (
    SCHEMA_VERSION,
    git_revision,
    make_artifact,
    write_artifact,
)

__all__ = ["SCHEMA_VERSION", "git_revision", "make_artifact", "write_artifact"]
