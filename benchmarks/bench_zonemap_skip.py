"""Zone-map crossbar skipping — pruned vs broadcast execution.

As a pytest benchmark this runs selective point/range queries (plus an
unclustered control) over a day-clustered relation with zone-map pruning on
and off, on both simulation backends, gating bit-exact rows everywhere
(including after a DML interlude that exercises the maintenance hooks),
strictly fewer crossbars scanned and a >=2x modelled-latency reduction on
the selective queries, and shard-level skipping through a K=4 sharded
service.  It writes the ``BENCH_planner.json`` trajectory artifact at the
repository root and is also runnable as a plain script for CI::

    PYTHONPATH=src python benchmarks/bench_zonemap_skip.py
"""

import pathlib
import sys

from repro.experiments import zonemap_skip

ARTIFACT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_planner.json"

MIN_SPEEDUP = 2.0


def test_zonemap_skip(benchmark, publish):
    results = benchmark.pedantic(
        lambda: zonemap_skip.run_zonemap_skip(), rounds=1, iterations=1
    )
    publish("zonemap_skip", zonemap_skip.render(results))
    zonemap_skip.write_artifact(results, ARTIFACT_PATH)
    assert results.bit_exact
    assert results.strictly_fewer_scanned
    assert results.maintenance_charged
    assert results.shards_skipped > 0
    # Acceptance gate: the measured minimum over the selective queries is
    # ~2.4x (the point query reaches ~2.9x), so the headroom over the 2x
    # gate is real but bounded — investigate a regression, don't lower it.
    assert results.min_selective_speedup() >= MIN_SPEEDUP


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--records", type=int, default=65536,
        help="stored relation size (two 2 MB pages at the default)",
    )
    parser.add_argument(
        "--timing-scale", type=float, default=zonemap_skip.DEFAULT_TIMING_SCALE,
        help="modelled-relation extrapolation factor",
    )
    parser.add_argument(
        "--shards", type=int, default=4,
        help="shard count of the shard-skipping demonstration",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=MIN_SPEEDUP,
        help="fail unless every selective query's modelled latency improves "
             "by this factor under pruning (0 disables the check)",
    )
    parser.add_argument(
        "--artifact", default=str(ARTIFACT_PATH),
        help="path of the BENCH_planner.json trajectory artifact",
    )
    args = parser.parse_args(argv)

    results = zonemap_skip.run_zonemap_skip(
        records=args.records,
        timing_scale=args.timing_scale,
        shards=args.shards,
    )
    print(zonemap_skip.render(results))
    zonemap_skip.write_artifact(results, args.artifact)
    print(f"wrote {args.artifact}")
    if not results.bit_exact:
        print("FAIL: pruned execution diverged from the broadcast execution")
        return 1
    if not results.strictly_fewer_scanned:
        print("FAIL: pruning did not reduce the crossbars scanned")
        return 1
    if not results.maintenance_charged:
        print("FAIL: DML charged no zone-map maintenance time")
        return 1
    if results.shards_skipped <= 0:
        print("FAIL: the sharded service skipped no shard")
        return 1
    if args.min_speedup and results.min_selective_speedup() < args.min_speedup:
        print(
            f"FAIL: min selective modelled speedup "
            f"{results.min_selective_speedup():.2f}x below {args.min_speedup}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
