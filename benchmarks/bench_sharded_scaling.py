"""Sharded scatter-gather scaling — the 13 SSB queries at K = 1, 2, 4.

As a pytest benchmark this runs the scaling sweep and asserts the
acceptance criteria: sharded results bit-exact with the unsharded engine and
the NumPy reference, modelled latency improving monotonically from K=1 to
K=4 (max-over-shards plus a merge term, never the sum), and the cost
accounting intact — per-row wear identical, total energy never above the
unsharded run, and dynamic energy on the planner-free scalar queries
conserved to within 0.1%.  It is also runnable as a plain script::

    PYTHONPATH=src python benchmarks/bench_sharded_scaling.py
"""

import sys

from repro.experiments import sharded_scaling


def _assert_accounting(results, min_speedup: float) -> None:
    largest = max(results.shard_counts)
    assert results.bit_exact
    assert results.latency_monotonic
    assert results.speedup(largest) >= min_speedup
    for shards in results.shard_counts:
        # Sharding redistributes work; it must not inflate the bill.  Total
        # energy may drop (shorter broadcast windows shrink the static
        # controller term; per-shard planners may prefer host-gb) but the
        # dynamic energy of the scalar queries is a strict conservation law.
        assert results.energy_ratio(shards) <= 1.05, shards
        assert results.wear_ratio(shards) <= 1.001, shards
        assert 0.999 <= results.scalar_dynamic_energy_ratio(shards) <= 1.001, shards


def test_sharded_scaling(benchmark, publish):
    results = benchmark.pedantic(
        lambda: sharded_scaling.run_scaling(), rounds=1, iterations=1
    )
    publish("sharded_scaling", sharded_scaling.render(results))
    _assert_accounting(results, min_speedup=1.5)
    # K=1 adds only the (sub-microsecond) gather term over unsharded.
    assert results.point(1).total_time_s <= results.unsharded_time_s * 1.001


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--shards", type=int, nargs="+", default=list(sharded_scaling.DEFAULT_SHARD_COUNTS),
        help="shard counts to sweep",
    )
    parser.add_argument(
        "--scale-factor", type=float, default=None,
        help="generated SSB scale factor (default: smallest page-aligned size)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=1.5,
        help="fail unless the largest shard count beats the unsharded "
             "latency by this factor (0 disables the gate)",
    )
    args = parser.parse_args(argv)

    results = sharded_scaling.run_scaling(
        shard_counts=args.shards, scale_factor=args.scale_factor
    )
    print(sharded_scaling.render(results))
    try:
        _assert_accounting(results, min_speedup=args.min_speedup)
    except AssertionError as error:
        print(f"FAIL: sharded scaling acceptance gate: {error!r}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
