"""Fig. 4 — empirical latency modelling of host-gb and pim-gb."""

from repro.experiments import fig4_model


def test_fig4_latency_model(benchmark, publish):
    result = benchmark.pedantic(
        lambda: fig4_model.run_fig4(records=40_000, page_counts=(64, 256, 512)),
        rounds=1, iterations=1,
    )
    publish("fig4_latency_model", fig4_model.render(result))

    # Fig. 4a: host-gb latency grows with the relation size M.
    host = result.fitted.host
    assert host.predict(500, 4, 0.4) > host.predict(100, 4, 0.4)
    # Fig. 4b: the slope grows with r and with s.
    assert host.slope(4, 0.8) > host.slope(4, 0.01)
    assert host.slope(8, 0.4) > host.slope(2, 0.4)
    # Fig. 4c: pim-gb latency grows with M and with n.
    pim = result.fitted.pim
    assert pim.predict(400, 2) > pim.predict(50, 2)
    assert pim.predict(200, 4) >= pim.predict(200, 1)
    # The fitted model agrees with the analytic model used by the engine to
    # within a small factor over the measured range.
    for point in result.host_measurements:
        fitted = host.predict(point.pages, point.reads_per_record, point.read_ratio)
        assert fitted > 0
