"""Table I — architecture and system configuration."""

from repro.experiments import table1_config


def test_table1_configuration(benchmark, publish):
    rows = benchmark.pedantic(table1_config.table1, rounds=1, iterations=1)
    publish("table1_configuration", table1_config.render())
    assert any("Crossbar rows" in row[1] for row in rows)
    assert any("32GB" in row[2] for row in rows)
