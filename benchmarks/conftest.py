"""Shared fixtures for the benchmark harness.

The full evaluation (13 SSB queries x 5 configurations) is executed once per
session and cached; each benchmark file then regenerates one of the paper's
tables or figures from the cached records, times a representative piece of
work with pytest-benchmark, prints the paper-style table and writes it to
``benchmarks/results/``.

The generated SSB scale factor defaults to 0.01 (laptop-sized; costs are
extrapolated to the paper's SF=10) and can be overridden with the
``REPRO_SSB_SF`` environment variable.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.common import build_setup, default_scale_factor, run_all_queries

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ssb_setup():
    """The generated SSB instance and the five configured engines."""
    return build_setup(scale_factor=default_scale_factor())


@pytest.fixture(scope="session")
def query_records(ssb_setup):
    """All (configuration, query) measurements, executed once and verified."""
    return run_all_queries(ssb_setup)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory collecting the rendered tables/figures."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def publish(results_dir):
    """Print a rendered table and persist it under ``benchmarks/results/``."""

    def _publish(name: str, text: str) -> None:
        print()
        print(f"===== {name} =====")
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _publish
