"""Backend speed — the 13 SSB queries on the packed vs boolean backends.

As a pytest benchmark this executes every SSB query gate level (each NOR
primitive applied to the stored bits) on both simulation backends, gates
bit-exactness of the result rows, bit-identical :class:`PimStats`, and a
>=5x wall-clock speedup for the packed backend, and writes the
``BENCH_backend.json`` trajectory artifact at the repository root.  Two
further gates cover the fused kernel pipeline: the warm replay of the 13
compiled filter programs must run >=5x faster fused than dispatched, and
the thread-pooled 4-shard scatter must beat the sequential scatter (>1x).
It is also runnable as a plain script for CI smoke tests::

    PYTHONPATH=src python benchmarks/bench_backend_speed.py
"""

import pathlib
import sys

from repro.experiments import backend_speed

ARTIFACT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_backend.json"

MIN_SPEEDUP = 5.0
MIN_FUSED_SPEEDUP = 5.0
MIN_SCATTER_SPEEDUP = 1.0


def test_backend_speed(benchmark, publish):
    results = benchmark.pedantic(
        lambda: backend_speed.run_backend_speed(), rounds=1, iterations=1
    )
    publish("backend_speed", backend_speed.render(results))
    backend_speed.write_artifact(results, ARTIFACT_PATH)
    assert results.bit_exact
    assert results.stats_identical
    # Acceptance gate on the gate-level (simulation-bound) query path.  The
    # measured total speedup is ~8-9x at both the default and the CI scale
    # factor (individual host-gb-dominated queries dip to ~3.5x), so the
    # headroom over the 5x gate is real but not unlimited — investigate any
    # regression rather than bumping the gate down.
    assert results.speedup >= MIN_SPEEDUP
    # Fused-execution gates: the warm program replay must beat per-operation
    # dispatch by >=5x (measured ~12x), and the thread-pooled kernel scatter
    # must beat the sequential scatter outright (fused kernels release the
    # GIL inside NumPy).  The scatter gate only applies on multi-core hosts
    # — a single core serialises the pool by construction.
    assert results.fused is not None
    assert results.fused.speedup >= MIN_FUSED_SPEEDUP
    assert results.scatter is not None
    assert results.scatter.bits_match
    if results.scatter.gateable:
        assert results.scatter.speedup > MIN_SCATTER_SPEEDUP


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale-factor", type=float, default=None,
        help="generated SSB scale factor (default: REPRO_SSB_SF or 0.01)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=MIN_SPEEDUP,
        help="fail unless the packed backend beats the boolean backend on "
             "the gate-level path by this factor (0 disables the check)",
    )
    parser.add_argument(
        "--min-fused-speedup", type=float, default=MIN_FUSED_SPEEDUP,
        help="fail unless the fused program replay beats per-operation "
             "dispatch by this factor (0 disables the check)",
    )
    parser.add_argument(
        "--min-scatter-speedup", type=float, default=MIN_SCATTER_SPEEDUP,
        help="fail unless the 4-worker scatter beats the sequential scatter "
             "by strictly more than this factor (0 disables the check)",
    )
    parser.add_argument(
        "--no-service", action="store_true",
        help="skip the vectorized service-batch comparison",
    )
    parser.add_argument(
        "--no-fused", action="store_true",
        help="skip the fused program-replay microbenchmark",
    )
    parser.add_argument(
        "--no-scatter", action="store_true",
        help="skip the thread-pooled scatter comparison",
    )
    parser.add_argument(
        "--artifact", default=str(ARTIFACT_PATH),
        help="path of the BENCH_backend.json trajectory artifact",
    )
    args = parser.parse_args(argv)

    results = backend_speed.run_backend_speed(
        scale_factor=args.scale_factor,
        with_service=not args.no_service,
        with_fused=not args.no_fused,
        with_scatter=not args.no_scatter,
    )
    print(backend_speed.render(results))
    backend_speed.write_artifact(results, args.artifact)
    print(f"wrote {args.artifact}")
    if not results.bit_exact:
        print("FAIL: backends returned different result rows")
        return 1
    if not results.stats_identical:
        print("FAIL: backends charged different modelled statistics")
        return 1
    if args.min_speedup and results.speedup < args.min_speedup:
        print(
            f"FAIL: packed speedup {results.speedup:.2f}x "
            f"below {args.min_speedup}x"
        )
        return 1
    if args.min_fused_speedup and results.fused is not None:
        if results.fused.speedup < args.min_fused_speedup:
            print(
                f"FAIL: fused replay speedup {results.fused.speedup:.2f}x "
                f"below {args.min_fused_speedup}x"
            )
            return 1
    if args.min_scatter_speedup and results.scatter is not None:
        if not results.scatter.bits_match:
            print("FAIL: pooled scatter left different bits in the banks")
            return 1
        if (
            results.scatter.gateable
            and results.scatter.speedup <= args.min_scatter_speedup
        ):
            print(
                f"FAIL: scatter speedup {results.scatter.speedup:.2f}x "
                f"not above {args.min_scatter_speedup}x"
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
