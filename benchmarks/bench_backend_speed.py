"""Backend speed — the 13 SSB queries on the packed vs boolean backends.

As a pytest benchmark this executes every SSB query gate level (each NOR
primitive applied to the stored bits) on both simulation backends, gates
bit-exactness of the result rows, bit-identical :class:`PimStats`, and a
>=5x wall-clock speedup for the packed backend, and writes the
``BENCH_backend.json`` trajectory artifact at the repository root.  It is
also runnable as a plain script for CI smoke tests::

    PYTHONPATH=src python benchmarks/bench_backend_speed.py
"""

import pathlib
import sys

from repro.experiments import backend_speed

ARTIFACT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_backend.json"

MIN_SPEEDUP = 5.0


def test_backend_speed(benchmark, publish):
    results = benchmark.pedantic(
        lambda: backend_speed.run_backend_speed(), rounds=1, iterations=1
    )
    publish("backend_speed", backend_speed.render(results))
    backend_speed.write_artifact(results, ARTIFACT_PATH)
    assert results.bit_exact
    assert results.stats_identical
    # Acceptance gate on the gate-level (simulation-bound) query path.  The
    # measured total speedup is ~8-9x at both the default and the CI scale
    # factor (individual host-gb-dominated queries dip to ~3.5x), so the
    # headroom over the 5x gate is real but not unlimited — investigate any
    # regression rather than bumping the gate down.
    assert results.speedup >= MIN_SPEEDUP


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale-factor", type=float, default=None,
        help="generated SSB scale factor (default: REPRO_SSB_SF or 0.01)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=MIN_SPEEDUP,
        help="fail unless the packed backend beats the boolean backend on "
             "the gate-level path by this factor (0 disables the check)",
    )
    parser.add_argument(
        "--no-service", action="store_true",
        help="skip the vectorized service-batch comparison",
    )
    parser.add_argument(
        "--artifact", default=str(ARTIFACT_PATH),
        help="path of the BENCH_backend.json trajectory artifact",
    )
    args = parser.parse_args(argv)

    results = backend_speed.run_backend_speed(
        scale_factor=args.scale_factor, with_service=not args.no_service
    )
    print(backend_speed.render(results))
    backend_speed.write_artifact(results, args.artifact)
    print(f"wrote {args.artifact}")
    if not results.bit_exact:
        print("FAIL: backends returned different result rows")
        return 1
    if not results.stats_identical:
        print("FAIL: backends charged different modelled statistics")
        return 1
    if args.min_speedup and results.speedup < args.min_speedup:
        print(
            f"FAIL: packed speedup {results.speedup:.2f}x "
            f"below {args.min_speedup}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
