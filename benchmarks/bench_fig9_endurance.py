"""Fig. 9 — required cell endurance over ten years of back-to-back execution."""

from repro.experiments import fig9_endurance
from repro.memory.endurance import RRAM_ENDURANCE_WRITES


def test_fig9_required_endurance(benchmark, query_records, publish):
    rows = benchmark.pedantic(
        lambda: fig9_endurance.fig9_rows(query_records, configs=("one_xb", "two_xb")),
        rounds=1, iterations=1,
    )
    publish("fig9_required_endurance", fig9_endurance.render(query_records))
    assert len(rows) == 13
    # Paper: reported RRAM endurance (1e12 writes) suffices for ten years.
    # Asserted for the paper's proposed configurations (the PIMDB baseline's
    # plan differs from the paper's on some queries, see EXPERIMENTS.md).
    for row in rows:
        for value in row[1:]:
            if value == value:  # skip NaN
                assert value <= RRAM_ENDURANCE_WRITES
    # Paper: the aggregation circuit improves lifetime on the low-aggregation
    # queries (3.21x in the paper).
    assert fig9_endurance.lifetime_improvement(query_records) > 1.0
