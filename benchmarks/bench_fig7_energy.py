"""Fig. 7 — PIM memory energy per SSB query."""

from repro.experiments import fig7_energy


def test_fig7_pim_energy(benchmark, query_records, publish):
    rows = benchmark.pedantic(
        lambda: fig7_energy.fig7_rows(query_records), rounds=1, iterations=1
    )
    publish("fig7_pim_energy", fig7_energy.render(query_records))
    assert len(rows) == 13
    # Paper: every query needs less than 1 J of PIM energy.  The bound is
    # asserted for the paper's proposed configurations; the PIMDB baseline
    # can exceed it here because its planner assigns more subgroups to the
    # expensive bulk-bitwise aggregation than the paper's did.
    assert all(
        record.energy_j < 1.0
        for record in query_records
        if record.config in ("one_xb", "two_xb")
    )
    # Paper: PIMDB spends more energy than one_xb where both PIM-aggregate.
    assert fig7_energy.pimdb_energy_ratio(query_records) > 1.0
