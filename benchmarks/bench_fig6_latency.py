"""Fig. 6 — SSB execution latency for the five configurations."""

from repro.experiments import fig6_latency
from repro.ssb import ALL_QUERIES


def test_fig6_execution_latency(benchmark, ssb_setup, query_records, publish):
    # Benchmark the simulation throughput of one representative query on the
    # paper's configuration; the figure itself comes from the cached records.
    engine = ssb_setup.pim_engines["one_xb"]
    benchmark.pedantic(
        lambda: engine.execute(ALL_QUERIES["Q1.1"]), rounds=1, iterations=1
    )
    publish("fig6_execution_latency", fig6_latency.render(query_records))

    rows = fig6_latency.fig6_rows(query_records, configs=ssb_setup.configs)
    assert len(rows) == 13
    speedup_reg = fig6_latency.speedups(query_records, "mnt_reg")["geomean"]
    speedup_join = fig6_latency.speedups(query_records, "mnt_join")["geomean"]
    speedup_pimdb = fig6_latency.speedups(query_records, "pimdb")["geomean"]
    # Shape checks against the paper: one_xb wins on geo-mean against every
    # baseline, and by more against mnt_reg than against mnt_join.
    assert speedup_reg > 1.0
    assert speedup_join > 1.0
    assert speedup_pimdb > 1.0
    assert speedup_reg > speedup_join
