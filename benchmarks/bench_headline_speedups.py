"""The abstract's headline numbers (speedup, energy, lifetime)."""

from repro.experiments import headline


def test_headline_metrics(benchmark, query_records, publish):
    metrics = benchmark.pedantic(
        lambda: headline.headline_metrics(query_records), rounds=1, iterations=1
    )
    publish("headline_metrics", headline.render(query_records))
    assert metrics, "no headline metrics computed"
    # Every headline comparison should at least point in the paper's
    # direction (absolute factors depend on the substituted substrates).
    for metric in metrics:
        assert metric.direction_matches, metric.name
