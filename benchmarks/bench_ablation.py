"""Ablations: aggregation circuit, sampling budget, pre-join storage."""

from repro.experiments import ablation


def test_ablations(benchmark, ssb_setup, publish):
    rows = benchmark.pedantic(
        lambda: ablation.aggregation_circuit_ablation(ssb_setup, queries=("Q1.1",)),
        rounds=1, iterations=1,
    )
    publish("ablation", ablation.render(ssb_setup))

    # The aggregation circuit reduces both latency and energy on Q1.1.
    by_variant = {row.variant: row for row in rows}
    with_circuit = by_variant["with circuit"]
    without = by_variant["bulk-bitwise only"]
    assert with_circuit.time_s < without.time_s
    assert with_circuit.energy_j < without.energy_j

    # Section III: the pre-joined relation needs no more pages than the fact
    # relation when the record fits in one crossbar row.
    report = ablation.prejoin_storage_report(ssb_setup)
    assert report.fits_in_single_row
    assert report.extra_pages_one_xb == 0
