"""Semantic candidate-set cache — SSB replay under churn vs the plan memo.

As a pytest benchmark this replays the 13 SSB query templates for several
rounds with INSERT/DELETE/UPDATE churn between rounds, through four engines
({legacy plan memo, semantic candidate cache} x {packed, bool backend}),
gating bit-exact rows everywhere, cached decisions identical to a cold
zone-map walk every round, and a >= 5x reduction of the zone-map entries
consulted on the cached replay rounds.  It writes the ``BENCH_pcache.json``
trajectory artifact at the repository root and is also runnable as a plain
script for CI::

    PYTHONPATH=src python benchmarks/bench_predicate_cache.py
"""

import pathlib
import sys

from repro.experiments import predicate_cache

ARTIFACT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pcache.json"

MIN_ENTRY_REDUCTION = predicate_cache.MIN_ENTRY_REDUCTION


def test_predicate_cache(benchmark, publish):
    results = benchmark.pedantic(
        lambda: predicate_cache.run_predicate_cache(), rounds=1, iterations=1
    )
    publish("predicate_cache", predicate_cache.render(results))
    predicate_cache.write_artifact(results, ARTIFACT_PATH)
    assert results.bit_exact
    assert results.masks_identical
    # Acceptance gate: the cached replay consults >= 5x fewer zone-map
    # entries than the wholesale-invalidated memo re-walks for the same
    # rounds.  The measured margin is well above the gate — investigate a
    # regression, don't lower it.
    assert results.min_entry_reduction() >= MIN_ENTRY_REDUCTION


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--rounds", type=int, default=predicate_cache.DEFAULT_ROUNDS,
        help="replay rounds after the cold round (DML precedes each)",
    )
    parser.add_argument(
        "--inserts-per-round", type=int,
        default=predicate_cache.DEFAULT_INSERTS_PER_ROUND,
        help="records inserted per churn round",
    )
    parser.add_argument(
        "--min-reduction", type=float, default=MIN_ENTRY_REDUCTION,
        help="fail unless the cached replay cuts the zone-map entries "
             "consulted by this factor on every backend (0 disables)",
    )
    parser.add_argument(
        "--artifact", default=str(ARTIFACT_PATH),
        help="path of the BENCH_pcache.json trajectory artifact",
    )
    args = parser.parse_args(argv)

    results = predicate_cache.run_predicate_cache(
        rounds=args.rounds,
        inserts_per_round=args.inserts_per_round,
    )
    print(predicate_cache.render(results))
    predicate_cache.write_artifact(results, args.artifact)
    print(f"wrote {args.artifact}")
    if not results.bit_exact:
        print("FAIL: cached execution diverged (modes or backends disagree)")
        return 1
    if not results.masks_identical:
        print("FAIL: a cached decision differed from the cold zone-map walk")
        return 1
    if args.min_reduction and results.min_entry_reduction() < args.min_reduction:
        print(
            f"FAIL: replay entry reduction "
            f"{results.min_entry_reduction():.2f}x below {args.min_reduction}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
