"""Fig. 8 — peak power of a single PIM chip per SSB query."""

from repro.experiments import fig8_power


def test_fig8_peak_chip_power(benchmark, query_records, publish):
    rows = benchmark.pedantic(
        lambda: fig8_power.fig8_rows(query_records), rounds=1, iterations=1
    )
    publish("fig8_peak_chip_power", fig8_power.render(query_records))
    assert len(rows) == 13
    # Paper: peak power stays below 44 W per chip for every query.
    assert all(
        record.peak_power_w <= fig8_power.PAPER_PEAK_LIMIT_W
        for record in query_records
        if record.config in ("one_xb", "two_xb", "pimdb")
    )
    # Paper: PIMDB draws more peak power where both PIM-aggregate.
    assert fig8_power.pimdb_power_ratio(query_records) > 1.0
