"""Self-tuning storage — feedback-driven re-clustering under churn.

As a pytest benchmark this runs the closed loop (unclustered tiled SSB
relation, selective point probes, 35% range DELETE + INSERT + UPDATE churn
with pruned DML, error-triggered equi-depth histogram rebuilds, and a
threshold compaction that re-clusters by the hottest column) on both
simulation backends plus a broadcast-DML lockstep twin, gating bit-exact
rows, bit-identical modelled stats, pruned-vs-broadcast DML lockstep, a
closed feedback loop (>= 1 rebuild, hot column == probe column, compaction
clustered by it) and >= 8x reductions in cold-walk zone-map entries and in
crossbars scanned.  It writes the ``BENCH_cluster.json`` trajectory
artifact at the repository root and is also runnable as a plain script for
CI::

    PYTHONPATH=src python benchmarks/bench_clustering.py
"""

import pathlib
import sys

from repro.experiments import clustering

ARTIFACT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_cluster.json"

MIN_ENTRY_REDUCTION = clustering.MIN_ENTRY_REDUCTION
MIN_SCAN_REDUCTION = clustering.MIN_SCAN_REDUCTION


def test_clustering(benchmark, publish):
    results = benchmark.pedantic(
        lambda: clustering.run_clustering(), rounds=1, iterations=1
    )
    publish("clustering", clustering.render(results))
    clustering.write_artifact(results, ARTIFACT_PATH)
    assert results.backends_agree
    assert results.stats_identical
    assert results.dml_lockstep
    assert results.loop_closed
    # Acceptance gates: after the error-triggered re-clustering compaction
    # the same point probes check >= 8x fewer zone-map entries on a cold
    # walk and scan >= 8x fewer crossbars.  The measured margin is above
    # the gates — investigate a regression, don't lower them.
    assert results.min_entry_reduction() >= MIN_ENTRY_REDUCTION
    assert results.min_scan_reduction() >= MIN_SCAN_REDUCTION


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--pages", type=int, default=clustering.DEFAULT_PAGES,
        help="slot pages of the tiled unclustered relation",
    )
    parser.add_argument(
        "--probes", type=int, default=clustering.DEFAULT_PROBES,
        help="point probes per measured phase",
    )
    parser.add_argument(
        "--error-queries", type=int, default=clustering.DEFAULT_ERROR_QUERIES,
        help="queries replayed against the deleted range to feed the "
             "error accumulator",
    )
    parser.add_argument(
        "--min-entry-reduction", type=float, default=MIN_ENTRY_REDUCTION,
        help="fail unless the cold-walk zone-map entries drop by this "
             "factor after re-clustering (0 disables)",
    )
    parser.add_argument(
        "--min-scan-reduction", type=float, default=MIN_SCAN_REDUCTION,
        help="fail unless the crossbars scanned drop by this factor after "
             "re-clustering (0 disables)",
    )
    parser.add_argument(
        "--artifact", default=str(ARTIFACT_PATH),
        help="path of the BENCH_cluster.json trajectory artifact",
    )
    args = parser.parse_args(argv)

    results = clustering.run_clustering(
        pages=args.pages,
        probes=args.probes,
        error_queries=args.error_queries,
    )
    print(clustering.render(results))
    clustering.write_artifact(results, args.artifact)
    print(f"wrote {args.artifact}")
    if not results.backends_agree:
        print("FAIL: probe rows diverged across the simulation backends")
        return 1
    if not results.stats_identical:
        print("FAIL: modelled stats diverged across the simulation backends")
        return 1
    if not results.dml_lockstep:
        print("FAIL: pruned DML diverged from the broadcast twin")
        return 1
    if not results.loop_closed:
        print(
            "FAIL: the feedback loop did not close (no rebuild, wrong hot "
            "column, or compaction did not re-cluster)"
        )
        return 1
    if (args.min_entry_reduction
            and results.min_entry_reduction() < args.min_entry_reduction):
        print(
            f"FAIL: cold-walk entry reduction "
            f"{results.min_entry_reduction():.2f}x below "
            f"{args.min_entry_reduction}x"
        )
        return 1
    if (args.min_scan_reduction
            and results.min_scan_reduction() < args.min_scan_reduction):
        print(
            f"FAIL: crossbar scan reduction "
            f"{results.min_scan_reduction():.2f}x below "
            f"{args.min_scan_reduction}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
