"""Fig. 5 — PIM chip area breakdown."""

from repro.experiments import fig5_area
from repro.memory.area import ChipAreaModel


def test_fig5_chip_area_breakdown(benchmark, publish):
    rows = benchmark.pedantic(fig5_area.fig5_rows, rounds=1, iterations=1)
    publish("fig5_area_breakdown", fig5_area.render())
    shares = {name: share for name, _, share, _ in rows}
    # The aggregation circuit share should be close to the paper's 13.9%.
    assert abs(shares["Aggregation circuits"] - 0.139) < 0.02
    assert abs(ChipAreaModel().chip_area_mm2 - 346.0) < 10.0
