"""Observability — trace completeness, disabled-path cost, explain goldens.

As a pytest benchmark this replays the warm 13-query SSB workload through a
:class:`~repro.service.service.QueryService` and gates the telemetry layer's
three contracts: (1) the projected cost of the *disabled* tracing path stays
under 2% of the warm replay, (2) every traced query's span tree reproduces
the execution's modelled ``time_by_phase``/``energy_by_component``
bit-for-bit when its charge events are re-folded, and (3) the
``explain()`` rendering of two SSB queries is identical on the packed and
boolean simulation backends.  It writes the ``BENCH_obs.json`` trajectory
artifact at the repository root and is also runnable as a plain script::

    PYTHONPATH=src python benchmarks/bench_observability.py
"""

import pathlib
import sys

from repro.experiments import observability

ARTIFACT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def test_observability(benchmark, publish):
    results = benchmark.pedantic(
        lambda: observability.run_observability(), rounds=1, iterations=1
    )
    publish("observability", observability.render(results))
    observability.write_artifact(results, ARTIFACT_PATH)
    # 100% of the modelled time/energy must fold out of the span trees.
    assert results.trace_complete
    # The branch-cheap disabled path must project under the 2% gate.
    assert results.null_overhead_ok
    # explain() renders modelled quantities only, so backends agree.
    assert results.explain_stable


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale-factor", type=float, default=None,
        help="generated SSB scale factor (default: REPRO_SSB_SF or 0.01)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="replay repetitions per measurement (best-of)",
    )
    parser.add_argument(
        "--artifact", default=str(ARTIFACT_PATH),
        help="path of the BENCH_obs.json trajectory artifact",
    )
    args = parser.parse_args(argv)

    results = observability.run_observability(
        scale_factor=args.scale_factor, repeats=args.repeats
    )
    print(observability.render(results))
    observability.write_artifact(results, args.artifact)
    print(f"wrote {args.artifact}")
    if not results.trace_complete:
        print("FAIL: span trees did not reproduce the modelled stats")
        return 1
    if not results.null_overhead_ok:
        print(
            f"FAIL: projected disabled-path overhead "
            f"{results.projected_disabled_overhead:.3%} not under "
            f"{observability.MAX_DISABLED_OVERHEAD:.0%}"
        )
        return 1
    if not results.explain_stable:
        print("FAIL: explain() renderings differ across backends")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
