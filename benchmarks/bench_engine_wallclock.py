"""Engine wall-clock — batched group-by kernels vs the per-subgroup baseline.

As a pytest benchmark this replays the 13 SSB queries warm under all three
execution strategies (per-operation dispatch, per-subgroup fused, batched)
with forced all-PIM GROUP-BY plans, gates bit-exact result rows and
bit-identical :meth:`PimStats.totals` across the strategies, and gates a
>=2x wall-clock speedup (measured ~3x) for the batched strategy over the
per-subgroup fused baseline on the GROUP-BY subset.  The thread-pooled
4-shard replay is always measured and recorded; its >1x gate applies only
on multi-core hosts (``os.cpu_count() > 1``) — a single core serialises
the pool by construction.  Writes the ``BENCH_engine.json`` trajectory
artifact at the repository root.  It is also runnable as a plain script
for CI smoke tests::

    PYTHONPATH=src python benchmarks/bench_engine_wallclock.py
"""

import os
import pathlib
import sys

from repro.experiments import engine_wallclock

ARTIFACT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"

MIN_GROUP_BY_SPEEDUP = 2.0
MIN_SCATTER_SPEEDUP = 1.0


def test_engine_wallclock(benchmark, publish):
    results = benchmark.pedantic(
        lambda: engine_wallclock.run_engine_wallclock(), rounds=1, iterations=1
    )
    publish("engine_wallclock", engine_wallclock.render(results))
    engine_wallclock.write_artifact(results, ARTIFACT_PATH)
    assert results.bit_exact
    assert results.totals_identical
    # Acceptance gate on the GROUP-BY subset — the Amdahl residual the
    # batched strategy exists for.  Measured ~3x at the default and the CI
    # scale factor (per-query speedups 1.6-4.6x, growing with the subgroup
    # count k), so the headroom over the 2x gate is real but not unlimited
    # — investigate any regression rather than bumping the gate down.
    assert results.group_by_speedup >= MIN_GROUP_BY_SPEEDUP
    # The pooled sharded replay must beat the sequential scatter outright on
    # multi-core hosts (batched kernels run inside NumPy with the GIL
    # released).  On a single core the measurement is still recorded in the
    # artifact — never silently skipped — but the gate cannot apply.
    assert results.scatter is not None
    assert results.scatter.rows_match
    if results.scatter.gateable:
        assert results.scatter.speedup > MIN_SCATTER_SPEEDUP


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale-factor", type=float, default=None,
        help="generated SSB scale factor (default: REPRO_SSB_SF or 0.01)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed warm replay rounds per strategy (default 3)",
    )
    parser.add_argument(
        "--min-group-by-speedup", type=float, default=MIN_GROUP_BY_SPEEDUP,
        help="fail unless the batched strategy beats the per-subgroup fused "
             "baseline on the GROUP-BY subset by this factor (0 disables)",
    )
    parser.add_argument(
        "--min-scatter-speedup", type=float, default=MIN_SCATTER_SPEEDUP,
        help="fail unless the pooled sharded replay beats the sequential one "
             "by strictly more than this factor (0 disables; only applied "
             "when os.cpu_count() > 1)",
    )
    parser.add_argument(
        "--no-scatter", action="store_true",
        help="skip the thread-pooled sharded-replay comparison",
    )
    parser.add_argument(
        "--artifact", default=str(ARTIFACT_PATH),
        help="path of the BENCH_engine.json trajectory artifact",
    )
    args = parser.parse_args(argv)

    results = engine_wallclock.run_engine_wallclock(
        scale_factor=args.scale_factor,
        repeats=args.repeats,
        with_scatter=not args.no_scatter,
    )
    print(engine_wallclock.render(results))
    engine_wallclock.write_artifact(results, args.artifact)
    print(f"wrote {args.artifact}")
    if not results.bit_exact:
        print("FAIL: execution strategies returned different result rows")
        return 1
    if not results.totals_identical:
        print("FAIL: execution strategies charged different modelled totals")
        return 1
    if (
        args.min_group_by_speedup
        and results.group_by_speedup < args.min_group_by_speedup
    ):
        print(
            f"FAIL: group-by batched speedup {results.group_by_speedup:.2f}x "
            f"below {args.min_group_by_speedup}x"
        )
        return 1
    if args.min_scatter_speedup and results.scatter is not None:
        if not results.scatter.rows_match:
            print("FAIL: pooled sharded replay returned different rows")
            return 1
        if (
            results.scatter.gateable
            and results.scatter.speedup <= args.min_scatter_speedup
        ):
            print(
                f"FAIL: scatter speedup {results.scatter.speedup:.2f}x "
                f"not above {args.min_scatter_speedup}x "
                f"({os.cpu_count()} cores)"
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
