"""DML churn — sustained insert/delete/update/query traffic, both backends.

As a pytest benchmark this replays one generated churn workload through a
sharded :class:`~repro.service.QueryService` on both simulation backends,
gating that every round's probe queries are bit-exact with the functional
ground truth, that the backends agree with each other, and that every DML
phase (insert-write, delete-filter/-clear, compact-read/-write) charged
modelled stats.  It writes the ``BENCH_dml.json`` trajectory artifact at the
repository root and is also runnable as a plain script for CI::

    PYTHONPATH=src python benchmarks/bench_dml_churn.py
"""

import pathlib
import sys

from repro.experiments import dml_churn

ARTIFACT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_dml.json"


def test_dml_churn(benchmark, publish):
    results = benchmark.pedantic(
        lambda: dml_churn.run_dml_churn(), rounds=1, iterations=1
    )
    publish("dml_churn", dml_churn.render(results))
    dml_churn.write_artifact(results, ARTIFACT_PATH)
    assert results.bit_exact
    assert results.backends_agree
    assert results.all_phases_charged
    assert results.stats_identical


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--records", type=int, default=2000,
        help="initial relation size before churn starts",
    )
    parser.add_argument(
        "--rounds", type=int, default=6,
        help="churn rounds (each: insert batch, delete, update, compact, probes)",
    )
    parser.add_argument(
        "--inserts-per-round", type=int, default=120,
        help="records inserted per round",
    )
    parser.add_argument(
        "--shards", type=int, default=4,
        help="horizontal shards the relation is served from",
    )
    parser.add_argument(
        "--artifact", default=str(ARTIFACT_PATH),
        help="path of the BENCH_dml.json trajectory artifact",
    )
    args = parser.parse_args(argv)

    results = dml_churn.run_dml_churn(
        records=args.records,
        rounds=args.rounds,
        inserts_per_round=args.inserts_per_round,
        shards=args.shards,
    )
    print(dml_churn.render(results))
    dml_churn.write_artifact(results, args.artifact)
    print(f"wrote {args.artifact}")
    if not results.bit_exact:
        print("FAIL: churn workload diverged from the functional ground truth")
        return 1
    if not results.all_phases_charged:
        print("FAIL: some DML phase charged no modelled stats")
        return 1
    if not results.stats_identical:
        print("FAIL: backends charged different modelled DML stats")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
