"""Service throughput — batched replay of the 13 SSB queries.

As a pytest benchmark this measures the full sweep and asserts the
acceptance criteria (bit-exact results, warm-cache hits, >=2x wall-clock
speedup over the per-query baseline at batch size 13).  It is also runnable
as a plain script for CI smoke tests::

    REPRO_SSB_SF=0.002 PYTHONPATH=src python benchmarks/bench_service_throughput.py
"""

import sys

from repro.experiments import service_throughput


def test_service_throughput(benchmark, publish):
    results = benchmark.pedantic(
        lambda: service_throughput.run_throughput(), rounds=1, iterations=1
    )
    publish("service_throughput", service_throughput.render(results))
    assert results.bit_exact
    measured = results.warm_point(13)
    assert measured.cache_hits > 0
    # Acceptance gate.  The baseline is the gate-level per-query path on the
    # *default* backend: with the packed banks it is ~8x faster than the old
    # boolean simulation, so the service's relative margin shrank from ~17x
    # to ~1.6x at the default scale factor (the benchmark's absolute
    # wall-clock dropped by the same ~8x).  The service must still win.
    assert results.speedup >= 1.3


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale-factor", type=float, default=None,
        help="generated SSB scale factor (default: REPRO_SSB_SF or 0.01)",
    )
    parser.add_argument(
        "--batch-sizes", type=int, nargs="+", default=[1, 4, 13, 26],
        help="batch sizes to replay",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=1.3,
        help="fail unless the warm batch-13 replay beats the per-query "
             "baseline by this factor (0 disables the check)",
    )
    args = parser.parse_args(argv)

    results = service_throughput.run_throughput(
        scale_factor=args.scale_factor, batch_sizes=args.batch_sizes
    )
    print(service_throughput.render(results))
    if not results.bit_exact:
        print("FAIL: service results diverge from the sequential baseline")
        return 1
    if results.measured_point().cache_hits <= 0:
        print("FAIL: warm replay reported no program-cache hits")
        return 1
    if args.min_speedup and results.speedup < args.min_speedup:
        print(f"FAIL: speedup {results.speedup:.2f}x below {args.min_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
