"""Smoke tests executing the runnable examples.

The examples double as end-to-end documentation; each one performs its own
internal verification (asserting PIM results against NumPy references), so
simply running them to completion is a meaningful integration check.
"""

import runpy
import sys

import pytest


EXAMPLES = [
    "examples/quickstart.py",
    "examples/update_in_place.py",
    "examples/derived_attribute_in_memory.py",
    "examples/service_batch.py",
    "examples/sharded_service.py",
    "examples/trace_query.py",
]


@pytest.mark.parametrize("path", EXAMPLES)
def test_example_runs_to_completion(path, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [path])
    runpy.run_path(path, run_name="__main__")
    output = capsys.readouterr().out
    assert "verified" in output.lower()


def test_ssb_analytics_example_helpers(monkeypatch, capsys):
    """Run the SSB analytics example at a very small scale factor."""
    monkeypatch.setattr(sys, "argv", ["examples/ssb_analytics.py", "0.002"])
    runpy.run_path("examples/ssb_analytics.py", run_name="__main__")
    output = capsys.readouterr().out
    assert "identical result rows" in output
