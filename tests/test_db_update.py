"""Dedicated tests of in-memory UPDATE (Algorithm 1), unsharded and sharded.

``execute_update`` previously had only indirect coverage through the SSB
integration test; these tests exercise it directly — selection, stored-bit
and ground-truth consistency, wear accounting through
:mod:`repro.memory.endurance` — and its broadcast to every shard of a
:class:`~repro.sharding.storage.ShardedStoredRelation`.
"""

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.executor import PimQueryEngine
from repro.db.compiler import CompilationError
from repro.db.query import (
    Aggregate,
    And,
    Comparison,
    EQ,
    LT,
    Query,
    evaluate_predicate,
    reference_group_aggregate,
)
from repro.db.storage import StoredRelation
from repro.db.update import execute_update
from repro.memory.endurance import lifetime_years, required_endurance
from repro.pim.controller import PimExecutor
from repro.pim.module import PimModule
from repro.sharding import (
    ShardedQueryEngine,
    ShardedStoredRelation,
    execute_sharded_update,
)


def _fresh_stored(factory, records=2000, seed=5, **kwargs):
    relation = factory(records=records, seed=seed)
    module = PimModule(DEFAULT_CONFIG)
    stored = StoredRelation(
        relation, module, label=kwargs.pop("label", "upd"),
        aggregation_width=22, reserve_bulk_aggregation=False, **kwargs
    )
    return relation, stored


# ------------------------------------------------------------------ unsharded
def test_update_rewrites_stored_bits_and_ground_truth(toy_relation_factory):
    relation, stored = _fresh_stored(toy_relation_factory)
    predicate = Comparison("region", EQ, "EUROPE")
    expected_mask = evaluate_predicate(predicate, relation)
    executor = PimExecutor(DEFAULT_CONFIG)

    asia = relation.schema.attribute("region").encode_value("ASIA")
    result = execute_update(stored, predicate, {"region": "ASIA"}, executor)

    assert result.records_updated == int(expected_mask.sum()) > 0
    assert result.filter_cycles > 0 and result.update_cycles > 0
    # Stored bits and ground truth agree, record by record.
    decoded = stored.decode_column("region")
    assert np.array_equal(decoded, relation.column("region"))
    assert np.all(decoded[expected_mask] == np.uint64(asia))
    # Untouched attributes are intact.
    assert np.array_equal(stored.decode_column("price"), relation.column("price"))


def test_update_with_multiple_assignments_and_numeric_attribute(toy_relation_factory):
    relation, stored = _fresh_stored(toy_relation_factory, seed=9)
    predicate = Comparison("discount", LT, 2)
    mask = evaluate_predicate(predicate, relation)
    before_price = relation.column("price").copy()
    executor = PimExecutor(DEFAULT_CONFIG)

    result = execute_update(
        stored, predicate, {"discount": 5, "quantity": 10}, executor
    )
    assert result.records_updated == int(mask.sum())
    assert np.all(relation.column("discount")[mask] == np.uint64(5))
    assert np.all(relation.column("quantity")[mask] == np.uint64(10))
    assert np.array_equal(relation.column("price"), before_price)
    assert np.array_equal(stored.decode_column("discount"), relation.column("discount"))


def test_update_is_visible_to_subsequent_queries(toy_relation_factory):
    relation, stored = _fresh_stored(toy_relation_factory, seed=13)
    engine = PimQueryEngine(stored, vectorized=True)
    execute_update(
        stored, Comparison("region", EQ, "AFRICA"), {"region": "AMERICA"},
        PimExecutor(DEFAULT_CONFIG),
    )
    query = Query("after", Comparison("region", EQ, "AMERICA"),
                  (Aggregate("count"), Aggregate("sum", "price")))
    execution = engine.execute(query)
    reference = reference_group_aggregate(
        relation, evaluate_predicate(query.predicate, relation), (), query.aggregates
    )
    assert execution.rows == reference


def test_update_accumulates_wear_for_endurance_accounting(toy_relation_factory):
    relation, stored = _fresh_stored(toy_relation_factory, seed=21)
    snapshot = stored.wear_snapshot()
    executor = PimExecutor(DEFAULT_CONFIG)
    execute_update(
        stored, Comparison("region", EQ, "ASIA"), {"region": "EUROPE"}, executor
    )
    worst = stored.max_writes_since(snapshot)
    assert worst > 0
    columns = DEFAULT_CONFIG.pim.crossbar.columns
    endurance = required_endurance(worst, columns, query_time_s=1e-3)
    years = lifetime_years(worst, columns, query_time_s=1e-3)
    assert endurance > 0 and np.isfinite(endurance)
    assert years > 0 and np.isfinite(years)


def test_compiled_update_reuse_and_mismatch_guard(toy_relation_factory):
    from repro.db.update import compile_update

    relation, stored = _fresh_stored(toy_relation_factory, seed=31)
    predicate = Comparison("region", EQ, "ASIA")
    compiled = compile_update(stored, predicate, {"discount": 7})
    result = execute_update(
        stored, predicate, {"discount": 7}, PimExecutor(DEFAULT_CONFIG),
        compiled=compiled,
    )
    mask = evaluate_predicate(predicate, relation)
    assert result.records_updated == int(mask.sum())
    assert np.all(relation.column("discount")[mask] == np.uint64(7))
    # Replaying a compiled update with a different statement must refuse
    # rather than silently desynchronise stored bits and ground truth.
    with pytest.raises(ValueError, match="does not match"):
        execute_update(
            stored, Comparison("region", EQ, "EUROPE"), {"discount": 7},
            PimExecutor(DEFAULT_CONFIG), compiled=compiled,
        )
    with pytest.raises(ValueError, match="does not match"):
        execute_update(
            stored, predicate, {"discount": 8},
            PimExecutor(DEFAULT_CONFIG), compiled=compiled,
        )


def test_update_error_paths(toy_relation_factory):
    relation, stored = _fresh_stored(toy_relation_factory, seed=2)
    executor = PimExecutor(DEFAULT_CONFIG)
    with pytest.raises(ValueError, match="no assignments"):
        execute_update(stored, Comparison("year", EQ, 1995), {}, executor)

    split = toy_relation_factory(records=1000, seed=3)
    two_xb = StoredRelation(
        split, PimModule(DEFAULT_CONFIG), label="two-xb-upd",
        partitions=[["key", "price", "discount", "quantity"],
                    ["city", "region", "year"]],
        aggregation_width=22, reserve_bulk_aggregation=False,
    )
    with pytest.raises(CompilationError, match="vertical partitions"):
        execute_update(
            two_xb, Comparison("year", EQ, 1995), {"price": 1}, PimExecutor(DEFAULT_CONFIG)
        )


# -------------------------------------------------------------------- sharded
def test_sharded_update_hits_every_matching_shard(toy_relation_factory):
    relation = toy_relation_factory(records=4000, seed=7)
    sharded = ShardedStoredRelation(
        relation, PimModule(DEFAULT_CONFIG), shards=4, label="upd-sharded",
        aggregation_width=22, reserve_bulk_aggregation=False,
    )
    # "key" is 0..N-1 in record order and the shards are contiguous, so a
    # range predicate on it pins the matching records to specific shards.
    shard1_start = sharded.bounds[1][0]
    predicate = Comparison("key", LT, shard1_start + 10)
    expected_mask = evaluate_predicate(predicate, relation)

    result = execute_sharded_update(sharded, predicate, {"discount": 9})
    assert result.records_updated == int(expected_mask.sum())
    # Matches live in shards 0 and 1 only; the broadcast still ran everywhere.
    assert result.shards_with_matches == 2
    assert [r.records_updated > 0 for r in result.shard_results] == [
        True, True, False, False
    ]
    assert result.filter_cycles > 0 and result.update_cycles > 0
    assert np.all(relation.column("discount")[expected_mask] == np.uint64(9))
    assert np.array_equal(sharded.decode_column("discount"), relation.column("discount"))


def test_sharded_update_accumulates_wear_on_every_shard(toy_relation_factory):
    relation = toy_relation_factory(records=2000, seed=17)
    sharded = ShardedStoredRelation(
        relation, PimModule(DEFAULT_CONFIG), shards=4, label="upd-wear",
        aggregation_width=22, reserve_bulk_aggregation=False,
    )
    snapshots = sharded.wear_snapshot()
    execute_sharded_update(
        sharded, Comparison("region", EQ, "EUROPE"), {"region": "ASIA"}
    )
    per_shard = sharded.writes_per_shard_since(snapshots)
    # The Algorithm 1 filter + mux programs are broadcast to every shard.
    assert all(writes > 0 for writes in per_shard)
    assert sharded.max_writes_since(snapshots) == max(per_shard)


def test_sharded_update_then_query_is_bit_exact(toy_relation_factory):
    relation = toy_relation_factory(records=3000, seed=23)
    sharded = ShardedStoredRelation(
        relation, PimModule(DEFAULT_CONFIG), shards=3, label="upd-query",
        aggregation_width=22, reserve_bulk_aggregation=False,
    )
    engine = ShardedQueryEngine(sharded, vectorized=True)
    execute_sharded_update(
        sharded,
        And((Comparison("region", EQ, "ASIA"), Comparison("discount", LT, 5))),
        {"discount": 10},
    )
    query = Query("after", Comparison("discount", EQ, 10),
                  (Aggregate("count"), Aggregate("min", "price")),
                  group_by=("region",))
    execution = engine.execute(query)
    reference = reference_group_aggregate(
        relation, evaluate_predicate(query.predicate, relation),
        query.group_by, query.aggregates,
    )
    assert execution.rows == reference


def test_sharded_update_rejects_wrong_executor_count(toy_relation_factory):
    relation = toy_relation_factory(records=1000, seed=29)
    sharded = ShardedStoredRelation(
        relation, PimModule(DEFAULT_CONFIG), shards=2, label="upd-exec",
        aggregation_width=22, reserve_bulk_aggregation=False,
    )
    with pytest.raises(ValueError, match="one executor per shard"):
        execute_sharded_update(
            sharded, Comparison("year", EQ, 1995), {"discount": 1},
            executors=[PimExecutor(DEFAULT_CONFIG)],
        )
