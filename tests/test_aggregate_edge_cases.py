"""Aggregate edge cases: empty selections, tiny groups, caching equivalence.

These tests pin the empty-selection semantics the engines must agree on
(no selected record => no result row, mirroring the columnar reference), the
min-merge fix (an absent min must not poison merging with a spurious 0), and
the bit-exactness of the compiled-program cache and vectorized host paths.
"""

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.executor import PimQueryEngine
from repro.db.query import (
    Aggregate,
    And,
    BETWEEN,
    Comparison,
    EQ,
    Query,
    evaluate_predicate,
    reference_group_aggregate,
)
from repro.db.storage import StoredRelation
from repro.host.aggregator import (
    combine_partials,
    host_group_aggregate,
    merge_group_results,
)
from repro.pim.module import PimModule
from repro.service import ProgramCache

HOST = DEFAULT_CONFIG.host

EMPTY_FILTER = Comparison("year", EQ, 1800)  # matches no toy record
SOME_FILTER = And((
    Comparison("year", BETWEEN, low=1993, high=1996),
    Comparison("discount", ">=", 2),
))
ALL_AGGREGATES = (
    Aggregate("min", "price"),
    Aggregate("max", "price"),
    Aggregate("sum", "price"),
    Aggregate("count"),
)
TWO_XB = [["key", "price", "discount", "quantity"], ["city", "region", "year"]]


def _engine(relation, partitions=None, backend=None, **kwargs):
    config = (
        DEFAULT_CONFIG if backend is None else DEFAULT_CONFIG.with_backend(backend)
    )
    module = PimModule(config)
    stored = StoredRelation(
        relation, module, label="edge-test",
        partitions=partitions, aggregation_width=22,
        reserve_bulk_aggregation=False,
    )
    return PimQueryEngine(stored, **kwargs)


def _reference(relation, query):
    mask = evaluate_predicate(query.predicate, relation)
    return reference_group_aggregate(relation, mask, query.group_by, query.aggregates)


# --------------------------------------------------------------- empty input
def test_empty_selection_scalar_aggregates(toy_relation):
    """min/max/sum/count over zero selected rows produce no result row."""
    query = Query("empty-scalar", EMPTY_FILTER, ALL_AGGREGATES)
    execution = _engine(toy_relation).execute(query)
    assert execution.rows == {}
    assert execution.rows == _reference(toy_relation, query)
    assert execution.selectivity == 0.0


def test_empty_selection_scalar_raises_clear_error(toy_relation):
    query = Query("empty-scalar", EMPTY_FILTER, (Aggregate("min", "price"),))
    execution = _engine(toy_relation).execute(query)
    with pytest.raises(ValueError, match="selected no records"):
        execution.scalar()
    with pytest.raises(ValueError, match="selected no records"):
        execution.scalar("min_price")


def test_scalar_unknown_aggregate_name_raises_value_error(toy_relation):
    query = Query("known", SOME_FILTER, (Aggregate("sum", "price"),))
    execution = _engine(toy_relation).execute(query)
    with pytest.raises(ValueError, match="no aggregate named"):
        execution.scalar("nope")


def test_empty_selection_group_by(toy_relation):
    query = Query("empty-gb", EMPTY_FILTER, ALL_AGGREGATES, group_by=("city",))
    execution = _engine(toy_relation).execute(query)
    assert execution.rows == {}


def test_combine_partials_empty_min_max_is_none():
    assert combine_partials([np.array([], dtype=np.uint64)], "min", HOST) is None
    assert combine_partials([np.array([], dtype=np.uint64)], "max", HOST) is None
    assert combine_partials([np.array([], dtype=np.uint64)], "sum", HOST) == 0


def test_combine_partials_empty_iterable_returns_identity():
    """No partials at all: sum/count are 0, min/max undefined (None)."""
    assert combine_partials([], "sum", HOST) == 0
    assert combine_partials([], "count", HOST) == 0
    assert combine_partials([], "min", HOST) is None
    assert combine_partials([], "max", HOST) is None
    assert combine_partials(iter(()), "sum", HOST) == 0


def test_combine_partials_rejects_unsupported_op():
    with pytest.raises(ValueError, match="unsupported aggregation 'avg'"):
        combine_partials([np.array([1], dtype=np.uint64)], "avg", HOST)


class _RawAggregate:
    """Stand-in with an op the IR would reject at construction time.

    :class:`Aggregate` refuses ``avg`` in ``__post_init__``, but the merge
    functions are also fed aggregate-shaped objects by callers composing
    results by hand — those must fail loudly, not silently merge as ``max``.
    """

    def __init__(self, op, name):
        self.op = op
        self.name = name
        self.attribute = name


def test_merge_group_results_rejects_raw_avg():
    aggregates = (_RawAggregate("avg", "avg_x"),)
    with pytest.raises(ValueError, match="unsupported aggregation 'avg'"):
        merge_group_results(
            {(1,): {"avg_x": 10}}, {(1,): {"avg_x": 20}}, aggregates
        )


def test_merge_group_results_rejects_unknown_op_even_without_overlap():
    """Validation is up-front: corruption must not depend on key overlap."""
    with pytest.raises(ValueError, match="unsupported aggregation"):
        merge_group_results({}, {(1,): {"x": 1}}, (_RawAggregate("median", "x"),))


def test_host_group_aggregate_rejects_raw_avg():
    with pytest.raises(ValueError, match="unsupported aggregation 'avg'"):
        host_group_aggregate(
            {"g": np.array([1], dtype=np.uint64)},
            {"x": np.array([2], dtype=np.uint64)},
            (_RawAggregate("avg", "x"),),
            HOST,
        )


def test_merge_skips_absent_min():
    """An absent/None min on one side must not clamp the other side's min."""
    aggregates = (Aggregate("min", "x"), Aggregate("sum", "x"))
    merged = merge_group_results(
        {(1,): {"sum_x": 10}},                      # min absent (empty on PIM side)
        {(1,): {"min_x": 7, "sum_x": 5}, (2,): {"min_x": None, "sum_x": 3}},
        aggregates,
    )
    assert merged[(1,)] == {"min_x": 7, "sum_x": 15}
    assert merged[(2,)]["sum_x"] == 3
    assert merged[(2,)]["min_x"] is None


# ------------------------------------------------------- host-gb edge cases
def test_host_group_aggregate_missing_value_column():
    with pytest.raises(ValueError, match="needs value column"):
        host_group_aggregate(
            {"g": np.array([1, 2], dtype=np.uint64)},
            {},
            [Aggregate("sum", "x")],
            HOST,
        )


def test_host_group_aggregate_all_rows_filtered_out():
    empty = np.array([], dtype=np.uint64)
    result = host_group_aggregate(
        {"g": empty}, {"x": empty}, [Aggregate("sum", "x"), Aggregate("min", "x")],
        HOST,
    )
    assert result == {}


def test_host_group_aggregate_matches_reference_loop():
    """The reduceat fast path is bit-exact with per-group NumPy reductions."""
    rng = np.random.default_rng(5)
    n = 3000
    groups = {
        "a": rng.integers(0, 7, n).astype(np.uint64),
        "b": rng.integers(0, 5, n).astype(np.uint64),
    }
    values = {"x": rng.integers(0, 1 << 40, n).astype(np.uint64)}
    aggregates = [
        Aggregate("sum", "x"), Aggregate("min", "x"),
        Aggregate("max", "x"), Aggregate("count"),
    ]
    result = host_group_aggregate(groups, values, aggregates, HOST)
    keys = np.stack([groups["a"], groups["b"]], axis=1)
    for key, entry in result.items():
        selector = np.all(keys == np.array(key, dtype=np.uint64), axis=1)
        assert entry["sum_x"] == int(values["x"][selector].sum())
        assert entry["min_x"] == int(values["x"][selector].min())
        assert entry["max_x"] == int(values["x"][selector].max())
        assert entry["count"] == int(selector.sum())
    assert len(result) == len(np.unique(keys, axis=0))


def test_host_group_aggregate_single_record_groups():
    """Each group holding exactly one record: all aggregates equal the value."""
    n = 50
    groups = {"g": np.arange(n, dtype=np.uint64)}
    values = {"x": (np.arange(n, dtype=np.uint64) * 13 + 1)}
    result = host_group_aggregate(
        groups, values,
        [Aggregate("sum", "x"), Aggregate("min", "x"),
         Aggregate("max", "x"), Aggregate("count")],
        HOST,
    )
    assert len(result) == n
    for key, entry in result.items():
        value = int(key[0]) * 13 + 1
        assert entry == {"sum_x": value, "min_x": value, "max_x": value, "count": 1}


# ------------------------------------------------------- engine edge cases
def test_single_record_groups_through_engine(toy_relation):
    """A selection so narrow that groups hold one or very few records."""
    query = Query(
        "narrow",
        And((Comparison("year", EQ, 1995), Comparison("discount", EQ, 10),
             Comparison("quantity", "<", 5))),
        ALL_AGGREGATES,
        group_by=("city",),
    )
    execution = _engine(toy_relation).execute(query)
    reference = _reference(toy_relation, query)
    assert execution.rows == reference
    assert reference  # the query does select a handful of records


@pytest.mark.parametrize("vectorized", [False, True])
def test_two_partition_group_by_edge_cases(toy_relation, vectorized):
    """two_xb group-by with min/max and group attrs on the remote partition."""
    query = Query(
        "two-xb-gb", SOME_FILTER, ALL_AGGREGATES, group_by=("city", "year")
    )
    engine = _engine(toy_relation, partitions=TWO_XB, vectorized=vectorized)
    execution = engine.execute(query)
    assert execution.rows == _reference(toy_relation, query)


@pytest.mark.parametrize(
    "vectorized,backend",
    [
        # The gate-level NOR simulation is fast enough on the packed backend
        # to run in the default tier; the boolean reference run stays slow.
        (False, "packed"),
        pytest.param(False, "bool", marks=pytest.mark.slow),
        (True, None),
    ],
)
def test_three_partition_group_by_spanning_two_remotes(
    toy_relation, vectorized, backend
):
    """GROUP-BY attributes on two different remote partitions.

    Every remote partition ships a bit-vector into the same landing column,
    so the engine must fold the transfers together instead of keeping only
    the last one.  A degenerate cost model forces every subgroup through
    pim-gb, which is the only path that builds per-subgroup remote masks.
    """
    from repro.core.latency_model import (
        GroupByCostModel, HostGbLatencyModel, PimGbLatencyModel,
    )

    partitions = [
        ["key", "price"],
        ["city", "region"],
        ["year", "discount", "quantity"],
    ]
    all_pim_model = GroupByCostModel(
        HostGbLatencyModel({2: 1.0}, {2: 1.0}),      # host absurdly expensive
        PimGbLatencyModel({2: 0.0}, {2: 0.0}),       # PIM free
    )
    query = Query(
        "three-xb",
        Comparison("quantity", "<", 40),
        (Aggregate("sum", "price"), Aggregate("count")),
        group_by=("region", "year"),
    )
    engine = _engine(
        toy_relation, partitions=partitions, vectorized=vectorized,
        backend=backend, cost_model=all_pim_model,
    )
    execution = engine.execute(query)
    assert execution.pim_subgroups > 0  # the folded remote path actually ran
    assert execution.rows == _reference(toy_relation, query)


@pytest.mark.parametrize(
    "backend", ["packed", pytest.param("bool", marks=pytest.mark.slow)]
)
def test_vectorized_engine_matches_gate_level_costs(toy_relation, backend):
    """Vectorized host paths: same rows, same modelled costs, same wear."""
    query = Query("paths", SOME_FILTER, ALL_AGGREGATES, group_by=("region",))
    gate = _engine(toy_relation, backend=backend).execute(query)
    fast = _engine(toy_relation, backend=backend, vectorized=True).execute(query)
    assert fast.rows == gate.rows
    assert fast.time_s == pytest.approx(gate.time_s, rel=1e-12)
    assert fast.energy_j == pytest.approx(gate.energy_j, rel=1e-12)
    assert fast.max_writes_per_row == gate.max_writes_per_row


# ----------------------------------------------------------- program cache
def test_cache_hit_and_miss_executions_are_bit_exact(toy_relation):
    """The same engine answers identically before and after cache warm-up."""
    cache = ProgramCache(capacity=64)
    engine = _engine(toy_relation, compiler=cache)
    query = Query("cached", SOME_FILTER, ALL_AGGREGATES, group_by=("city",))

    cold = engine.execute(query)
    misses_after_cold = cache.stats.misses
    assert misses_after_cold > 0 and cache.stats.hits == 0

    warm = engine.execute(query)
    assert cache.stats.misses == misses_after_cold  # everything reused
    assert cache.stats.hits > 0
    assert warm.rows == cold.rows == _reference(toy_relation, query)
    assert warm.time_s == pytest.approx(cold.time_s, rel=1e-12)

    uncached = _engine(toy_relation).execute(query)
    assert uncached.rows == warm.rows
