"""Tests of in-row arithmetic circuits and the bulk-bitwise reduction."""

import numpy as np
import pytest

from repro.pim.arithmetic import (
    BulkAggregationPlan,
    aggregate_reference,
    build_lt_fields,
    build_multiply,
    build_mux_fields,
    build_ripple_add,
    build_subtract,
)
from repro.pim.crossbar import CrossbarBank
from repro.pim.packed import make_bank
from repro.pim.logic import ProgramBuilder


A_COLS = list(range(0, 10))
B_COLS = list(range(10, 20))
DEST = list(range(20, 31))
SCRATCH = list(range(96, 128))


@pytest.fixture()
def bank():
    bank = CrossbarBank(count=2, rows=16, columns=128)
    rng = np.random.default_rng(5)
    bank.write_field_column(0, 10, rng.integers(0, 1 << 10, (2, 16)).astype(np.uint64))
    bank.write_field_column(10, 10, rng.integers(0, 1 << 10, (2, 16)).astype(np.uint64))
    return bank


def _ab(bank):
    return bank.read_field_all(0, 10), bank.read_field_all(10, 10)


def test_ripple_add(bank):
    a, b = _ab(bank)
    builder = ProgramBuilder(SCRATCH)
    build_ripple_add(builder, A_COLS, B_COLS, DEST)
    builder.build().execute(bank)
    assert np.array_equal(bank.read_field_all(20, 11), a + b)


def test_subtract_two_complement(bank):
    a, b = _ab(bank)
    builder = ProgramBuilder(SCRATCH)
    build_subtract(builder, A_COLS, B_COLS, DEST[:10])
    builder.build().execute(bank)
    assert np.array_equal(bank.read_field_all(20, 10), (a - b) & np.uint64(1023))


def test_multiply(bank):
    a, b = _ab(bank)
    builder = ProgramBuilder(SCRATCH)
    build_multiply(builder, A_COLS, B_COLS, list(range(30, 50)), list(range(60, 80)))
    builder.build().execute(bank)
    assert np.array_equal(bank.read_field_all(30, 20), a * b)


def test_lt_and_mux_fields(bank):
    a, b = _ab(bank)
    builder = ProgramBuilder(SCRATCH)
    lt = build_lt_fields(builder, A_COLS, B_COLS)
    builder.store(lt, 90)
    build_mux_fields(builder, 90, A_COLS, B_COLS, list(range(30, 40)))
    builder.build().execute(bank)
    assert np.array_equal(bank.read_column(90), a < b)
    assert np.array_equal(bank.read_field_all(30, 10), np.minimum(a, b))


@pytest.mark.parametrize(
    "backend", ["packed", pytest.param("bool", marks=pytest.mark.slow)]
)
@pytest.mark.parametrize("operation", ["sum", "min", "max", "count"])
def test_bulk_aggregation_gate_level_matches_reference(operation, backend):
    rng = np.random.default_rng(9)
    bank = make_bank(backend, count=3, rows=32, columns=220)
    values = rng.integers(0, 1 << 12, (3, 32)).astype(np.uint64)
    mask = rng.integers(0, 2, (3, 32)).astype(bool)
    bank.write_field_column(0, 12, values)
    bank.write_bool_column(20, mask)
    plan = BulkAggregationPlan(
        rows=32, field_offset=0, field_width=12, mask_column=20,
        acc_offset=30, operand_offset=60,
        scratch_columns=range(150, 220), operation=operation,
    )
    expected = aggregate_reference(values, mask, operation, plan.acc_width)
    assert np.array_equal(plan.run_gate_level(bank), expected)

    # The functional fast path produces the same values and leaves the result
    # in the same place.
    bank2 = make_bank(backend, count=3, rows=32, columns=220)
    bank2.write_field_column(0, 12, values)
    bank2.write_bool_column(20, mask)
    assert np.array_equal(plan.run_functional(bank2), expected)
    assert np.array_equal(
        bank2.read_field_all(30, plan.acc_width)[:, 0], expected
    )


def test_bulk_aggregation_cost_structure():
    plan = BulkAggregationPlan(
        rows=1024, field_offset=0, field_width=28, mask_column=40,
        acc_offset=50, operand_offset=100, scratch_columns=range(150, 200),
    )
    cost = plan.cost()
    # SUM accumulators grow by log2(rows) bits.
    assert plan.acc_width == 28 + 10
    # The reduction needs one copy per non-root row and ten combine levels.
    assert cost.total_row_copies == 1023
    assert cost.copy_cycles == 2 * 1023
    assert cost.program_cycles > 10 * plan.acc_width  # at least adder work
    assert cost.total_cycles == cost.program_cycles + cost.copy_cycles
    assert cost.writes_per_row > cost.program_cycles  # copies add wear too


def test_bulk_aggregation_rejects_unknown_operation():
    with pytest.raises(ValueError):
        BulkAggregationPlan(
            rows=16, field_offset=0, field_width=8, mask_column=10,
            acc_offset=20, operand_offset=40, scratch_columns=range(60, 80),
            operation="avg",
        )
