"""Tests of the PIM executor accounting and the module allocator."""

import dataclasses

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.pim.arithmetic import BulkAggregationPlan
from repro.pim.controller import PimExecutor
from repro.pim.logic import ProgramBuilder
from repro.pim.packed import make_bank
from repro.pim.module import OutOfPimMemoryError, PimModule
from repro.pim.stats import PimStats, combine_parallel


def _bank(count=2, rows=16, columns=128, seed=0, backend="bool"):
    bank = make_bank(backend, count=count, rows=rows, columns=columns)
    rng = np.random.default_rng(seed)
    bank.write_field_column(0, 12, rng.integers(0, 1 << 12, (count, rows)).astype(np.uint64))
    bank.write_bool_column(20, rng.integers(0, 2, (count, rows)).astype(bool))
    return bank


def test_run_program_accounts_time_energy_and_requests():
    bank = _bank()
    executor = PimExecutor(DEFAULT_CONFIG)
    builder = ProgramBuilder(range(100, 128))
    result = builder.eq_const(list(range(12)), 100)
    builder.store(result, 90)
    program = builder.build()
    executor.run_program(bank, program, pages=8, phase="filter")

    stats = executor.stats
    xbar = DEFAULT_CONFIG.pim.crossbar
    expected_time = 8 * DEFAULT_CONFIG.pim.request_issue_gap_s + program.cycles * xbar.logic_cycle_s
    assert stats.time_by_phase["filter"] == pytest.approx(expected_time)
    assert stats.pim_requests == 8
    assert stats.logic_ops == program.cycles * 8 * DEFAULT_CONFIG.pim.crossbars_per_page
    assert stats.energy_by_component["logic"] > 0
    assert stats.energy_by_component["controller"] > 0
    assert stats.peak_chip_power_w > 0


def test_aggregate_with_circuit_matches_reference_and_charges_reads():
    bank = _bank(seed=3)
    executor = PimExecutor(DEFAULT_CONFIG)
    values = bank.read_field_all(0, 12)
    mask = bank.read_column(20)
    results = executor.aggregate_with_circuit(
        bank, field_offset=0, field_width=12, mask_column=20,
        destination_offset=40, pages=1, operation="sum",
    )
    assert np.array_equal(results, (values * mask).sum(axis=1))
    assert executor.stats.bits_read > 0
    assert executor.stats.energy_by_component["agg_circuit"] > 0
    # The result was written back into row 0 of each crossbar.
    width = 12 + 4  # log2(16 rows)
    assert bank.read_field(0, 0, 40, width) == int(results[0])


def test_aggregate_with_circuit_requires_enabled_circuit():
    bank = _bank()
    executor = PimExecutor(DEFAULT_CONFIG.without_aggregation_circuit())
    with pytest.raises(RuntimeError):
        executor.aggregate_with_circuit(bank, 0, 12, 20, 40, pages=1)


def test_bulk_bitwise_aggregation_costs_more_than_circuit():
    plan_kwargs = {
        "rows": 16, "field_offset": 0, "field_width": 12, "mask_column": 20,
        "acc_offset": 40, "operand_offset": 70, "scratch_columns": range(100, 128),
    }
    bank_a = _bank(seed=5)
    circuit = PimExecutor(DEFAULT_CONFIG)
    expected = circuit.aggregate_with_circuit(bank_a, 0, 12, 20, 40, pages=4)

    bank_b = _bank(seed=5)
    bulk = PimExecutor(DEFAULT_CONFIG.without_aggregation_circuit())
    results = bulk.aggregate_bulk_bitwise(
        bank_b, BulkAggregationPlan(**plan_kwargs), pages=4
    )
    assert np.array_equal(results, expected)
    assert bulk.stats.total_time_s > circuit.stats.total_time_s
    assert bulk.stats.total_energy_j > circuit.stats.total_energy_j


@pytest.mark.parametrize(
    "backend", ["packed", pytest.param("bool", marks=pytest.mark.slow)]
)
def test_gate_level_and_functional_bulk_aggregation_agree(backend):
    plan = BulkAggregationPlan(
        rows=16, field_offset=0, field_width=12, mask_column=20,
        acc_offset=40, operand_offset=70, scratch_columns=range(100, 128),
    )
    bank_a, bank_b = _bank(seed=8, backend=backend), _bank(seed=8, backend=backend)
    functional = PimExecutor(DEFAULT_CONFIG)
    gate = PimExecutor(DEFAULT_CONFIG)
    res_f = functional.aggregate_bulk_bitwise(bank_a, plan, pages=1)
    res_g = gate.aggregate_bulk_bitwise(bank_b, plan, pages=1, gate_level=True)
    assert np.array_equal(res_f, res_g)
    assert functional.stats.total_time_s == pytest.approx(gate.stats.total_time_s)


def test_module_allocation_and_capacity():
    module = PimModule(DEFAULT_CONFIG)
    allocation = module.allocate_for_records(100_000, "relation")
    assert allocation.pages == 4  # ceil(100000 / 32768)
    assert allocation.record_capacity >= 100_000
    assert allocation.crossbar_of_record(1024) == 1
    assert allocation.row_of_record(1025) == 1
    assert allocation.page_of_record(32 * 1024) == 1
    assert module.pages_used == 4
    with pytest.raises(ValueError):
        module.allocate_pages(1, "relation")
    module.free("relation")
    assert module.pages_used == 0
    with pytest.raises(OutOfPimMemoryError):
        module.allocate_pages(module.config.pages_total + 1, "too-big")


def test_stats_merge_and_parallel_combine():
    first, second = PimStats(), PimStats()
    first.add_time("filter", 1.0)
    first.add_energy("logic", 2.0)
    first.observe_writes_per_row(10)
    second.add_time("filter", 3.0)
    second.add_energy("read", 1.0)
    second.observe_writes_per_row(4)

    merged = PimStats().merge(first).merge(second)
    assert merged.total_time_s == pytest.approx(4.0)
    assert merged.total_energy_j == pytest.approx(3.0)
    assert merged.max_writes_per_row == 10

    parallel = combine_parallel([first, second], phase="threads")
    assert parallel.time_by_phase["threads"] == pytest.approx(3.0)
    assert parallel.total_energy_j == pytest.approx(3.0)

    with pytest.raises(ValueError):
        first.add_time("bad", -1.0)
    with pytest.raises(ValueError):
        first.add_energy("bad", -1.0)


def test_request_descriptors_and_executor_fork():
    from repro.config import DEFAULT_CONFIG
    from repro.pim.controller import PimExecutor
    from repro.pim.request import (
        AggregateRequest,
        ComputeRequest,
        FilterRequest,
        MuxUpdateRequest,
        ReadRequest,
    )

    requests = [
        FilterRequest(page_index=0, cycles=12, result_column=3, description="f"),
        AggregateRequest(page_index=1, operation="min", field_offset=4,
                         field_width=8, mask_column=2, destination_offset=16),
        MuxUpdateRequest(page_index=2, field_offset=0, field_width=4,
                         update_value=9, select_column=1),
        ComputeRequest(page_index=3, cycles=7, description="derived"),
        ReadRequest(page_index=4, lines=2, description="agg results"),
    ]
    assert [r.page_index for r in requests] == [0, 1, 2, 3, 4]
    assert requests[1].uses_aggregation_circuit
    # Frozen dataclasses: descriptors are immutable accounting records.
    with pytest.raises(dataclasses.FrozenInstanceError):
        requests[0].cycles = 99

    parent = PimExecutor(DEFAULT_CONFIG)
    child = parent.fork()
    assert child.config is parent.config
    assert child.stats is not parent.stats
