"""The batched group-by execution strategy: lockstep parity and plumbing.

The batched strategy (``execution="batched"``, the default) evaluates every
PIM-resident subgroup of a GROUP-BY through one multi-output fused kernel
per vertical partition and then *replays* the per-subgroup charging through
the same accounting entry points the reference loop uses.  The contract is
total: identical result rows, bit-identical :class:`PimStats` (full
dataclass equality — float order, power-sample order, request rounding),
and identical wear counters in the stored banks.  A hypothesis property
test drives random data, selectivities, subgroup counts (K=1 and K=4),
pruning, and one- vs two-partition layouts through batched and per-subgroup
dispatch in lock step on both backends; deterministic tests pin the
multi-remote fold path, the nested-safe scatter pool, the structural
whole-plan memo key, and the pre-scatter empty-shard skip.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DEFAULT_CONFIG
from repro.core.executor import PimQueryEngine
from repro.core.latency_model import (
    GroupByCostModel,
    HostGbLatencyModel,
    PimGbLatencyModel,
)
from repro.core.parallel import ScatterPool
from repro.db.query import Aggregate, And, Comparison, Query
from repro.db.relation import Relation
from repro.db.schema import Schema, dict_attribute, int_attribute
from repro.db.storage import StoredRelation
from repro.pim.module import PimModule
from repro.pim.stats import PimStats
from repro.sharding import ShardedQueryEngine, ShardedStoredRelation

CITIES = ["LYON", "OSLO", "PERTH", "QUITO"]
REGIONS = ["NORTH", "SOUTH"]

STRATEGIES = ("batched", "dispatch")
BACKENDS = ("packed", "bool")


def all_pim_cost_model() -> GroupByCostModel:
    """Route every subgroup to PIM so the batched kernels actually run."""
    return GroupByCostModel(
        HostGbLatencyModel({2: 1.0}, {2: 1.0}),      # host absurdly expensive
        PimGbLatencyModel({2: 0.0}, {2: 0.0}),       # PIM free
    )


def _relation(seed: int, num_cities: int, records: int = 384) -> Relation:
    rng = np.random.default_rng(seed)
    schema = Schema("batch", [
        int_attribute("key", 10, source="fact"),
        int_attribute("value", 8, source="fact"),
        dict_attribute("city", CITIES, source="dim"),
        dict_attribute("region", REGIONS, source="dim"),
    ])
    return Relation(schema, {
        "key": np.sort(rng.integers(0, 1 << 10, records).astype(np.uint64)),
        "value": rng.integers(0, 1 << 8, records).astype(np.uint64),
        "city": rng.integers(0, num_cities, records).astype(np.uint64),
        "region": rng.integers(0, len(REGIONS), records).astype(np.uint64),
    })


def _execute(relation, query, backend, strategy, pruning, partitions):
    config = DEFAULT_CONFIG.with_backend(backend).with_execution(strategy)
    stored = StoredRelation(
        relation, PimModule(config), label="batch",
        partitions=partitions, aggregation_width=22,
    )
    engine = PimQueryEngine(
        stored, config=config, cost_model=all_pim_cost_model(),
        vectorized=False, pruning=pruning,
    )
    execution = engine.execute(query)
    return execution, stored.wear_snapshot()


def _assert_lockstep(relation, query, pruning, partitions):
    """batched == dispatch on both backends: rows, full stats, wear."""
    executions = {}
    for backend in BACKENDS:
        for strategy in STRATEGIES:
            executions[backend, strategy] = _execute(
                relation, query, backend, strategy, pruning, partitions
            )
    for backend in BACKENDS:
        batched, batched_wear = executions[backend, "batched"]
        dispatch, dispatch_wear = executions[backend, "dispatch"]
        assert batched.rows == dispatch.rows
        assert batched.pim_subgroups == dispatch.pim_subgroups
        # Every subgroup went through the PIM kernels (the forced plan).
        assert batched.pim_subgroups == batched.total_subgroups
        # Full dataclass equality: per-phase floats, energy components,
        # counters, power-sample order, wear maxima.
        assert batched.stats == dispatch.stats
        for ours, theirs in zip(batched_wear, dispatch_wear):
            assert np.array_equal(ours, theirs)
    assert (
        executions["packed", "batched"][0].rows
        == executions["bool", "batched"][0].rows
    )
    assert (
        executions["packed", "batched"][0].stats
        == executions["bool", "batched"][0].stats
    )


GROUP_QUERY = Query(
    "grouped", None,
    (Aggregate("sum", "value"), Aggregate("count"), Aggregate("min", "value")),
    group_by=("city",),
)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 2 ** 31),
    threshold=st.integers(0, 1 << 10),
    num_cities=st.sampled_from([1, 4]),      # K=1 and K=4 subgroups
    pruning=st.booleans(),
    split=st.booleans(),                     # one vs two vertical partitions
)
def test_batched_lockstep_with_dispatch(seed, threshold, num_cities, pruning, split):
    """Random data/selectivity: batched == per-subgroup dispatch, bit for bit."""
    relation = _relation(seed, num_cities)
    query = Query(
        "grouped", Comparison("key", "<", threshold),
        GROUP_QUERY.aggregates, group_by=("city",),
    )
    partitions = [["key", "value"], ["city", "region"]] if split else None
    _assert_lockstep(relation, query, pruning, partitions)


@pytest.mark.parametrize("pruning", [False, True])
def test_batched_lockstep_multi_remote_fold(pruning):
    """Two remote partitions: the batched equality-fold replay is bit-exact."""
    relation = _relation(seed=11, num_cities=4)
    query = Query(
        "folded",
        And((Comparison("key", "<", 700), Comparison("key", ">=", 40))),
        (Aggregate("sum", "value"), Aggregate("max", "value")),
        group_by=("city", "region"),
    )
    partitions = [["key", "value"], ["city"], ["region"]]
    _assert_lockstep(relation, query, pruning, partitions)


def test_batched_is_the_default_and_gated_on_the_circuit(monkeypatch):
    """The default config batches; without the aggregation circuit the
    engine falls back to the reference loop — and stays bit-exact."""
    monkeypatch.delenv("REPRO_EXECUTION", raising=False)
    from repro.config import default_execution

    assert default_execution() == "batched"
    relation = _relation(seed=5, num_cities=4)
    executions = {}
    for strategy in STRATEGIES:
        config = DEFAULT_CONFIG.with_execution(strategy)
        config = config.without_aggregation_circuit()
        stored = StoredRelation(
            relation, PimModule(config), label="nocircuit", aggregation_width=22
        )
        engine = PimQueryEngine(
            stored, config=config, cost_model=all_pim_cost_model(),
            vectorized=False,
        )
        executions[strategy] = engine.execute(GROUP_QUERY)
    assert executions["batched"].rows == executions["dispatch"].rows
    assert executions["batched"].stats == executions["dispatch"].stats


# --------------------------------------------------------------- scatter pool
def test_scatter_pool_nested_map_runs_inline():
    """A map issued from a pool worker runs on that worker's own thread, so
    one pool can serve both the shard scatter and the per-partition kernels
    without deadlocking on its own slots."""
    with ScatterPool(2) as pool:
        def outer(_):
            worker = threading.current_thread().name
            inner = pool.map(
                lambda _: threading.current_thread().name, [0, 1, 2]
            )
            return worker, inner

        for worker, inner in pool.map(outer, [0, 1]):
            assert all(name == worker for name in inner)


def test_scatter_pool_single_worker_runs_inline_and_ordered():
    with ScatterPool(1) as pool:
        assert pool.parallel is False
        assert pool.map(lambda x: x * x, [3, 1, 2]) == [9, 1, 4]
        assert pool._executor is None        # never spun up a thread
    with ScatterPool(3) as pool:
        assert pool.map(lambda x: x * x, list(range(8))) == [
            x * x for x in range(8)
        ]


# ------------------------------------------------------- whole-plan memo key
def test_plan_memo_keys_on_structural_predicate_form():
    """Structurally equal predicates built separately share one memo entry:
    the second request replays the plan without re-walking the zone maps."""
    relation = _relation(seed=9, num_cities=4)
    config = DEFAULT_CONFIG
    stored = StoredRelation(
        relation, PimModule(config), label="memo", aggregation_width=22
    )
    engine = PimQueryEngine(stored, config=config, pruning=True)
    statistics = engine.stored.statistics
    a = Comparison("key", "<", 512)
    b = Comparison("city", "==", "OSLO")
    first = statistics.plan(
        And((a, b)), stored.partition_attributes,
        config.pim.crossbars_per_page,
    )
    assert first.entries_checked > 0
    # Fresh objects, conjuncts reordered: same structural normal form.
    replay = statistics.plan(
        And((Comparison("city", "==", "OSLO"), Comparison("key", "<", 512))),
        stored.partition_attributes, config.pim.crossbars_per_page,
    )
    assert replay.entries_checked == 0
    for ours, theirs in zip(replay.candidates, first.candidates):
        assert np.array_equal(ours, theirs)


def test_plan_peek_defers_billing_to_the_next_request():
    relation = _relation(seed=10, num_cities=4)
    config = DEFAULT_CONFIG
    stored = StoredRelation(
        relation, PimModule(config), label="peek", aggregation_width=22
    )
    engine = PimQueryEngine(stored, config=config, pruning=True)
    statistics = engine.stored.statistics
    predicate = Comparison("key", "<", 256)
    peeked = statistics.plan(
        predicate, stored.partition_attributes,
        config.pim.crossbars_per_page, peek=True,
    )
    assert peeked.entries_checked > 0
    billed = statistics.plan(
        predicate, stored.partition_attributes, config.pim.crossbars_per_page
    )
    # The peek consumed nothing; the engine's own request pays the walk once.
    assert billed.entries_checked == peeked.entries_checked
    replay = statistics.plan(
        predicate, stored.partition_attributes, config.pim.crossbars_per_page
    )
    assert replay.entries_checked == 0


# ------------------------------------------------- pre-scatter empty shards
def test_prescatter_skips_provably_empty_shards():
    """Shards whose zone maps rule the predicate out are flagged before the
    scatter (so they never occupy a pool slot) and the merged execution is
    unchanged: bit-exact rows, zero crossbars scanned on the empty shards."""
    relation = _relation(seed=12, num_cities=4, records=512)
    engines = {}
    for pruning in (False, True):
        sharded = ShardedStoredRelation(
            relation, PimModule(DEFAULT_CONFIG), shards=4,
            label=f"pre{pruning}", aggregation_width=22,
            reserve_bulk_aggregation=False,
        )
        engines[pruning] = ShardedQueryEngine(
            sharded, label=f"pre{pruning}", vectorized=True, pruning=pruning,
        )
    # keys are sorted, so a low-key predicate empties the upper shards.
    query = Query(
        "low", Comparison("key", "<", 40),
        (Aggregate("sum", "value"), Aggregate("count")), group_by=("city",),
    )
    flags = engines[True]._prescatter_empty(query)
    assert flags[0] is False and any(flags[1:])
    assert engines[False]._prescatter_empty(query) == [False] * 4
    pruned = engines[True].execute(query)
    unpruned = engines[False].execute(query)
    assert pruned.rows == unpruned.rows
    assert pruned.shards_skipped == sum(flags)
    for flagged, execution in zip(flags, pruned.shard_executions):
        if flagged:
            assert execution.crossbars_scanned == 0


# ------------------------------------------------------------- stats totals
def test_stats_totals_breakdown_tracks_every_field():
    stats = PimStats()
    stats.add_time("filter", 0.25)
    stats.add_energy("logic", 1.5)
    stats.logic_ops = 7
    stats.add_power_sample("filter", 0.25, 3.0)
    totals = stats.totals()
    assert totals["time:filter"] == 0.25
    assert totals["energy:logic"] == 1.5
    assert totals["logic_ops"] == 7.0
    assert totals["peak_chip_power_w"] == 3.0
    other = stats.copy()
    assert other.totals() == totals
    other.add_time("filter", 1e-9)
    assert other.totals() != totals
