"""End-to-end integration: every engine answers SSB queries identically.

These tests execute a representative subset of the SSB queries (covering all
four query flights, scalar and GROUP-BY shapes, and the one-xb / two-xb /
PIMDB / mnt-join / mnt-reg configurations) on the tiny generated instance and
require bit-exact agreement with the NumPy reference evaluator.
"""

import pytest

from repro.baselines import build_pimdb_engine
from repro.columnar import ColumnarEngine
from repro.config import DEFAULT_CONFIG
from repro.core.executor import PimQueryEngine
from repro.db.query import evaluate_predicate, reference_group_aggregate
from repro.db.storage import StoredRelation
from repro.pim.module import PimModule
from repro.ssb import ALL_QUERIES
from repro.ssb.prejoined import DERIVED_ATTRIBUTES, max_aggregated_width, two_xb_partitions


QUERIES_UNDER_TEST = ("Q1.1", "Q1.3", "Q2.1", "Q2.3", "Q3.2", "Q3.4", "Q4.1", "Q4.3")


def _reference(prejoined, query):
    mask = evaluate_predicate(query.predicate, prejoined)
    return reference_group_aggregate(prejoined, mask, query.group_by, query.aggregates)


@pytest.fixture(scope="module")
def engines(ssb_dataset, ssb_prejoined):
    aggregation_width = max_aggregated_width(ssb_prejoined)
    built = {}
    module = PimModule(DEFAULT_CONFIG)
    built["one_xb"] = PimQueryEngine(
        StoredRelation(ssb_prejoined, module, label="one_xb",
                       aggregation_width=aggregation_width,
                       reserve_bulk_aggregation=False),
        label="one_xb", timing_scale=200.0,
    )
    module_two = PimModule(DEFAULT_CONFIG)
    built["two_xb"] = PimQueryEngine(
        StoredRelation(ssb_prejoined, module_two, label="two_xb",
                       partitions=two_xb_partitions(ssb_prejoined),
                       aggregation_width=aggregation_width,
                       reserve_bulk_aggregation=False),
        label="two_xb", timing_scale=200.0,
    )
    built["pimdb"], _ = build_pimdb_engine(
        ssb_prejoined, aggregation_width=aggregation_width, timing_scale=200.0
    )
    return built


@pytest.fixture(scope="module")
def columnar():
    return ColumnarEngine(DEFAULT_CONFIG, derived=DERIVED_ATTRIBUTES, workload_scale=200.0)


@pytest.mark.parametrize("query_name", QUERIES_UNDER_TEST)
def test_pim_configurations_match_reference(engines, ssb_prejoined, query_name):
    query = ALL_QUERIES[query_name]
    reference = _reference(ssb_prejoined, query)
    for label, engine in engines.items():
        execution = engine.execute(query)
        assert execution.rows == reference, (label, query_name)
        assert execution.time_s > 0
        assert execution.energy_j > 0


@pytest.mark.parametrize("query_name", QUERIES_UNDER_TEST)
def test_columnar_configurations_match_reference(
    columnar, ssb_dataset, ssb_prejoined, query_name
):
    query = ALL_QUERIES[query_name]
    reference = _reference(ssb_prejoined, query)
    assert columnar.execute_prejoined(query, ssb_prejoined).rows == reference
    assert columnar.execute_star(query, ssb_dataset.database).rows == reference


def test_shape_of_headline_comparisons(engines, ssb_prejoined, columnar):
    """Coarse shape checks of the paper's claims on the tiny instance."""
    query = ALL_QUERIES["Q1.1"]
    one = engines["one_xb"].execute(query)
    two = engines["two_xb"].execute(query)
    pimdb = engines["pimdb"].execute(query)
    mnt_join = columnar.execute_prejoined(query, ssb_prejoined)

    # On the fully PIM-aggregated flight-1 query: one-xb beats PIMDB in time,
    # energy and wear, the two-xb partitioning costs extra, and the PIM path
    # beats the columnar baseline.
    assert one.time_s < pimdb.time_s
    assert one.energy_j < pimdb.energy_j
    assert one.max_writes_per_row < pimdb.max_writes_per_row
    assert one.time_s < two.time_s
    assert one.time_s < mnt_join.time_s


def test_update_then_query_through_pim(ssb_prejoined):
    """A Section III UPDATE through Algorithm 1 is visible to later queries."""
    from repro.db.query import Comparison, EQ
    from repro.db.update import execute_update
    from repro.pim.controller import PimExecutor

    module = PimModule(DEFAULT_CONFIG)
    stored = StoredRelation(ssb_prejoined, module, label="update-int",
                            aggregation_width=28, reserve_bulk_aggregation=False)
    engine = PimQueryEngine(stored, label="one_xb")
    executor = PimExecutor(DEFAULT_CONFIG)
    # Re-label every EUROPE customer's region as ASIA, then count by region.
    result = execute_update(
        stored, Comparison("c_region", EQ, "EUROPE"), {"c_region": "ASIA"}, executor
    )
    assert result.records_updated > 0
    query = ALL_QUERIES["Q3.1"]  # filters on c_region = ASIA
    execution = engine.execute(query)
    reference = _reference(stored.relation, query)
    assert execution.rows == reference
