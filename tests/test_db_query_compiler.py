"""Tests of the query IR, the reference evaluator and the NOR compiler."""

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.db.compiler import (
    CompilationError,
    compile_group_predicate,
    compile_predicate,
    partition_conjuncts,
)
from repro.db.query import (
    Aggregate,
    And,
    BETWEEN,
    Comparison,
    EQ,
    GE,
    IN,
    LT,
    Or,
    Query,
    attributes_referenced,
    conj,
    evaluate_predicate,
    reference_group_aggregate,
)
from repro.pim.controller import PimExecutor


def test_comparison_validation():
    with pytest.raises(ValueError):
        Comparison("a", "~", 1)
    with pytest.raises(ValueError):
        Comparison("a", BETWEEN, low=1)
    with pytest.raises(ValueError):
        Comparison("a", IN)
    with pytest.raises(ValueError):
        Comparison("a", EQ)
    with pytest.raises(ValueError):
        And(())
    with pytest.raises(ValueError):
        Query("q", None, ())
    with pytest.raises(ValueError):
        Aggregate("sum")


def test_query_metadata_helpers():
    query = Query(
        "q",
        And((Comparison("year", EQ, 1993), Comparison("city", IN, values=("X",)))),
        (Aggregate("sum", "price"), Aggregate("count")),
        group_by=("city",),
    )
    assert query.filter_attributes == ["city", "year"]
    assert query.aggregate_attributes == ["price"]
    assert query.referenced_attributes == ["city", "price", "year"]
    assert attributes_referenced(query.predicate) == {"year", "city"}
    assert conj(None, None) is None
    assert conj(Comparison("a", EQ, 1)) == Comparison("a", EQ, 1)


def test_reference_evaluator_semantics(toy_relation):
    predicate = And((
        Comparison("year", BETWEEN, low=1993, high=1995),
        Or((Comparison("city", EQ, "CITY1"), Comparison("city", EQ, "CITY2"))),
        Comparison("discount", GE, 3),
    ))
    mask = evaluate_predicate(predicate, toy_relation)
    year = toy_relation.column("year")
    city = toy_relation.column("city")
    discount = toy_relation.column("discount")
    expected = ((year >= 1993) & (year <= 1995)
                & ((city == 1) | (city == 2)) & (discount >= 3))
    assert np.array_equal(mask, expected)
    # Unknown dictionary constants select nothing (or everything for !=).
    assert not evaluate_predicate(Comparison("city", EQ, "NOWHERE"), toy_relation).any()
    assert evaluate_predicate(Comparison("city", "!=", "NOWHERE"), toy_relation).all()
    assert evaluate_predicate(None, toy_relation).all()


def test_reference_group_aggregate(toy_relation):
    mask = evaluate_predicate(Comparison("discount", LT, 5), toy_relation)
    result = reference_group_aggregate(
        toy_relation, mask, ("city",),
        (Aggregate("sum", "price"), Aggregate("count"), Aggregate("min", "price")),
    )
    city = toy_relation.column("city")
    price = toy_relation.column("price")
    for code in np.unique(city[mask]):
        rows = mask & (city == code)
        entry = result[(int(code),)]
        assert entry["sum_price"] == int(price[rows].sum())
        assert entry["count"] == int(rows.sum())
        assert entry["min_price"] == int(price[rows].min())


def test_compiled_filter_matches_reference(toy_stored, toy_relation):
    predicate = And((
        Comparison("region", IN, values=("ASIA", "EUROPE")),
        Comparison("price", "<", 500_000),
        Comparison("quantity", BETWEEN, low=10, high=40),
    ))
    layout = toy_stored.layouts[0]
    program = compile_predicate(predicate, toy_relation.schema, layout)
    executor = PimExecutor(DEFAULT_CONFIG)
    executor.run_program(toy_stored.allocations[0].bank, program, pages=1)
    assert np.array_equal(
        toy_stored.filter_mask(), evaluate_predicate(predicate, toy_relation)
    )


def test_compiled_group_predicate(toy_stored, toy_relation):
    layout = toy_stored.layouts[0]
    executor = PimExecutor(DEFAULT_CONFIG)
    base = compile_predicate(
        Comparison("year", EQ, 1995), toy_relation.schema, layout
    )
    executor.run_program(toy_stored.allocations[0].bank, base, pages=1)
    group = compile_group_predicate({"city": 4}, layout)
    executor.run_program(toy_stored.allocations[0].bank, group, pages=1)
    expected = (toy_relation.column("year") == 1995) & (toy_relation.column("city") == 4)
    assert np.array_equal(
        toy_stored.column_bit(0, layout.group_column), expected
    )


def test_compiler_errors(toy_stored, toy_relation):
    layout = toy_stored.layouts[0]
    with pytest.raises(CompilationError):
        compile_predicate(Comparison("missing", EQ, 1), toy_relation.schema, layout)
    with pytest.raises(CompilationError):
        compile_group_predicate({"missing": 1}, layout)


def test_partition_conjuncts_split():
    predicate = And((
        Comparison("price", LT, 10),
        Comparison("city", EQ, "CITY1"),
        Comparison("year", EQ, 1993),
    ))
    parts = partition_conjuncts(
        predicate, [["price", "quantity"], ["city", "year"]]
    )
    assert attributes_referenced(parts[0]) == {"price"}
    assert attributes_referenced(parts[1]) == {"city", "year"}
    assert partition_conjuncts(None, [["a"], ["b"]]) == [None, None]
    with pytest.raises(CompilationError):
        partition_conjuncts(Comparison("unknown", EQ, 1), [["a"], ["b"]])


def test_compiler_unknown_attribute_everywhere(toy_stored, toy_relation):
    """Unknown attributes raise CompilationError from every compile surface."""
    layout = toy_stored.layouts[0]
    nested = And((Comparison("price", LT, 10), Comparison("ghost", EQ, 1)))
    with pytest.raises(CompilationError, match="ghost"):
        compile_predicate(nested, toy_relation.schema, layout)
    disjunct = Or((Comparison("ghost", EQ, 1), Comparison("price", LT, 10)))
    with pytest.raises(CompilationError, match="ghost"):
        compile_predicate(disjunct, toy_relation.schema, layout)


def test_compiler_out_of_domain_constant_folds_like_the_reference(
    toy_stored, toy_relation
):
    """Out-of-domain constants fold against the field domain.

    A value missing from a dictionary matches nothing (everything for NE);
    an integer beyond the encoded width puts the whole stored domain on one
    side of the comparison.  The compiled program and the reference
    evaluator must agree bit for bit on all of these.
    """
    layout = toy_stored.layouts[0]
    executor = PimExecutor(DEFAULT_CONFIG)
    bank = toy_stored.allocations[0].bank
    for predicate, expected in [
        # Dictionary value missing from the dictionary.
        (Comparison("region", EQ, "ATLANTIS"), False),
        (Comparison("region", "!=", "ATLANTIS"), True),
        (Comparison("region", IN, values=("ATLANTIS", "MU")), False),
        # Integers beyond the attribute's encoded width (discount is 4-bit).
        (Comparison("discount", EQ, 1 << 10), False),
        (Comparison("discount", "!=", 1 << 10), True),
        (Comparison("discount", LT, 1 << 10), True),
        (Comparison("discount", ">=", 1 << 10), False),
        (Comparison("discount", BETWEEN, low=0, high=1 << 10), True),
        (Comparison("discount", BETWEEN, low=1 << 10, high=1 << 11), False),
        # Negative constants (the uint64 compare must not wrap).
        (Comparison("discount", LT, -3), False),
        (Comparison("discount", ">", -3), True),
        (Comparison("discount", EQ, -3), False),
    ]:
        program = compile_predicate(predicate, toy_relation.schema, layout)
        executor.run_program(bank, program, pages=1)
        mask = toy_stored.filter_mask()
        reference = evaluate_predicate(predicate, toy_relation)
        assert np.array_equal(mask, reference), predicate
        assert bool(mask.all()) == expected and bool(mask.any()) == expected, predicate


def test_compiler_unsupported_operator_raises(toy_stored, toy_relation):
    """An operator the NOR compiler does not know raises CompilationError."""
    rogue = Comparison("price", LT, 10)
    object.__setattr__(rogue, "op", "like")  # bypass the IR validation
    with pytest.raises(CompilationError, match="unknown operator"):
        compile_predicate(rogue, toy_relation.schema, toy_stored.layouts[0])
    with pytest.raises(CompilationError, match="unknown predicate node"):
        compile_predicate(object(), toy_relation.schema, toy_stored.layouts[0])


def test_partition_conjuncts_atomic_and_spanning_predicates():
    partitions = [["price", "quantity"], ["city", "year"]]
    # A bare comparison is a one-conjunct conjunction.
    parts = partition_conjuncts(Comparison("year", EQ, 1993), partitions)
    assert parts[0] is None and attributes_referenced(parts[1]) == {"year"}
    # A disjunction is atomic: it lands in the partition covering all of it.
    local_or = Or((Comparison("city", EQ, "CITY1"), Comparison("year", EQ, 1993)))
    parts = partition_conjuncts(local_or, partitions)
    assert parts[0] is None and parts[1] is local_or
    # ... and raises when no single partition covers it.
    spanning = Or((Comparison("price", LT, 10), Comparison("year", EQ, 1993)))
    with pytest.raises(CompilationError, match="spans multiple"):
        partition_conjuncts(spanning, partitions)
    # Multiple conjuncts per partition recombine into one conjunction each.
    predicate = And((
        Comparison("price", LT, 10),
        Comparison("quantity", LT, 20),
        Comparison("city", EQ, "CITY1"),
    ))
    parts = partition_conjuncts(predicate, partitions)
    assert isinstance(parts[0], And)
    assert attributes_referenced(parts[0]) == {"price", "quantity"}
    assert attributes_referenced(parts[1]) == {"city"}
