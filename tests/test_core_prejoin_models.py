"""Tests of the pre-join builder, latency models, sampling and planner."""

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.groupby import GroupByPlanner
from repro.core.latency_model import (
    GroupByCostModel,
    HostGbLatencyModel,
    HostGbMeasurement,
    PimGbLatencyModel,
    PimGbMeasurement,
    build_analytic_cost_model,
    predict_host_gb,
    predict_pim_gb,
)
from repro.core.prejoin import DerivedAttribute, build_prejoined_relation, storage_overhead
from repro.core.sampling import estimate_subgroups
from repro.db.compiler import compile_predicate
from repro.db.query import Comparison, EQ
from repro.db.storage import StoredRelation
from repro.pim.controller import PimExecutor
from repro.pim.module import PimModule


# ----------------------------------------------------------------- pre-join
def test_prejoin_joins_every_dimension(ssb_dataset, ssb_prejoined):
    fact = ssb_dataset.lineorder
    assert len(ssb_prejoined) == len(fact)
    # Spot-check the join against a manual lookup.
    index = 17
    custkey = int(fact.column("lo_custkey")[index])
    customer = ssb_dataset.customer
    position = int(np.nonzero(customer.column("c_custkey") == custkey)[0][0])
    assert int(ssb_prejoined.column("c_city")[index]) == int(
        customer.column("c_city")[position]
    )
    # Derived attributes are materialised correctly.
    expected = (fact.column("lo_extendedprice").astype(np.int64)
                * fact.column("lo_discount").astype(np.int64))
    assert np.array_equal(
        ssb_prejoined.column("lo_revenue_discounted").astype(np.int64), expected
    )
    profit = (fact.column("lo_revenue").astype(np.int64)
              - fact.column("lo_supplycost").astype(np.int64))
    assert np.array_equal(ssb_prejoined.column("lo_profit").astype(np.int64), profit)


def test_prejoin_rejects_dangling_foreign_key(ssb_dataset):
    from repro.db.catalog import Database, ForeignKey

    broken = Database(
        relations=dict(ssb_dataset.database.relations),
        fact="lineorder",
        # Extended prices are far larger than any customer key, so this
        # foreign key dangles for (at least) some fact records.
        foreign_keys=[ForeignKey("lo_extendedprice", "customer", "c_custkey")],
    )
    with pytest.raises(ValueError):
        build_prejoined_relation(broken)


def test_derived_attribute_validation(ssb_dataset):
    with pytest.raises(ValueError):
        DerivedAttribute("bad", "mod", "lo_revenue", "lo_supplycost", 24).compute(
            {"lo_revenue": np.array([1]), "lo_supplycost": np.array([1])}
        )
    with pytest.raises(ValueError):
        DerivedAttribute("neg", "sub", "a", "b", 24).compute(
            {"a": np.array([1]), "b": np.array([2])}
        )
    with pytest.raises(ValueError):
        DerivedAttribute("overflow", "mul", "a", "b", 4).compute(
            {"a": np.array([100]), "b": np.array([100])}
        )


def test_storage_overhead_report(ssb_dataset, ssb_prejoined):
    report = storage_overhead(ssb_dataset.database, ssb_prejoined)
    assert report.fact_records == len(ssb_dataset.lineorder)
    assert report.prejoined_record_bits > report.fact_record_bits
    assert report.fits_in_single_row
    assert report.extra_pages_one_xb == 0
    assert report.prejoined_pages_two_xb == 2 * report.fact_pages
    assert 0 < report.row_utilisation <= 1.0


# ------------------------------------------------------------ latency models
def test_host_gb_model_fit_and_predict():
    truth_a, truth_b = {2: 3e-5, 4: 6e-5}, {2: 1e-5, 4: 2e-5}
    points = [
        HostGbMeasurement(pages, s, r, pages * (truth_a[s] * np.sqrt(r) + truth_b[s]))
        for pages in (50, 100, 400)
        for s in (2, 4)
        for r in (0.01, 0.1, 0.5, 0.9)
    ]
    model = HostGbLatencyModel.fit(points)
    for s in (2, 4):
        assert model.a[s] == pytest.approx(truth_a[s], rel=1e-6)
        assert model.b[s] == pytest.approx(truth_b[s], rel=1e-6)
    # Nearest-key lookup for unseen s.
    assert model.predict(100, 3, 0.25) > 0
    assert model.slope(4, 0.81) > model.slope(4, 0.01)
    with pytest.raises(ValueError):
        HostGbLatencyModel.fit([])


def test_pim_gb_model_fit_and_predict():
    points = [
        PimGbMeasurement(pages, n, pages * n * 1e-7 + 3e-5)
        for pages in (64, 256, 512)
        for n in (1, 2, 4)
    ]
    model = PimGbLatencyModel.fit(points)
    assert model.predict(256, 2) == pytest.approx(256 * 2e-7 + 3e-5, rel=1e-6)
    assert model.predict(256, 3) > 0  # nearest key
    single = PimGbLatencyModel.fit([PimGbMeasurement(100, 1, 1e-3)])
    assert single.predict(100, 1) == pytest.approx(1e-3)


def test_analytic_predictors_shape():
    cfg = DEFAULT_CONFIG
    # host-gb grows with M, r and s.
    assert predict_host_gb(cfg, 400, 4, 0.4) > predict_host_gb(cfg, 100, 4, 0.4)
    assert predict_host_gb(cfg, 400, 4, 0.4) > predict_host_gb(cfg, 400, 4, 0.01)
    assert predict_host_gb(cfg, 400, 8, 0.4) > predict_host_gb(cfg, 400, 2, 0.4)
    # pim-gb grows with M and n, and the bulk-bitwise variant is slower.
    assert predict_pim_gb(cfg, 400, 2) > predict_pim_gb(cfg, 100, 2)
    assert predict_pim_gb(cfg, 400, 2, use_aggregation_circuit=False) > predict_pim_gb(
        cfg, 400, 2, use_aggregation_circuit=True
    )
    assert predict_pim_gb(cfg, 400, 2, transfer_per_subgroup=True) > predict_pim_gb(
        cfg, 400, 2, transfer_per_subgroup=False
    )


def test_cost_model_choose_k():
    host = HostGbLatencyModel({4: 1e-4}, {4: 1e-5})
    pim = PimGbLatencyModel({2: 1e-7}, {2: 3e-5})
    model = GroupByCostModel(host, pim)

    def remaining(k):
        # Two dominant subgroups, then a long uniform tail.
        fractions = [0.4, 0.3] + [0.3 / 20] * 20
        return 0.05 * (1.0 - sum(fractions[:k]))

    k, predicted = model.choose_k(
        pages=500, aggregation_reads=2, reads_per_record=4,
        total_subgroups=22, remaining_ratio=remaining,
    )
    assert 0 <= k <= 22
    assert predicted <= model.total_latency(500, 2, 4, 0, 22, remaining)
    assert predicted <= model.total_latency(500, 2, 4, 22, 22, remaining)
    # With free PIM aggregation, taking every subgroup wins.
    free_pim = GroupByCostModel(host, PimGbLatencyModel({2: 0.0}, {2: 0.0}))
    k_all, _ = free_pim.choose_k(500, 2, 4, 22, remaining)
    assert k_all == 22


# ----------------------------------------------------------------- sampling
def _filtered_stored(relation, predicate):
    module = PimModule(DEFAULT_CONFIG)
    stored = StoredRelation(relation, module, label="sampling", aggregation_width=22)
    executor = PimExecutor(DEFAULT_CONFIG)
    program = compile_predicate(predicate, relation.schema, stored.layouts[0])
    executor.run_program(stored.allocations[0].bank, program, pages=stored.pages)
    return stored


def test_estimate_subgroups_orders_by_size(toy_relation):
    stored = _filtered_stored(toy_relation, Comparison("year", ">=", 1992))
    candidates = [(int(c),) for c in np.unique(toy_relation.column("city"))]
    estimate = estimate_subgroups(stored, ["city"], candidates)
    assert estimate.sample_size == min(len(toy_relation), 32 * 1024)
    assert estimate.observed_subgroups == len(candidates)
    fractions = [estimate.group_fractions[key] for key in estimate.ordered_groups]
    assert fractions == sorted(fractions, reverse=True)
    assert estimate.remaining_ratio(0) == pytest.approx(estimate.selectivity)
    assert estimate.remaining_ratio(len(candidates)) == pytest.approx(0.0, abs=1e-9)
    assert estimate.remaining_ratio(3) <= estimate.remaining_ratio(1)
    with pytest.raises(ValueError):
        estimate_subgroups(stored, ["city"], [])


def test_planner_uses_estimate_and_respects_total(toy_relation):
    stored = _filtered_stored(toy_relation, Comparison("year", EQ, 1995))
    candidates = [(int(c),) for c in np.unique(toy_relation.column("city"))]
    estimate = estimate_subgroups(stored, ["city"], candidates)
    planner = GroupByPlanner(build_analytic_cost_model(DEFAULT_CONFIG))
    plan = planner.plan(estimate, pages=2000, aggregation_reads=2, reads_per_record=3)
    assert plan.total_subgroups == len(candidates)
    assert plan.k == len(plan.pim_groups) <= plan.total_subgroups
    assert plan.host_pass_needed == (plan.k < plan.total_subgroups)
    assert plan.predicted_time_s <= plan.predicted_host_only_s + 1e-12
    assert plan.predicted_time_s <= plan.predicted_pim_only_s + 1e-12
