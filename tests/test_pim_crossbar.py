"""Tests of the crossbar bank functional model."""

import numpy as np
import pytest

from repro.pim.crossbar import CrossbarBank


@pytest.fixture()
def bank():
    return CrossbarBank(count=2, rows=8, columns=64)


def test_constructor_validates_dimensions():
    with pytest.raises(ValueError):
        CrossbarBank(count=0, rows=8, columns=64)


def test_field_roundtrip_single_row(bank):
    bank.write_field(0, 3, offset=10, width=12, value=0xABC)
    assert bank.read_field(0, 3, offset=10, width=12) == 0xABC
    # Other rows are untouched.
    assert bank.read_field(0, 2, offset=10, width=12) == 0


def test_write_field_rejects_out_of_range(bank):
    with pytest.raises(ValueError):
        bank.write_field(0, 0, offset=10, width=4, value=16)
    with pytest.raises(ValueError):
        bank.write_field(0, 0, offset=60, width=8, value=1)


def test_field_column_roundtrip(bank):
    values = np.arange(16, dtype=np.uint64).reshape(2, 8) * 3
    bank.write_field_column(offset=0, width=8, values=values)
    assert np.array_equal(bank.read_field_all(0, 8), values)


def test_nor_columns_semantics(bank):
    a = np.random.default_rng(0).integers(0, 2, (2, 8)).astype(bool)
    b = np.random.default_rng(1).integers(0, 2, (2, 8)).astype(bool)
    bank.bits[:, :, 5] = a
    bank.bits[:, :, 6] = b
    bank.nor_columns(7, (5, 6))
    assert np.array_equal(bank.read_column(7), ~(a | b))


def test_nor_requires_sources(bank):
    with pytest.raises(ValueError):
        bank.nor_columns(7, ())


def test_wear_counting_for_bulk_and_row_writes(bank):
    start = bank.wear_snapshot()
    bank.nor_columns(1, (2,))          # one cell write per row
    bank.set_column(2, True)           # one more per row
    bank.write_field(0, 0, 8, 4, 7)    # four cells in crossbar 0, row 0
    assert bank.max_writes_since(start) == 2 + 4
    assert bank.writes_per_row[1, 0] == 2
    bank.reset_wear()
    assert bank.max_writes_since() == 0


def test_copy_row_pairs_moves_fields_and_counts_wear(bank):
    values = np.arange(16, dtype=np.uint64).reshape(2, 8)
    bank.write_field_column(offset=0, width=8, values=values, count_wear=False)
    src = np.array([1, 3])
    dst = np.array([0, 2])
    bank.copy_row_pairs(src, dst, src_offset=0, dst_offset=20, width=8)
    moved = bank.read_field_all(20, 8)
    assert np.array_equal(moved[:, [0, 2]], values[:, [1, 3]])
    assert bank.writes_per_row[0, 0] == 8
    assert bank.writes_per_row[0, 1] == 0
