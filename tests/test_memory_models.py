"""Tests of the area, endurance and energy models."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.memory.area import AreaParameters, ChipAreaModel
from repro.memory.endurance import (
    RRAM_ENDURANCE_WRITES,
    SECONDS_PER_YEAR,
    lifetime_years,
    required_endurance,
    writes_per_cell,
)
from repro.memory.energy import average_power_w, energy_breakdown, energy_per_record_j
from repro.pim.stats import PimStats


def test_chip_area_matches_paper_breakdown():
    model = ChipAreaModel()
    assert model.chip_area_mm2 == pytest.approx(346.0, rel=0.03)
    breakdown = model.breakdown()
    assert sum(breakdown.values()) == pytest.approx(1.0)
    assert breakdown["Aggregation circuits"] == pytest.approx(0.139, abs=0.02)
    assert breakdown["Crossbars"] == pytest.approx(0.1924, abs=0.02)
    assert breakdown["Crossbar peripherals"] == pytest.approx(0.404, abs=0.03)
    assert breakdown["PIM controllers"] == pytest.approx(0.0684, abs=0.02)


def test_chip_area_without_circuit_is_smaller():
    with_circuit = ChipAreaModel()
    without = ChipAreaModel(DEFAULT_CONFIG.without_aggregation_circuit())
    assert without.chip_area_mm2 < with_circuit.chip_area_mm2
    assert with_circuit.aggregation_circuit_overhead() > 0.1
    assert without.breakdown()["Aggregation circuits"] == 0.0


def test_area_scales_with_geometry():
    model = ChipAreaModel(parameters=AreaParameters(cell_area_um2=0.004))
    assert model.breakdown()["Crossbars"] > ChipAreaModel().breakdown()["Crossbars"]


def test_endurance_and_lifetime():
    assert writes_per_cell(512, 512) == 1.0
    with pytest.raises(ValueError):
        writes_per_cell(1, 0)
    with pytest.raises(ValueError):
        required_endurance(100, 512, 0.0)
    # One write per cell per query, one query per second, ten years.
    needed = required_endurance(512, 512, 1.0, years=10)
    assert needed == pytest.approx(10 * SECONDS_PER_YEAR)
    # Lifetime is the inverse relation.
    years = lifetime_years(512, 512, 1.0, endurance_writes=needed)
    assert years == pytest.approx(10.0)
    assert lifetime_years(0, 512, 1.0) == float("inf")
    # Faster queries with the same per-query wear require more endurance.
    assert required_endurance(100, 512, 0.01) > required_endurance(100, 512, 0.1)
    assert RRAM_ENDURANCE_WRITES == pytest.approx(1e12)


def test_energy_breakdown_and_average_power():
    stats = PimStats()
    stats.add_energy("logic", 2e-3)
    stats.add_energy("read", 1e-3)
    stats.add_time("filter", 0.5)
    breakdown = energy_breakdown(stats)
    assert breakdown["logic"] == pytest.approx(2e-3)
    assert breakdown["total"] == pytest.approx(3e-3)
    assert breakdown["write"] == 0.0
    assert average_power_w(stats) == pytest.approx(6e-3)
    assert average_power_w(PimStats()) == 0.0
    assert energy_per_record_j(stats, 1000) == pytest.approx(3e-6)
    with pytest.raises(ValueError):
        energy_per_record_j(stats, 0)
