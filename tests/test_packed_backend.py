"""Bit-exactness of the packed crossbar backend against the boolean reference.

The packed backend (:mod:`repro.pim.packed`) stores each column as row-packed
uint64 words and must be indistinguishable from the byte-per-bit
:class:`~repro.pim.crossbar.CrossbarBank`: identical stored bits, decoded
fields, wear counters, error behaviour — and, because stats are charged from
program metadata only, identical :class:`~repro.pim.stats.PimStats` for every
query execution.  This module locks all of that in:

* a hypothesis property test drives random programs (NOR / init / field IO /
  row copies / broadcast writes) against both backends in lock step;
* the 13 SSB queries run on both backends at K=1 and sharded K=4 and must
  produce bit-identical rows and bit-identical stats (the gate-level NOR
  path for a representative subset in the default tier, the full sweep
  behind the ``slow`` marker).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DEFAULT_CONFIG
from repro.core.executor import PimQueryEngine
from repro.db.storage import StoredRelation
from repro.pim.crossbar import CrossbarBank
from repro.pim.module import PimModule
from repro.pim.packed import PackedCrossbarBank, make_bank
from repro.pim.stats import PimStats
from repro.sharding import ShardedQueryEngine, ShardedStoredRelation
from repro.ssb import ALL_QUERIES, QUERY_ORDER
from repro.ssb.prejoined import max_aggregated_width

ROWS = 70          # crosses the 64-row word boundary
COLUMNS = 48
COUNT = 2

#: Queries exercising the three execution shapes (scalar aggregate,
#: pim-gb/host-gb mix, multi-attribute GROUP-BY) in the default tier.
REPRESENTATIVE = ("Q1.1", "Q2.1", "Q4.1")


# --------------------------------------------------------------- equality
def assert_banks_equal(a, b) -> None:
    """Both backends hold the same cells and the same wear counters."""
    assert (a.count, a.rows, a.columns) == (b.count, b.rows, b.columns)
    for column in range(a.columns):
        assert np.array_equal(a.read_column(column), b.read_column(column)), (
            f"column {column} differs"
        )
    assert np.array_equal(a.writes_per_row, b.writes_per_row)


def assert_stats_identical(a: PimStats, b: PimStats) -> None:
    """Bit-identical modelled statistics (times, energies, counters, power)."""
    # Granular asserts first for readable failure diagnostics ...
    assert dict(a.time_by_phase) == dict(b.time_by_phase)
    assert dict(a.energy_by_component) == dict(b.energy_by_component)
    assert a.logic_ops == b.logic_ops
    assert a.bits_read == b.bits_read
    assert a.bits_written == b.bits_written
    assert a.max_writes_per_row == b.max_writes_per_row
    assert a.power_samples == b.power_samples
    # ... then the dataclass equality, which also covers any field the
    # enumeration above does not know about.
    assert a == b


# ------------------------------------------------------- random program ops
def _apply(op, bank):
    kind = op[0]
    if kind == "nor":
        bank.nor_columns(op[1], op[2])
    elif kind == "init":
        bank.set_column(op[1], op[2])
    elif kind == "write_field":
        bank.write_field(op[1], op[2], op[3], op[4], op[5])
    elif kind == "write_field_column":
        bank.write_field_column(op[1], op[2], op[3])
    elif kind == "write_bool_column":
        bank.write_bool_column(op[1], op[2])
    elif kind == "copy_row_pairs":
        bank.copy_row_pairs(op[1], op[2], op[3], op[4], op[5])
    elif kind == "write_field_rows":
        bank.write_field_rows(op[1], op[2], op[3], op[4])
    elif kind == "write_field_row":
        bank.write_field_row(op[1], op[2], op[3], op[4])
    else:  # pragma: no cover - defensive
        raise AssertionError(kind)


@st.composite
def bank_ops(draw):
    column = st.integers(0, COLUMNS - 1)
    row = st.integers(0, ROWS - 1)
    rng = np.random.default_rng(draw(st.integers(0, 2 ** 31)))
    kind = draw(st.sampled_from([
        "nor", "init", "write_field", "write_field_column",
        "write_bool_column", "copy_row_pairs", "write_field_rows",
        "write_field_row",
    ]))
    if kind == "nor":
        srcs = tuple(draw(st.lists(column, min_size=1, max_size=2)))
        return ("nor", draw(column), srcs)
    if kind == "init":
        return ("init", draw(column), draw(st.booleans()))
    width = draw(st.integers(1, 12))
    offset = draw(st.integers(0, COLUMNS - width))
    if kind == "write_field":
        value = draw(st.integers(0, (1 << width) - 1))
        return ("write_field", draw(st.integers(0, COUNT - 1)), draw(row),
                offset, width, value)
    if kind == "write_field_column":
        values = rng.integers(0, 1 << width, (COUNT, ROWS)).astype(np.uint64)
        return ("write_field_column", offset, width, values)
    if kind == "write_bool_column":
        values = rng.integers(0, 2, (COUNT, ROWS)).astype(bool)
        return ("write_bool_column", draw(column), values)
    if kind == "copy_row_pairs":
        pairs = draw(st.integers(1, ROWS // 2))
        rows = rng.permutation(ROWS)[: 2 * pairs]
        dst_offset = draw(st.integers(0, COLUMNS - width))
        return ("copy_row_pairs", rows[:pairs], rows[pairs:],
                offset, dst_offset, width)
    if kind == "write_field_rows":
        n = draw(st.integers(0, ROWS))
        value = draw(st.integers(0, (1 << width) - 1))
        return ("write_field_rows", rng.permutation(ROWS)[:n], offset, width, value)
    values = rng.integers(0, 1 << width, COUNT).astype(np.uint64)
    return ("write_field_row", draw(row), offset, width, values)


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(bank_ops(), min_size=1, max_size=12),
       probe=st.integers(0, 2 ** 31))
def test_random_programs_bit_exact_across_backends(ops, probe):
    """Random op sequences leave both backends in bit-identical states."""
    ref = CrossbarBank(COUNT, ROWS, COLUMNS)
    packed = PackedCrossbarBank(COUNT, ROWS, COLUMNS)
    for op in ops:
        _apply(op, ref)
        _apply(op, packed)
    assert_banks_equal(ref, packed)
    rng = np.random.default_rng(probe)
    for _ in range(4):
        width = int(rng.integers(1, 13))
        offset = int(rng.integers(0, COLUMNS - width + 1))
        assert np.array_equal(
            ref.read_field_all(offset, width), packed.read_field_all(offset, width)
        )
        xbar, row = int(rng.integers(COUNT)), int(rng.integers(ROWS))
        assert ref.read_field(xbar, row, offset, width) == \
            packed.read_field(xbar, row, offset, width)


# ------------------------------------------------------------- unit checks
def test_padding_rows_stay_zero():
    """Bits beyond ``rows`` in the last packed word never leak into results."""
    bank = PackedCrossbarBank(1, 70, 8)
    bank.set_column(0, True)
    bank.nor_columns(1, (2,))   # NOR of zeros -> all ones
    assert bank.words[0, 0, 1] == np.uint64((1 << 6) - 1)
    assert bank.words[0, 1, 1] == np.uint64((1 << 6) - 1)
    assert bank.read_column(0).sum() == 70
    assert bank.read_field_all(0, 2).shape == (1, 70)


def test_validation_parity_with_reference():
    """Both backends raise the same errors on the same bad inputs."""
    for bank in (CrossbarBank(1, 8, 16), PackedCrossbarBank(1, 8, 16)):
        with pytest.raises(ValueError):
            bank.write_field(0, 0, offset=0, width=4, value=16)
        # Out-of-range rows fail loudly before any mutation (the packed
        # word arithmetic would otherwise silently target padding bits).
        for row in (8, -1):
            with pytest.raises(ValueError):
                bank.write_field(0, row, offset=0, width=4, value=1)
            with pytest.raises(ValueError):
                bank.read_field(0, row, offset=0, width=4)
            with pytest.raises(ValueError):
                bank.write_field_rows(np.array([0, row]), 0, 4, 1)
            with pytest.raises(ValueError):
                bank.write_field_row(row, 0, 4, np.array([1], dtype=np.uint64))
        assert bank.max_writes_since() == 0  # nothing was written
        with pytest.raises(ValueError):
            bank.write_field(0, 0, offset=14, width=4, value=1)
        with pytest.raises(ValueError):
            bank.read_field_all(0, 0)
        with pytest.raises(ValueError):
            bank.nor_columns(0, ())
        with pytest.raises(ValueError):
            bank.read_column(16)
        with pytest.raises(ValueError):
            bank.write_bool_column(3, np.zeros((2, 8), dtype=bool))
        with pytest.raises(ValueError):
            bank.write_field_row(0, 0, 4, np.array([16], dtype=np.uint64))
        with pytest.raises(ValueError):
            bank.copy_row_pairs(np.array([0]), np.array([1, 2]), 0, 8, 4)
    with pytest.raises(ValueError):
        PackedCrossbarBank(0, 8, 16)
    with pytest.raises(ValueError):
        make_bank("sparse", 1, 8, 16)


def test_make_bank_selects_backend():
    assert isinstance(make_bank("packed", 1, 8, 16), PackedCrossbarBank)
    assert isinstance(make_bank("bool", 1, 8, 16), CrossbarBank)
    assert make_bank(DEFAULT_CONFIG.backend, 1, 8, 16).backend == DEFAULT_CONFIG.backend


def test_module_allocates_configured_backend():
    packed_module = PimModule(DEFAULT_CONFIG.with_backend("packed"))
    bool_module = PimModule(DEFAULT_CONFIG.with_backend("bool"))
    assert isinstance(
        packed_module.allocate_pages(1, "a").bank, PackedCrossbarBank
    )
    assert isinstance(bool_module.allocate_pages(1, "a").bank, CrossbarBank)


# -------------------------------------------------------- SSB query parity
def _one_xb_engine(prejoined, backend, vectorized):
    config = DEFAULT_CONFIG.with_backend(backend)
    module = PimModule(config)
    stored = StoredRelation(
        prejoined, module, label="one_xb",
        aggregation_width=max_aggregated_width(prejoined),
        reserve_bulk_aggregation=False,
    )
    return PimQueryEngine(
        stored, label="one_xb", timing_scale=100.0, vectorized=vectorized
    )


@pytest.fixture(scope="module")
def parity_engines(ssb_prejoined):
    """Gate-level one-xb engines on both backends (module-scoped)."""
    return {
        backend: _one_xb_engine(ssb_prejoined, backend, vectorized=False)
        for backend in ("bool", "packed")
    }


def _assert_query_parity(engines, query_name):
    query = ALL_QUERIES[query_name]
    reference = engines["bool"].execute(query)
    candidate = engines["packed"].execute(query)
    assert candidate.rows == reference.rows, query_name
    assert candidate.selectivity == reference.selectivity
    assert candidate.max_writes_per_row == reference.max_writes_per_row
    assert_stats_identical(candidate.stats, reference.stats)


@pytest.mark.parametrize("query_name", REPRESENTATIVE)
def test_ssb_gate_level_parity_representative(parity_engines, query_name):
    """Gate-level NOR execution: identical rows and stats on both backends."""
    _assert_query_parity(parity_engines, query_name)


@pytest.mark.slow
@pytest.mark.parametrize(
    "query_name", [q for q in QUERY_ORDER if q not in REPRESENTATIVE]
)
def test_ssb_gate_level_parity_full_sweep(parity_engines, query_name):
    """The remaining SSB queries, gate level on both backends."""
    _assert_query_parity(parity_engines, query_name)


@pytest.fixture(scope="module")
def sharded_parity_engines(ssb_prejoined):
    """Vectorized K=4 scatter-gather engines on both backends."""
    width = max_aggregated_width(ssb_prejoined)
    engines = {}
    for backend in ("bool", "packed"):
        module = PimModule(DEFAULT_CONFIG.with_backend(backend))
        sharded = ShardedStoredRelation(
            ssb_prejoined, module, shards=4, label=f"parity-{backend}",
            aggregation_width=width, reserve_bulk_aggregation=False,
        )
        engines[backend] = ShardedQueryEngine(
            sharded, label=f"parity-{backend}", timing_scale=100.0,
            vectorized=True,
        )
    return engines


def test_backend_speed_experiment_smoke(tmp_path):
    """The backend-speed experiment: equivalence gates and JSON artifact."""
    import json

    from repro.experiments import backend_speed

    results = backend_speed.run_backend_speed(
        scale_factor=0.002, with_service=False
    )
    assert results.bit_exact
    assert results.stats_identical
    assert results.speedup > 1.0      # the real >=5x gate lives in benchmarks
    assert "Q1.1" in backend_speed.render(results)
    path = tmp_path / "BENCH_backend.json"
    backend_speed.write_artifact(results, path)
    record = json.loads(path.read_text())
    assert record["bit_exact"] is True
    assert record["stats_identical"] is True
    assert len(record["queries"]) == len(QUERY_ORDER)


@pytest.mark.parametrize("query_name", QUERY_ORDER)
def test_ssb_sharded_parity_k4(sharded_parity_engines, query_name):
    """All 13 SSB queries sharded K=4: identical rows and stats per backend."""
    query = ALL_QUERIES[query_name]
    reference = sharded_parity_engines["bool"].execute(query)
    candidate = sharded_parity_engines["packed"].execute(query)
    assert candidate.rows == reference.rows, query_name
    assert_stats_identical(candidate.stats, reference.stats)
    for cand_shard, ref_shard in zip(
        candidate.shard_executions, reference.shard_executions
    ):
        assert_stats_identical(cand_shard.stats, ref_shard.stats)
