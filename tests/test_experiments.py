"""Tests of the experiment harness (small-scale, subset of configurations)."""

import pytest

from repro.experiments import build_setup, run_all_queries
from repro.experiments import (
    ablation,
    fig5_area,
    fig6_latency,
    fig7_energy,
    fig8_power,
    fig9_endurance,
    headline,
    table1_config,
    table2_summary,
)
from repro.experiments.common import format_table, geomean, records_by


@pytest.fixture(scope="module")
def small_setup():
    """A reduced set-up: tiny scale factor, subset of queries/configs."""
    return build_setup(scale_factor=0.002, configs=("one_xb", "pimdb", "mnt_join"))


@pytest.fixture(scope="module")
def small_records(small_setup):
    return run_all_queries(
        small_setup, queries=("Q1.1", "Q2.3", "Q3.1", "Q4.1"), verify=True
    )


def test_setup_builds_requested_configs(small_setup):
    assert set(small_setup.pim_engines) == {"one_xb", "pimdb"}
    assert small_setup.configs == ("one_xb", "pimdb", "mnt_join")
    assert small_setup.timing_scale > 1
    assert small_setup.modelled_pages > small_setup.pim_engines["one_xb"].stored.pages


def test_run_all_queries_is_cached_and_verified(small_setup, small_records):
    assert run_all_queries(small_setup) is small_records
    assert len(small_records) == 4 * 3
    by = records_by(small_records)
    assert by[("one_xb", "Q1.1")].time_s > 0


def test_helpers():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert geomean([]) == 0.0
    text = format_table(["a", "b"], [[1, 2.5], ["x", 0.0001]])
    assert "a" in text and "x" in text


def test_table1_and_fig5_render():
    assert "Crossbar rows" in table1_config.render()
    assert "Aggregation circuits" in fig5_area.render()
    rows = fig5_area.fig5_rows()
    assert abs(sum(share for _, _, share, _ in rows) - 1.0) < 1e-9


def test_figure_modules_render_from_records(small_records):
    configs = ("one_xb", "pimdb", "mnt_join")
    assert "Query" in fig6_latency.render(small_records, configs=configs)
    assert "geo-mean" in fig7_energy.render(small_records, configs=("one_xb", "pimdb"))
    assert "peak power" in fig8_power.render(small_records, configs=("one_xb", "pimdb"))
    assert "lifetime" in fig9_endurance.render(small_records, configs=("one_xb", "pimdb"))
    assert "Measured" in headline.render(small_records)
    assert "paper total" in table2_summary.render(small_records)


def test_speedup_and_ratio_helpers(small_records):
    ratios = fig6_latency.speedups(small_records, "mnt_join")
    assert "geomean" in ratios and ratios["geomean"] > 0
    assert fig7_energy.pimdb_energy_ratio(small_records) > 0
    assert fig8_power.pimdb_power_ratio(small_records) > 0
    metrics = headline.headline_metrics(small_records)
    names = {m.name for m in metrics}
    assert any("pimdb" in name for name in names)


def test_ablation_helpers(small_setup):
    rows = ablation.aggregation_circuit_ablation(small_setup, queries=("Q1.1",))
    variants = {row.variant for row in rows}
    assert variants == {"with circuit", "bulk-bitwise only"}
    report = ablation.prejoin_storage_report(small_setup)
    assert report.fits_in_single_row
    sampling_rows = ablation.sampling_ablation(small_setup, sample_pages=(1, 2))
    assert len(sampling_rows) == 2
    assert "Pre-join storage accounting" in ablation.render(small_setup)
