"""The DML subsystem: in-place INSERT/DELETE with slot reuse and compaction.

The contract under test: after *any* interleaving of INSERT, DELETE, UPDATE
and queries, every engine path — gate-level NOR, vectorized, packed or
boolean backend, unsharded or sharded — returns rows bit-exact with an
independently maintained functional ground truth, and deleted rows never
contribute to any aggregate.  A hypothesis state-machine-style property test
drives random interleavings at K=1 and sharded K=4 on both backends; focused
unit tests pin down slot reuse order, capacity errors, compaction thresholds,
two-xb tombstone propagation and the hardened validation paths.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DEFAULT_CONFIG
from repro.core.executor import PimQueryEngine
from repro.db.dml import (
    compile_delete,
    execute_compaction,
    execute_delete,
    execute_insert,
)
from repro.db.query import (
    Aggregate,
    Comparison,
    Query,
    evaluate_predicate,
    reference_group_aggregate,
)
from repro.db.relation import Relation
from repro.db.schema import Schema, dict_attribute, int_attribute
from repro.db.storage import RelationFullError, StoredRelation
from repro.db.update import execute_update
from repro.pim.controller import PimExecutor
from repro.pim.module import PimModule
from repro.sharding import (
    ShardedQueryEngine,
    ShardedStoredRelation,
    execute_sharded_compaction,
    execute_sharded_delete,
    execute_sharded_insert,
    execute_sharded_update,
)

BACKENDS = ("packed", "bool")
CITIES = ["LYON", "OSLO", "PERTH"]


def small_schema() -> Schema:
    return Schema("dml", [
        int_attribute("key", 8, source="fact"),
        int_attribute("value", 10, source="fact"),
        dict_attribute("city", CITIES, source="dim"),
    ])


def small_relation(records: int = 48, seed: int = 7) -> Relation:
    rng = np.random.default_rng(seed)
    schema = small_schema()
    return Relation(schema, {
        "key": rng.integers(0, 256, records).astype(np.uint64),
        "value": rng.integers(0, 1024, records).astype(np.uint64),
        "city": rng.integers(0, len(CITIES), records).astype(np.uint64),
    })


def config_for(backend: str):
    return DEFAULT_CONFIG.with_backend(backend)


SCALAR_QUERY = Query(
    "scalar", Comparison("value", "<", 700),
    (Aggregate("sum", "value"), Aggregate("count"), Aggregate("min", "value")),
)
GROUP_QUERY = Query(
    "grouped", Comparison("value", ">=", 100),
    (Aggregate("sum", "value"), Aggregate("count"), Aggregate("max", "value")),
    group_by=("city",),
)


def reference_rows(live: Relation, query: Query):
    mask = evaluate_predicate(query.predicate, live)
    return reference_group_aggregate(live, mask, query.group_by, query.aggregates)


def assert_live_matches(live: Relation, model_rows) -> None:
    """The stored live ground truth equals the independent model (as bags)."""
    got = sorted(
        tuple(int(live.columns[n][i]) for n in live.schema.names)
        for i in range(len(live))
    )
    expected = sorted(
        tuple(int(row[n]) for n in live.schema.names) for row in model_rows
    )
    assert got == expected


# ------------------------------------------------------------------- DELETE
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("vectorized", [False, True])
def test_delete_tombstones_every_query_path(backend, vectorized):
    config = config_for(backend)
    relation = small_relation(64)
    stored = StoredRelation(relation, PimModule(config), label="t")
    engine = PimQueryEngine(stored, config=config, vectorized=vectorized)
    executor = PimExecutor(config)

    predicate = Comparison("city", "==", "OSLO")
    doomed = evaluate_predicate(predicate, relation)
    result = execute_delete(stored, predicate, executor, vectorized=vectorized)

    assert result.records_deleted == int(doomed.sum()) > 0
    assert stored.tombstone_count == result.records_deleted
    assert stored.live_count == 64 - result.records_deleted
    assert not stored.valid_mask()[doomed].any()

    live = stored.live_relation()
    for query in (SCALAR_QUERY, GROUP_QUERY):
        execution = engine.execute(query)
        assert execution.rows == reference_rows(live, query)
    # Deleted rows never contribute: the OSLO group is gone entirely.
    grouped = engine.execute(GROUP_QUERY).rows
    oslo = CITIES.index("OSLO")
    assert all(key != (oslo,) for key in grouped)
    # Modelled stats were charged for both DELETE phases.
    assert executor.stats.time_by_phase["delete-filter"] > 0
    assert executor.stats.time_by_phase["delete-clear"] > 0


def test_delete_two_xb_propagates_tombstones_across_partitions():
    config = config_for("packed")
    relation = small_relation(40)
    stored = StoredRelation(
        relation, PimModule(config), label="two",
        partitions=[["key", "value"], ["city"]],
    )
    executor = PimExecutor(config)
    result = execute_delete(stored, Comparison("city", "==", "LYON"), executor)
    assert result.records_deleted > 0
    # Both partitions' valid columns agree after the host transfer.
    assert np.array_equal(stored.valid_mask(0), stored.valid_mask(1))
    assert executor.stats.time_by_phase["delete-transfer"] > 0
    engine = PimQueryEngine(stored, config=config)
    live = stored.live_relation()
    assert engine.execute(SCALAR_QUERY).rows == reference_rows(live, SCALAR_QUERY)


def test_delete_rejects_mismatched_compiled_statement():
    config = config_for("packed")
    stored = StoredRelation(small_relation(), PimModule(config), label="t")
    compiled = compile_delete(stored, Comparison("value", "<", 10))
    with pytest.raises(ValueError, match="compiled delete"):
        execute_delete(
            stored, Comparison("value", "<", 20), PimExecutor(config),
            compiled=compiled,
        )


def test_delete_everything_then_queries_return_no_rows():
    config = config_for("packed")
    stored = StoredRelation(small_relation(32), PimModule(config), label="t")
    engine = PimQueryEngine(stored, config=config, vectorized=True)
    execute_delete(stored, None, PimExecutor(config), vectorized=True)
    assert stored.live_count == 0
    assert engine.execute(SCALAR_QUERY).rows == {}
    assert engine.execute(GROUP_QUERY).rows == {}


# ------------------------------------------------------------------- INSERT
def test_insert_reuses_lowest_tombstones_then_grows_tail():
    config = config_for("packed")
    schema = small_schema()
    relation = Relation(schema, {
        "key": np.arange(30, dtype=np.uint64),
        "value": np.arange(30, dtype=np.uint64) * 30 % 1024,
        "city": np.arange(30, dtype=np.uint64) % 3,
    })
    stored = StoredRelation(relation, PimModule(config), label="t")
    executor = PimExecutor(config)
    execute_delete(
        stored, Comparison("key", "in", values=(3, 11, 20)), executor
    )
    tombstones = sorted(np.nonzero(~stored.valid_mask())[0])
    assert tombstones == [3, 11, 20]
    fresh = [{"key": 1, "value": 2, "city": "LYON"}
             for _ in range(len(tombstones) + 2)]
    result = execute_insert(stored, fresh, executor)
    # Tombstones reused lowest-first, then the spare tail grows num_records.
    assert result.slots[: len(tombstones)] == [int(t) for t in tombstones]
    assert result.slots[len(tombstones):] == [30, 31]
    assert result.reused_slots == len(tombstones)
    assert result.appended_slots == 2
    assert stored.num_records == 32 == len(stored.relation)
    assert stored.tombstone_count == 0
    # The inserted rows are live and visible to queries and ground truth.
    live = stored.live_relation()
    assert len(live) == stored.live_count == 32
    engine = PimQueryEngine(stored, config=config, vectorized=True)
    assert engine.execute(GROUP_QUERY).rows == reference_rows(live, GROUP_QUERY)
    assert executor.stats.time_by_phase["insert-write"] > 0


def test_insert_validates_records_loudly_and_atomically():
    config = config_for("packed")
    stored = StoredRelation(small_relation(16), PimModule(config), label="t")
    executor = PimExecutor(config)
    good = {"key": 1, "value": 2, "city": "LYON"}
    with pytest.raises(ValueError, match="missing attribute"):
        execute_insert(stored, [good, {"key": 1, "value": 2}], executor)
    with pytest.raises(ValueError, match="does not fit"):
        execute_insert(
            stored, [good, {"key": 1 << 9, "value": 2, "city": "LYON"}], executor
        )
    with pytest.raises(KeyError):
        execute_insert(
            stored, [good, {"key": 1, "value": 2, "city": "ATLANTIS"}], executor
        )
    # A bad record anywhere in the batch means nothing was applied: the good
    # record ahead of it must not have been half-inserted.
    assert stored.live_count == 16
    assert stored.num_records == 16 == len(stored.relation)
    assert executor.stats.total_time_s == 0.0


def test_insert_full_relation_raises_before_touching_anything():
    config = config_for("packed")
    relation = small_relation(20)
    stored = StoredRelation(relation, PimModule(config), label="t")
    stored.num_records = stored.record_capacity  # pretend the tail is gone
    stored.live_count = stored.record_capacity
    with pytest.raises(RelationFullError):
        execute_insert(
            stored, [{"key": 1, "value": 2, "city": "LYON"}], PimExecutor(config)
        )


# --------------------------------------------------------------- COMPACTION
def test_compaction_threshold_and_slot_reclaim():
    config = config_for("packed")
    relation = small_relation(50)
    stored = StoredRelation(relation, PimModule(config), label="t")
    executor = PimExecutor(config)
    execute_delete(stored, Comparison("value", "<", 200), executor)
    fragmentation = stored.fragmentation
    assert 0 < fragmentation < 1

    skipped = execute_compaction(stored, executor, threshold=1.1)
    assert not skipped.performed

    before_live = stored.live_relation()
    result = execute_compaction(stored, executor, threshold=fragmentation / 2)
    assert result.performed
    assert result.slots_after == stored.num_records == stored.live_count
    assert result.slots_reclaimed == result.slots_before - result.slots_after
    assert stored.tombstone_count == 0
    assert stored.fragmentation == 0.0
    # Compaction preserves the live contents exactly (dense, order-preserving).
    after_live = stored.live_relation()
    for name in relation.schema.names:
        assert np.array_equal(after_live.columns[name], before_live.columns[name])
        assert np.array_equal(stored.decode_column(name), after_live.columns[name])
    assert executor.stats.time_by_phase["compact-read"] > 0
    assert executor.stats.time_by_phase["compact-write"] > 0

    engine = PimQueryEngine(stored, config=config, vectorized=True)
    assert engine.execute(GROUP_QUERY).rows == reference_rows(after_live, GROUP_QUERY)


def test_compaction_noop_without_tombstones():
    config = config_for("packed")
    stored = StoredRelation(small_relation(16), PimModule(config), label="t")
    assert not execute_compaction(stored, PimExecutor(config), force=True).performed


def test_compaction_of_fully_deleted_relation_reclaims_all_slots():
    config = config_for("packed")
    stored = StoredRelation(small_relation(16), PimModule(config), label="t")
    executor = PimExecutor(config)
    engine = PimQueryEngine(stored, config=config, vectorized=True)
    execute_delete(stored, None, executor)
    assert stored.live_count == 0

    # Metadata-only reclaim: nothing to rewrite, all 16 slots come back.
    result = execute_compaction(stored, executor, force=True)
    assert result.performed
    assert result.slots_reclaimed == 16
    assert stored.num_records == 0 == len(stored.relation)
    assert stored.fragmentation == 0.0
    # Queries over the emptied relation still work and return no rows.
    assert engine.execute(SCALAR_QUERY).rows == {}
    assert engine.execute(GROUP_QUERY).rows == {}
    # And the relation is usable again: inserts land in the reclaimed slots.
    insert = execute_insert(
        stored, [{"key": 1, "value": 150, "city": "OSLO"}] * 2, executor
    )
    assert insert.slots == [0, 1]
    live = stored.live_relation()
    assert engine.execute(GROUP_QUERY).rows == reference_rows(live, GROUP_QUERY)


# ------------------------------------------------------- hardened validation
def test_write_bit_column_rejects_wrong_length():
    config = config_for("packed")
    stored = StoredRelation(small_relation(24), PimModule(config), label="t")
    layout = stored.layouts[0]
    with pytest.raises(ValueError, match="one value per slot"):
        stored.write_bit_column(0, layout.remote_column, np.zeros(23, dtype=bool))
    with pytest.raises(ValueError, match="one value per slot"):
        stored.write_bit_column(0, layout.remote_column, np.zeros(25, dtype=bool))
    stored.write_bit_column(0, layout.remote_column, np.ones(24, dtype=bool))
    assert stored.column_bit(0, layout.remote_column).all()


def test_update_skips_tombstoned_rows():
    config = config_for("packed")
    relation = small_relation(40)
    stored = StoredRelation(relation, PimModule(config), label="t")
    executor = PimExecutor(config)
    predicate = Comparison("city", "==", "PERTH")
    perth_rows = int(evaluate_predicate(predicate, relation).sum())
    deleted = execute_delete(stored, Comparison("value", ">=", 512), executor)
    assert deleted.records_deleted > 0
    live_perth = int(
        (evaluate_predicate(predicate, relation) & stored.valid_mask()).sum()
    )
    result = execute_update(stored, predicate, {"value": 3}, executor)
    # Only live rows are updated — in the stored bits *and* the ground truth.
    assert result.records_updated == live_perth < perth_rows
    assert np.array_equal(stored.decode_column("value"), relation.columns["value"])


# ------------------------------------------------ sharded routing & boundary
def test_shard_of_record_bisect_boundaries():
    config = config_for("packed")
    relation = small_relation(10)
    sharded = ShardedStoredRelation(relation, PimModule(config), shards=3)
    assert sharded.bounds == [(0, 4), (4, 7), (7, 10)]
    # Every record maps to the shard whose [start, stop) contains it,
    # including both edges of every boundary.
    for shard_index, (start, stop) in enumerate(sharded.bounds):
        assert sharded.shard_of_record(start) == shard_index
        assert sharded.shard_of_record(stop - 1) == shard_index
    with pytest.raises(IndexError):
        sharded.shard_of_record(-1)
    with pytest.raises(IndexError):
        sharded.shard_of_record(10)


def test_sharded_insert_routes_to_least_full_shard():
    config = config_for("packed")
    relation = small_relation(40)
    sharded = ShardedStoredRelation(relation, PimModule(config), shards=4)
    executors = sharded.make_executors()
    # Tombstone a chunk of shard 2 only: it becomes the least-full shard.
    target = sharded.shards[2]
    values = tuple(int(v) for v in target.relation.columns["value"][:5])
    execute_delete(target, Comparison("value", "in", values=values), executors[2])
    tombstones = target.tombstone_count
    assert tombstones > 0

    result = execute_sharded_insert(
        sharded,
        [{"key": 9, "value": 9, "city": "OSLO"} for _ in range(tombstones)],
        executors,
    )
    assert all(shard == 2 for shard, _ in result.placements)
    assert result.shard_results[2].reused_slots == tombstones
    assert sharded.tombstone_count == 0


def test_sharded_insert_is_atomic_against_bad_records():
    config = config_for("packed")
    sharded = ShardedStoredRelation(small_relation(40), PimModule(config), shards=4)
    executors = sharded.make_executors()
    good = {"key": 1, "value": 2, "city": "LYON"}
    with pytest.raises(ValueError, match="does not fit"):
        execute_sharded_insert(
            sharded, [good, {"key": 1, "value": 1 << 11, "city": "LYON"}], executors
        )
    # The good record ahead of the bad one must not have reached any shard.
    assert sharded.live_count == 40
    assert sharded.num_records == 40


@pytest.mark.parametrize("backend", BACKENDS)
def test_sharded_dml_stays_bit_exact(backend):
    config = config_for(backend)
    relation = small_relation(60)
    sharded = ShardedStoredRelation(relation, PimModule(config), shards=4)
    engine = ShardedQueryEngine(sharded, config=config, vectorized=True)
    executors = sharded.make_executors()

    def check():
        live = sharded.live_relation()
        for query in (SCALAR_QUERY, GROUP_QUERY):
            assert engine.execute(query).rows == reference_rows(live, query)

    delete = execute_sharded_delete(
        sharded, Comparison("value", "<", 300), executors, vectorized=True
    )
    assert delete.records_deleted == sum(
        r.records_deleted for r in delete.shard_results
    ) > 0
    check()
    execute_sharded_insert(
        sharded,
        [{"key": i, "value": 100 + i, "city": CITIES[i % 3]} for i in range(15)],
        executors,
    )
    check()
    execute_sharded_update(sharded, Comparison("city", "==", "LYON"), {"value": 777})
    check()
    compaction = execute_sharded_compaction(sharded, executors, force=True)
    assert compaction.shards_compacted > 0
    assert sharded.tombstone_count == 0
    check()


# ---------------------------------------------------------- service surface
def test_service_dml_entry_points_and_counters():
    from repro.service import QueryService

    config = config_for("packed")
    relation = small_relation(40)
    service = QueryService()
    engine = service.register("t", StoredRelation(relation, PimModule(config), label="t"),
                              config=config)
    stored = engine.stored

    out = service.delete(Comparison("value", "<", 400))
    assert out.result.records_deleted > 0
    assert out.stats.time_by_phase["delete-filter"] > 0
    out = service.insert([{"key": 1, "value": 450, "city": "LYON"}] * 3)
    assert out.result.records_inserted == 3
    assert out.stats.time_by_phase["insert-write"] > 0
    out = service.compact(force=True)
    assert out.result.performed
    assert out.stats.time_by_phase["compact-write"] > 0

    stats = service.dml_stats("t")
    assert stats.inserted == 3
    assert stats.deleted > 0
    assert stats.compactions == 1
    assert stats.live_rows == stored.live_count
    assert stats.tombstones == 0 and stats.fragmentation == 0.0

    # The batch summary carries the lifecycle snapshot once DML happened.
    batch = service.execute_batch([SCALAR_QUERY, GROUP_QUERY])
    assert batch.stats.dml is not None
    assert batch.stats.dml.inserted == 3
    assert "tombstones" in batch.stats.describe()
    live = stored.live_relation()
    assert batch.executions[0].rows == reference_rows(live, SCALAR_QUERY)
    assert batch.executions[1].rows == reference_rows(live, GROUP_QUERY)


def test_service_delete_compiles_through_program_cache():
    from repro.service import QueryService

    config = config_for("packed")
    service = QueryService()
    service.register_sharded(
        "t", small_relation(40), shards=4, config=config
    )
    predicate = Comparison("value", "<", 100)
    before = service.cache.stats.snapshot()
    service.delete(predicate)
    first = service.cache.stats.snapshot() - before
    # One compilation serves all four shards (layouts are shared) ...
    assert first.misses == 1
    assert first.hits == 0
    service.delete(predicate)
    second = service.cache.stats.snapshot() - before
    # ... and the repeated statement compiles nothing at all.
    assert second.misses == 1
    assert second.hits == 1


# ------------------------------------------------- property: interleaved DML
def _operation_strategy():
    record = st.fixed_dictionaries({
        "key": st.integers(0, 255),
        "value": st.integers(0, 1023),
        "city": st.sampled_from(CITIES),
    })
    value_predicate = st.tuples(
        st.sampled_from(["<", ">=", "=="]), st.integers(0, 1023)
    ).map(lambda t: Comparison("value", t[0], t[1]))
    city_predicate = st.sampled_from(CITIES).map(
        lambda c: Comparison("city", "==", c)
    )
    predicate = st.one_of(value_predicate, city_predicate)
    return st.one_of(
        st.tuples(st.just("insert"), st.lists(record, min_size=1, max_size=3)),
        st.tuples(st.just("delete"), predicate),
        st.tuples(st.just("update"), predicate, st.integers(0, 1023)),
        st.tuples(st.just("compact"), st.booleans()),
    )


class _Model:
    """Independent functional model: a plain list of row dicts."""

    def __init__(self, relation: Relation):
        self.schema = relation.schema
        self.rows = [
            {name: int(relation.columns[name][i]) for name in relation.schema.names}
            for i in range(len(relation))
        ]

    def as_relation(self) -> Relation:
        return Relation(self.schema, {
            name: np.array([row[name] for row in self.rows], dtype=np.uint64)
            for name in self.schema.names
        })

    def _matches(self, predicate):
        relation = self.as_relation()
        if not self.rows:
            return []
        return list(evaluate_predicate(predicate, relation))

    def insert(self, records):
        for record in records:
            encoded = dict(record)
            encoded["city"] = CITIES.index(record["city"])
            self.rows.append(encoded)

    def delete(self, predicate):
        mask = self._matches(predicate)
        self.rows = [row for row, hit in zip(self.rows, mask) if not hit]

    def update(self, predicate, value):
        for row, hit in zip(self.rows, self._matches(predicate)):
            if hit:
                row["value"] = value


def _apply_and_check(apply_op, query_rows, live_relation, model, operations):
    for operation in operations:
        kind = operation[0]
        if kind == "insert":
            model.insert(operation[1])
        elif kind == "delete":
            model.delete(operation[1])
        elif kind == "update":
            model.update(operation[1], operation[2])
        apply_op(operation)
        reference = model.as_relation()
        for query in (SCALAR_QUERY, GROUP_QUERY):
            assert query_rows(query) == reference_rows(reference, query)
        assert_live_matches(live_relation(), model.rows)


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=12, deadline=None)
@given(operations=st.lists(_operation_strategy(), min_size=1, max_size=6))
def test_property_interleaved_dml_unsharded(backend, operations):
    config = config_for(backend)
    relation = small_relation(32)
    model = _Model(relation)
    stored = StoredRelation(relation, PimModule(config), label="t")
    engine = PimQueryEngine(stored, config=config, vectorized=True)
    executor = PimExecutor(config)

    def apply_op(operation):
        if operation[0] == "insert":
            execute_insert(stored, operation[1], executor)
        elif operation[0] == "delete":
            execute_delete(stored, operation[1], executor, vectorized=True)
        elif operation[0] == "update":
            if stored.live_count:
                execute_update(stored, operation[1], {"value": operation[2]}, executor)
        else:
            execute_compaction(stored, executor, force=operation[1])

    _apply_and_check(
        apply_op,
        lambda query: engine.execute(query).rows,
        stored.live_relation,
        model,
        operations,
    )


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=8, deadline=None)
@given(operations=st.lists(_operation_strategy(), min_size=1, max_size=5))
def test_property_interleaved_dml_sharded(backend, operations):
    config = config_for(backend)
    relation = small_relation(32)
    model = _Model(relation)
    sharded = ShardedStoredRelation(relation, PimModule(config), shards=4)
    engine = ShardedQueryEngine(sharded, config=config, vectorized=True)
    executors = sharded.make_executors()

    def apply_op(operation):
        if operation[0] == "insert":
            execute_sharded_insert(sharded, operation[1], executors)
        elif operation[0] == "delete":
            execute_sharded_delete(sharded, operation[1], executors, vectorized=True)
        elif operation[0] == "update":
            if sharded.live_count:
                execute_sharded_update(
                    sharded, operation[1], {"value": operation[2]}, executors
                )
        else:
            execute_sharded_compaction(sharded, executors, force=operation[1])

    _apply_and_check(
        apply_op,
        lambda query: engine.execute(query).rows,
        sharded.live_relation,
        model,
        operations,
    )


@pytest.mark.slow
def test_gate_level_interleaving_matches_ground_truth():
    """One fixed interleaving with every NOR primitive actually executed."""
    config = config_for("packed")
    relation = small_relation(24)
    model = _Model(relation)
    stored = StoredRelation(relation, PimModule(config), label="t")
    engine = PimQueryEngine(stored, config=config, vectorized=False)
    executor = PimExecutor(config)

    operations = [
        ("delete", Comparison("value", "<", 400)),
        ("insert", [{"key": 3, "value": 500, "city": "LYON"},
                    {"key": 4, "value": 20, "city": "PERTH"}]),
        ("update", Comparison("city", "==", "PERTH"), 999),
        ("compact", True),
        ("insert", [{"key": 5, "value": 640, "city": "OSLO"}]),
        ("delete", Comparison("city", "==", "LYON")),
    ]

    def apply_op(operation):
        if operation[0] == "insert":
            execute_insert(stored, operation[1], executor)
        elif operation[0] == "delete":
            execute_delete(stored, operation[1], executor)
        elif operation[0] == "update":
            execute_update(stored, operation[1], {"value": operation[2]}, executor)
        else:
            execute_compaction(stored, executor, force=operation[1])

    _apply_and_check(
        apply_op,
        lambda query: engine.execute(query).rows,
        stored.live_relation,
        model,
        operations,
    )
