"""Tests of the Table I configuration objects."""

import dataclasses

import pytest

from repro.config import DEFAULT_CONFIG, table1_rows


def test_crossbar_geometry_matches_table1():
    xbar = DEFAULT_CONFIG.pim.crossbar
    assert xbar.rows == 1024
    assert xbar.columns == 512
    assert xbar.read_width_bits == 16
    assert xbar.logic_cycle_s == pytest.approx(30e-9)
    assert xbar.bits == 1024 * 512
    assert xbar.row_bytes == 64


def test_module_derived_geometry():
    pim = DEFAULT_CONFIG.pim
    assert pim.crossbars_per_page == 32
    assert pim.records_per_page == 32 * 1024
    assert pim.pages_total == 32 * 1024 ** 3 // (2 * 1024 ** 2)


def test_host_and_columnar_configuration():
    host = DEFAULT_CONFIG.host
    assert host.cores == 6
    assert host.query_threads == 4
    assert host.dram_bw_bytes_per_s < host.dram_peak_bw_bytes_per_s
    columnar = DEFAULT_CONFIG.columnar
    assert columnar.total_cores == 32
    assert columnar.dram_bw_bytes_per_s > 0


def test_without_aggregation_circuit_only_changes_the_circuit():
    pimdb = DEFAULT_CONFIG.without_aggregation_circuit()
    assert not pimdb.pim.aggregation_circuit.enabled
    assert DEFAULT_CONFIG.pim.aggregation_circuit.enabled
    assert pimdb.pim.crossbar == DEFAULT_CONFIG.pim.crossbar
    assert pimdb.host == DEFAULT_CONFIG.host


def test_replace_returns_modified_copy():
    changed = DEFAULT_CONFIG.replace(host=dataclasses.replace(DEFAULT_CONFIG.host, cores=8))
    assert changed.host.cores == 8
    assert DEFAULT_CONFIG.host.cores == 6


def test_table1_rows_cover_both_sections():
    rows = table1_rows()
    sections = {section for section, _, _ in rows}
    assert sections == {"Single RRAM PIM Module", "Evaluation System"}
    parameters = {parameter for _, parameter, _ in rows}
    assert "Crossbar read" in parameters
    assert "Coherence protocol" in parameters
