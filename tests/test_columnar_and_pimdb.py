"""Tests of the columnar baseline engine and the PIMDB baseline wrapper."""

import pytest

from repro.baselines import build_pimdb_engine
from repro.columnar import ColumnarEngine
from repro.columnar.cost import ColumnarCost
from repro.config import DEFAULT_CONFIG
from repro.db.query import (
    Aggregate,
    Comparison,
    EQ,
    Query,
    evaluate_predicate,
    reference_group_aggregate,
)
from repro.ssb import ALL_QUERIES
from repro.ssb.prejoined import DERIVED_ATTRIBUTES


def test_columnar_cost_model_arithmetic():
    cost = ColumnarCost(bytes_scanned=1e9, values_touched=1e8, hash_probes=1e7,
                        group_updates=1e6)
    server = DEFAULT_CONFIG.columnar
    assert cost.memory_time_s(server) == pytest.approx(1e9 / server.dram_bw_bytes_per_s)
    assert cost.cpu_time_s(server) > 0
    assert cost.time_s(server) == max(cost.memory_time_s(server), cost.cpu_time_s(server))
    doubled = cost.scaled(2.0)
    assert doubled.bytes_scanned == 2e9
    merged = ColumnarCost().add(cost).add(cost)
    assert merged.hash_probes == 2e7
    assert "time_s" in cost.breakdown(server)


def test_prejoined_and_star_agree_with_reference(ssb_dataset, ssb_prejoined):
    engine = ColumnarEngine(DEFAULT_CONFIG, derived=DERIVED_ATTRIBUTES)
    for name in ("Q1.1", "Q2.1", "Q3.2", "Q4.1"):
        query = ALL_QUERIES[name]
        mask = evaluate_predicate(query.predicate, ssb_prejoined)
        reference = reference_group_aggregate(
            ssb_prejoined, mask, query.group_by, query.aggregates
        )
        flat = engine.execute_prejoined(query, ssb_prejoined)
        star = engine.execute_star(query, ssb_dataset.database)
        assert flat.rows == reference, name
        assert star.rows == reference, name
        assert flat.time_s > 0 and star.time_s > 0
        # The star plan pays for the joins the pre-joined plan avoids.
        assert star.cost.hash_probes > flat.cost.hash_probes


def test_workload_scale_only_scales_cost(ssb_prejoined):
    query = ALL_QUERIES["Q1.1"]
    base = ColumnarEngine(DEFAULT_CONFIG, derived=DERIVED_ATTRIBUTES)
    scaled = ColumnarEngine(DEFAULT_CONFIG, derived=DERIVED_ATTRIBUTES, workload_scale=100)
    a = base.execute_prejoined(query, ssb_prejoined)
    b = scaled.execute_prejoined(query, ssb_prejoined)
    assert a.rows == b.rows
    assert b.time_s > a.time_s
    with pytest.raises(ValueError):
        ColumnarEngine(workload_scale=0)


def test_star_plan_requires_single_relation_conjuncts(ssb_dataset):
    engine = ColumnarEngine(DEFAULT_CONFIG)
    bad = Query(
        "bad",
        Comparison("lo_quantity", "<", 10),
        (Aggregate("sum", "lo_revenue"),),
    )
    # A valid fact-only query works...
    result = engine.execute_star(bad, ssb_dataset.database)
    assert result.rows
    # ...but a conjunct spanning relations is rejected.
    from repro.db.query import Or

    spanning = Query(
        "spanning",
        Or((Comparison("lo_quantity", "<", 10), Comparison("c_region", EQ, "ASIA"))),
        (Aggregate("sum", "lo_revenue"),),
    )
    with pytest.raises(ValueError):
        engine.execute_star(spanning, ssb_dataset.database)


def test_pimdb_engine_configuration(ssb_prejoined):
    engine, stored = build_pimdb_engine(ssb_prejoined, aggregation_width=28)
    assert engine.label == "pimdb"
    assert not engine.use_aggregation_circuit
    assert stored.layouts[0].operand_offset is not None
    query = ALL_QUERIES["Q1.2"]
    execution = engine.execute(query)
    mask = evaluate_predicate(query.predicate, ssb_prejoined)
    expected = int(ssb_prejoined.column("lo_revenue_discounted")[mask].sum())
    assert execution.scalar("revenue") == expected
