"""Zone-map statistics, crossbar skipping and cost-based routing.

The contract under test: zone maps are *conservative, never wrong* — a
crossbar they prune provably holds no matching live row — so pruned
execution is bit-exact with the full broadcast on every path (gate-level and
vectorized, packed and boolean backends, unsharded and sharded), across the
full SSB suite and under arbitrary interleavings of DML with queries, while
scanning strictly fewer crossbars and charging less modelled time on
selective queries.  The cost planner's host-scan route must return the same
rows as the PIM engines.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import BACKENDS, DEFAULT_CONFIG
from repro.core.executor import PimQueryEngine
from repro.db.dml import execute_compaction, execute_delete, execute_insert
from repro.db.query import (
    Aggregate,
    And,
    Comparison,
    Or,
    Query,
    evaluate_predicate,
)
from repro.db.relation import Relation
from repro.db.schema import Schema, dict_attribute, int_attribute
from repro.db.storage import StoredRelation
from repro.db.update import execute_update
from repro.pim.controller import PimExecutor
from repro.pim.module import PimModule
from repro.planner import (
    CandidateSetCache,
    CostPlanner,
    execute_host_scan,
    normalize_fragment,
)
from repro.planner.planner import RelationStatistics
from repro.planner.selectivity import SelectivityModel
from repro.planner.zonemap import ZoneMaps
from repro.service import QueryService

CITIES = ["LYON", "OSLO", "PERTH", "QUITO"]


def planner_schema() -> Schema:
    return Schema("pl", [
        int_attribute("key", 12, source="fact"),
        int_attribute("value", 10, source="fact"),
        dict_attribute("city", CITIES, source="dim"),
    ])


def clustered_relation(records: int = 4000, seed: int = 5) -> Relation:
    """Sorted by ``key``: each crossbar covers a narrow key range."""
    rng = np.random.default_rng(seed)
    return Relation(planner_schema(), {
        "key": np.sort(rng.integers(0, 1 << 12, records).astype(np.uint64)),
        "value": rng.integers(0, 1 << 10, records).astype(np.uint64),
        "city": rng.integers(0, len(CITIES), records).astype(np.uint64),
    })


def _store(relation, backend="packed", **kwargs):
    config = DEFAULT_CONFIG.with_backend(backend)
    return StoredRelation(
        relation, PimModule(config), label=kwargs.pop("label", "pl"), **kwargs
    )


POINT = Query(
    "point", Comparison("key", "==", 1234),
    (Aggregate("sum", "value"), Aggregate("count")),
)
RANGE = Query(
    "range", And((
        Comparison("key", "between", low=100, high=400),
        Comparison("city", "==", "OSLO"),
    )),
    (Aggregate("sum", "value"), Aggregate("min", "value")),
    group_by=("city",),
)
NOTHING = Query(
    "nothing", Comparison("key", "==", (1 << 12) - 1),
    (Aggregate("sum", "value"), Aggregate("count")),
)


# ----------------------------------------------------------------- zone maps
def test_zonemaps_are_conservative_for_random_predicates():
    """A pruned crossbar never holds a matching live row (the soundness core)."""
    relation = clustered_relation()
    stored = _store(relation)
    maps = stored.statistics.zonemaps
    rows = stored.rows_per_crossbar
    rng = np.random.default_rng(11)
    comparisons = [
        Comparison("key", op, int(rng.integers(0, 1 << 12)))
        for op in ("==", "!=", "<", "<=", ">", ">=")
    ] + [
        Comparison("key", "between", low=700, high=900),
        Comparison("value", "in", values=(3, 900, 1023)),
        Or((Comparison("key", "==", 10), Comparison("city", "==", "LYON"))),
        And((Comparison("key", "<", 2000), Comparison("value", ">=", 512))),
    ]
    for predicate in comparisons:
        check = maps.check([predicate], DEFAULT_CONFIG.pim.crossbars_per_page)
        matches = evaluate_predicate(predicate, relation)
        padded = np.zeros(maps.crossbars * rows, dtype=bool)
        padded[: len(matches)] = matches
        per_crossbar = padded.reshape(maps.crossbars, rows).any(axis=1)
        assert not np.any(per_crossbar & ~check.candidates), predicate


def test_zonemaps_match_constants_like_the_compiler():
    """Out-of-domain constants follow the compiler's const-fold semantics."""
    stored = _store(clustered_relation())
    maps = stored.statistics.zonemaps
    cp = DEFAULT_CONFIG.pim.crossbars_per_page
    # An unknown dictionary value selects nothing -> no candidates at all.
    none = maps.check([Comparison("city", "==", "ATLANTIS")], cp)
    assert not none.candidates.any()
    # ... except for NE, which the compiler folds to const True.
    everything = maps.check([Comparison("city", "!=", "ATLANTIS")], cp)
    assert everything.candidates.sum() == (maps.live > 0).sum()


def test_zonemaps_maintenance_under_dml_stays_conservative_and_charged():
    relation = clustered_relation(records=3000)
    stored = _store(relation)
    executor = PimExecutor(DEFAULT_CONFIG)
    maps = stored.statistics.zonemaps
    live_before = maps.live.copy()

    # DELETE decrements the live counters, bounds stay wide.
    predicate = Comparison("key", "<", 500)
    doomed = int(evaluate_predicate(predicate, relation).sum())
    execute_delete(stored, predicate, executor, vectorized=True)
    assert int(live_before.sum() - maps.live.sum()) == doomed

    # INSERT with a brand-new maximum widens the target crossbar's bounds.
    record = {"key": (1 << 12) - 1, "value": 7, "city": "LYON"}
    result = execute_insert(stored, [record], executor)
    slot = result.slots[0]
    crossbar = slot // stored.rows_per_crossbar
    assert maps.maxs["key"][crossbar] == (1 << 12) - 1

    # UPDATE widens with the assigned constant.
    execute_update(stored, Comparison("city", "==", "OSLO"), {"value": 1023}, executor)
    updated = evaluate_predicate(Comparison("city", "==", "OSLO"), stored.relation)
    updated &= stored.valid_mask()
    touched = np.unique(np.nonzero(updated)[0] // stored.rows_per_crossbar)
    assert (maps.maxs["value"][touched] == 1023).all()

    # Compaction rebuilds exactly: equal to a from-scratch rebuild.
    execute_compaction(stored, executor, force=True)
    fresh = ZoneMaps.from_stored(stored)
    assert (maps.live == fresh.live).all()
    for name in stored.relation.schema.names:
        live = maps.live > 0
        assert (maps.mins[name][live] == fresh.mins[name][live]).all()
        assert (maps.maxs[name][live] == fresh.maxs[name][live]).all()

    # Every maintenance path charged modelled host time.
    assert executor.stats.time_by_phase["zonemap-maintain"] > 0


# --------------------------------------------------------------- selectivity
def test_histogram_estimates_track_actual_fractions():
    relation = clustered_relation(records=4000)
    model = SelectivityModel.from_relation(relation)
    for predicate, tolerance in [
        (Comparison("key", "<", 2048), 0.1),
        (Comparison("value", ">=", 512), 0.1),
        (Comparison("city", "==", "OSLO"), 0.1),
        (And((Comparison("key", "<", 2048), Comparison("value", "<", 512))), 0.15),
    ]:
        actual = float(evaluate_predicate(predicate, relation).mean())
        estimate = model.estimate(predicate)
        assert abs(estimate - actual) < tolerance, predicate
    assert model.estimate(None) == 1.0
    assert model.estimate(Comparison("city", "==", "ATLANTIS")) == 0.0


def test_conjunct_ordering_puts_the_most_selective_first():
    relation = clustered_relation()
    model = SelectivityModel.from_relation(relation)
    predicate = And((
        Comparison("value", ">=", 0),            # ~everything
        Comparison("key", "==", 7),              # ~nothing
        Comparison("city", "==", "OSLO"),        # ~quarter
    ))
    ordered = model.order_conjuncts(predicate)
    estimates = [model.estimate(conjunct) for conjunct in ordered]
    assert estimates == sorted(estimates)
    assert ordered[0].attribute == "key"


# ------------------------------------------------- pruned execution, bit-exact
@pytest.mark.parametrize("backend", ["packed", "bool"])
@pytest.mark.parametrize("vectorized", [True, False])
def test_pruned_execution_bit_exact_and_cheaper(backend, vectorized):
    full_engine = PimQueryEngine(
        _store(clustered_relation(), backend), vectorized=vectorized,
        timing_scale=64.0,
    )
    pruned_engine = PimQueryEngine(
        _store(clustered_relation(), backend), vectorized=vectorized,
        pruning=True, timing_scale=64.0,
    )
    for query in (POINT, RANGE, NOTHING):
        full = full_engine.execute(query)
        pruned = pruned_engine.execute(query)
        assert pruned.rows == full.rows, query.name
        assert pruned.crossbars_scanned < pruned.crossbars_total
        assert pruned.time_s < full.time_s
    # The provably-empty query skips execution entirely.
    empty = pruned_engine.execute(NOTHING)
    assert empty.rows == {} and empty.crossbars_scanned == 0


def test_pruned_gate_level_and_vectorized_charge_identical_stats():
    """The two execution modes stay cost-identical under pruning too."""
    results = {}
    for vectorized in (False, True):
        engine = PimQueryEngine(
            _store(clustered_relation()), vectorized=vectorized, pruning=True
        )
        # Two rounds: the second exercises the stale-filter clear path (the
        # first query dirtied its candidate crossbars).
        for query in (RANGE, POINT):
            execution = engine.execute(query)
        results[vectorized] = execution
    gate, vector = results[False], results[True]
    assert gate.rows == vector.rows
    assert gate.stats.time_by_phase == vector.stats.time_by_phase
    assert gate.stats.energy_by_component == vector.stats.energy_by_component
    assert gate.max_writes_per_row == vector.max_writes_per_row
    assert gate.stats.logic_ops == vector.stats.logic_ops


REGIONS = ["EU", "NA", "SA", "APAC"]


def partitioned_relation(records: int = 3000, seed: int = 9) -> Relation:
    """Clustered keys plus two dimension attributes for three-way partitioning."""
    rng = np.random.default_rng(seed)
    schema = Schema("pl3", [
        int_attribute("key", 12, source="fact"),
        int_attribute("value", 10, source="fact"),
        dict_attribute("city", CITIES, source="dim"),
        dict_attribute("region", REGIONS, source="dim2"),
    ])
    return Relation(schema, {
        "key": np.sort(rng.integers(0, 1 << 12, records).astype(np.uint64)),
        "value": rng.integers(0, 1 << 10, records).astype(np.uint64),
        "city": rng.integers(0, len(CITIES), records).astype(np.uint64),
        "region": rng.integers(0, len(REGIONS), records).astype(np.uint64),
    })


def _all_pim_cost_model():
    """Host-gb absurdly expensive: every subgroup goes through pim-gb."""
    from repro.core.latency_model import (
        GroupByCostModel, HostGbLatencyModel, PimGbLatencyModel,
    )

    return GroupByCostModel(
        HostGbLatencyModel({2: 1.0}, {2: 1.0}),
        PimGbLatencyModel({2: 0.0}, {2: 0.0}),
    )


@pytest.mark.parametrize("backend", ["packed", "bool"])
def test_pruned_group_by_across_partitions_bit_exact_and_cost_identical(backend):
    """Remote-partition subgroup mask programs prune to their own candidates.

    Three vertical partitions force the remote-fold path (two remote
    partitions ship bit-vectors per subgroup); the per-partition candidate
    sets differ (only the key conjunct is selective), so this exercises the
    candidate-masking of the parked running product.
    """
    partitions = [["key", "value"], ["city"], ["region"]]
    query = Query(
        "span",
        And((
            Comparison("key", "between", low=100, high=600),
            Comparison("city", "==", "OSLO"),
        )),
        (Aggregate("sum", "value"), Aggregate("count")),
        group_by=("city", "region"),
    )
    results = {}
    for pruning in (False, True):
        for vectorized in (False, True):
            engine = PimQueryEngine(
                _store(partitioned_relation(), backend,
                       partitions=partitions, label="three_xb"),
                vectorized=vectorized, pruning=pruning,
                cost_model=_all_pim_cost_model(), timing_scale=64.0,
            )
            results[pruning, vectorized] = engine.execute(query)
    rows = results[False, False].rows
    assert rows, "query must select records for the test to mean anything"
    for execution in results.values():
        assert execution.rows == rows
    # pim-gb handled every subgroup, so the pruned mask path really ran.
    assert results[True, False].pim_subgroups > 0
    # Gate-level and vectorized stay cost-identical under pruning.
    for pruning in (False, True):
        gate, vector = results[pruning, False], results[pruning, True]
        assert gate.stats.time_by_phase == vector.stats.time_by_phase
        assert gate.stats.energy_by_component == vector.stats.energy_by_component
        assert gate.stats.logic_ops == vector.stats.logic_ops
        assert gate.max_writes_per_row == vector.max_writes_per_row
    # Pruning the subgroup programs saves modelled time on a selective query.
    assert results[True, True].time_s < results[False, True].time_s


def test_pruned_ssb_suite_bit_exact_both_backends(ssb_prejoined):
    """The full SSB query suite: pruned == unpruned rows on both backends."""
    from repro.ssb import ALL_QUERIES, QUERY_ORDER
    from repro.ssb.prejoined import max_aggregated_width

    width = max_aggregated_width(ssb_prejoined)
    reference_rows = {}
    for backend in BACKENDS:
        config = DEFAULT_CONFIG.with_backend(backend)
        engines = {}
        for pruning in (False, True):
            module = PimModule(config)
            stored = StoredRelation(
                ssb_prejoined, module, label=f"ssb/{backend}/{pruning}",
                aggregation_width=width, reserve_bulk_aggregation=False,
            )
            engines[pruning] = PimQueryEngine(
                stored, config=config, vectorized=True, pruning=pruning
            )
        for name in QUERY_ORDER:
            query = ALL_QUERIES[name]
            full = engines[False].execute(query)
            pruned = engines[True].execute(query)
            assert pruned.rows == full.rows, (backend, name)
            assert pruned.crossbars_scanned <= pruned.crossbars_total
            if name not in reference_rows:
                reference_rows[name] = pruned.rows
            else:
                assert pruned.rows == reference_rows[name], (backend, name)


@pytest.mark.parametrize("shards", [1, 4])
def test_pruned_sharded_service_bit_exact(shards):
    """K=1 and K=4 service pruning vs an unpruned service, SSB point/range."""
    pruned = QueryService(planner=False)
    unpruned = QueryService(pruning=False, planner=False)
    pruned.register_sharded("pl", clustered_relation(), shards=shards)
    unpruned.register_sharded("pl", clustered_relation(), shards=shards)
    for query in (POINT, RANGE, NOTHING):
        a = pruned.execute(query)
        b = unpruned.execute(query)
        assert a.rows == b.rows, query.name
    if shards > 1:
        execution = pruned.execute(POINT)
        assert execution.shards_skipped >= shards - 1


# --------------------------------------------- hypothesis: DML x query churn
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "update", "compact"]),
        st.integers(0, (1 << 12) - 1),
        st.integers(0, (1 << 10) - 1),
    ),
    min_size=1, max_size=6,
)


@pytest.mark.parametrize("backend", ["packed", "bool"])
@pytest.mark.parametrize("shards", [1, 4])
@settings(max_examples=12, deadline=None)
@given(ops=_OPS, probe_key=st.integers(0, (1 << 12) - 1))
def test_pruned_bit_exact_under_interleaved_dml(backend, shards, ops, probe_key):
    """Any DML interleaving: pruned rows == unpruned rows after every op."""
    services = {}
    for pruning in (False, True):
        service = QueryService(planner=False, pruning=pruning)
        service.register_sharded(
            "pl", clustered_relation(records=640, seed=3), shards=shards,
            backend=backend,
        )
        services[pruning] = service

    probes = [
        Query("probe-point", Comparison("key", "==", probe_key),
              (Aggregate("sum", "value"), Aggregate("count"))),
        Query("probe-range", Comparison("key", "between",
                                        low=probe_key // 2, high=probe_key),
              (Aggregate("max", "value"), Aggregate("count")),
              group_by=("city",)),
    ]
    for op, key, value in ops:
        for service in services.values():
            if op == "insert":
                records = [
                    {"key": key, "value": value, "city": CITIES[key % len(CITIES)]}
                ]
                service.insert(records)
            elif op == "delete":
                service.delete(Comparison("key", "between", low=key,
                                          high=min(key + 64, (1 << 12) - 1)))
            elif op == "update":
                from repro.sharding import execute_sharded_update

                execute_sharded_update(
                    service.engine("pl").sharded,
                    Comparison("key", ">=", key), {"value": value},
                )
            else:
                service.compact(force=True)
        for probe in probes:
            full = services[False].execute(probe)
            pruned = services[True].execute(probe)
            assert pruned.rows == full.rows, (op, probe.name)
            assert pruned.crossbars_scanned <= full.crossbars_scanned


# --------------------------------------------------------- cost-based routing
def test_host_scan_route_matches_pim_rows():
    engine = PimQueryEngine(_store(clustered_relation()), vectorized=True)
    for query in (POINT, RANGE, NOTHING):
        host = execute_host_scan(engine, query)
        pim = engine.execute(query)
        assert host.rows == pim.rows, query.name
        assert host.label.endswith("/host-scan")
        assert host.time_s > 0 or query is NOTHING


def test_cost_planner_prefers_pim_at_scale_and_host_for_small_scans():
    planner = CostPlanner()
    # Serving scale: the PIM path wins on a selective query.
    big = PimQueryEngine(
        _store(clustered_relation()), vectorized=True, pruning=True,
        timing_scale=1024.0,
    )
    decision = planner.route(POINT, big)
    assert decision.target == "pim"
    assert decision.est_pim_time_s < decision.est_host_time_s
    # A small, unscaled relation with a near-unselective scan: the host wins.
    small = PimQueryEngine(_store(clustered_relation()), vectorized=True)
    broad = Query(
        "broad", Comparison("value", ">=", 0),
        (Aggregate("sum", "value"), Aggregate("count")),
    )
    decision = planner.route(broad, small)
    assert decision.target == "host"
    assert 0.9 <= decision.estimated_selectivity <= 1.0


def test_cost_planner_routes_group_by_across_vertical_partitions():
    """The PIM estimator must tolerate attributes spread over partitions.

    Regression: a GROUP-BY whose referenced attributes live in different
    vertical partitions used to KeyError in ``_estimate_pim`` (the host-gb
    residual looked every attribute up in the primary layout).
    """
    engine = PimQueryEngine(
        _store(
            partitioned_relation(),
            partitions=[["key", "value"], ["city"], ["region"]],
        ),
        vectorized=True, pruning=True, timing_scale=64.0,
    )
    grouped = Query(
        "grouped", Comparison("key", "<", 2048),
        (Aggregate("sum", "value"), Aggregate("count")),
        group_by=("city", "region"),
    )
    decision = CostPlanner().route(grouped, engine)
    assert decision.target in ("pim", "host")
    assert decision.est_pim_time_s > 0.0
    assert decision.est_host_time_s > 0.0


def test_service_routes_and_reports_planner_stats():
    service = QueryService()
    service.register("pl", _store(clustered_relation()), timing_scale=1024.0)
    reference = PimQueryEngine(_store(clustered_relation()), timing_scale=1024.0)
    batch = service.execute_batch([POINT, RANGE, NOTHING])
    for execution, query in zip(batch, (POINT, RANGE, NOTHING)):
        assert execution.rows == reference.execute(query).rows
    stats = batch.stats
    assert stats.planner is not None
    assert stats.planner.crossbars_scanned < stats.planner.crossbars_total
    assert stats.planner.pim_queries + stats.planner.host_routed == 3
    assert "planner:" in stats.describe()
    assert "skipped" in stats.describe()


# ----------------------------------------------------------------- satellites
def test_register_sharded_validates_backend_early():
    service = QueryService()
    with pytest.raises(ValueError, match=r"backend='qbit' is not a backend"):
        service.register_sharded("pl", clustered_relation(), backend="qbit")
    assert service.relations == []


def test_cache_snapshot_and_describe_report_evictions_and_capacity():
    service = QueryService(cache_capacity=2)
    service.register("pl", _store(clustered_relation()))
    batch = service.execute_batch([POINT, RANGE, POINT])
    snapshot = service.cache_stats()
    assert snapshot.capacity == 2
    assert snapshot.entries is not None and snapshot.entries <= 2
    assert snapshot.lookups > 0
    described = batch.stats.describe()
    assert "evictions" in described
    assert "capacity" in described

# ----------------------------------------- semantic candidate-set cache (PR 7)
def test_decision_masks_are_read_only_and_memo_uncorrupted():
    """Mutating a returned candidate mask raises; the memo stays intact.

    Decisions are shared with the plan memo, so an engine combining a mask
    in place would silently corrupt every later replay of the predicate.
    """
    cp = DEFAULT_CONFIG.pim.crossbars_per_page
    for semantic in (True, False):
        stored = _store(clustered_relation())
        stored.statistics.semantic_cache = semantic
        decision = stored.statistics.plan(
            RANGE.predicate, stored.partition_attributes, cp
        )
        with pytest.raises(ValueError):
            decision.candidates[0][:] = False
        replay = stored.statistics.plan(
            RANGE.predicate, stored.partition_attributes, cp
        )
        cold = RelationStatistics(
            stored.statistics.zonemaps, stored.statistics.selectivity,
            semantic_cache=False,
        ).plan(RANGE.predicate, stored.partition_attributes, cp)
        assert np.array_equal(replay.candidates[0], cold.candidates[0])


def test_candidate_cache_counters_and_replay_billing():
    stored = _store(clustered_relation())
    statistics = stored.statistics
    cp = DEFAULT_CONFIG.pim.crossbars_per_page
    before = statistics.candidate_stats()

    cold = statistics.plan(RANGE.predicate, stored.partition_attributes, cp)
    after_cold = statistics.candidate_stats() - before
    assert cold.entries_checked > 0
    assert after_cold.misses > 0 and after_cold.hits == 0

    replay = statistics.plan(RANGE.predicate, stored.partition_attributes, cp)
    assert replay.entries_checked == 0
    assert np.array_equal(replay.candidates[0], cold.candidates[0])


def test_insert_bumps_only_the_touched_crossbar_epoch():
    stored = _store(clustered_relation())
    statistics = stored.statistics
    cp = DEFAULT_CONFIG.pim.crossbars_per_page
    statistics.plan(RANGE.predicate, stored.partition_attributes, cp)
    epochs_before = statistics.candidates.epochs.copy()

    executor = PimExecutor(DEFAULT_CONFIG)
    execute_insert(stored, [{"key": 101, "value": 3, "city": "OSLO"}], executor)
    changed = np.nonzero(statistics.candidates.epochs != epochs_before)[0]
    assert changed.size == 1

    counters_before = statistics.candidate_stats()
    revalidated = statistics.plan(
        RANGE.predicate, stored.partition_attributes, cp
    )
    delta = statistics.candidate_stats() - counters_before
    # Re-validation re-checks only the one stale crossbar per consulted
    # fragment -- far below the cold walk's pages + surviving * cp entries.
    assert 0 < revalidated.entries_checked <= delta.revalidations
    assert delta.stale_crossbars == revalidated.entries_checked
    cold = RelationStatistics(
        statistics.zonemaps, statistics.selectivity, semantic_cache=False
    ).plan(RANGE.predicate, stored.partition_attributes, cp)
    assert revalidated.entries_checked < cold.entries_checked
    assert np.array_equal(revalidated.candidates[0], cold.candidates[0])


def test_delete_invalidates_nothing_yet_narrows_the_live_prefilter():
    """A cached replay after DELETE bills zero entries and still excludes
    the crossbars the DELETE emptied (the live prefilter is applied fresh)."""
    relation = clustered_relation()
    stored = _store(relation)
    statistics = stored.statistics
    cp = DEFAULT_CONFIG.pim.crossbars_per_page
    rows = stored.rows_per_crossbar
    boundary = int(relation.column("key")[rows - 1])
    query = Query(
        "head", Comparison("key", "between", low=0, high=boundary),
        (Aggregate("count"),),
    )
    cold = statistics.plan(query.predicate, stored.partition_attributes, cp)
    assert cold.candidates[0][0]

    executor = PimExecutor(DEFAULT_CONFIG)
    execute_delete(stored, query.predicate, executor, vectorized=True)
    counters_before = statistics.candidate_stats()
    replay = statistics.plan(query.predicate, stored.partition_attributes, cp)
    delta = statistics.candidate_stats() - counters_before
    assert replay.entries_checked == 0
    assert delta.revalidations == 0 and delta.stale_crossbars == 0
    assert not replay.candidates[0][0]
    assert int(statistics.zonemaps.live[0]) == 0


def test_note_delete_rejects_negative_live_counts():
    stored = _store(clustered_relation())
    maps = stored.statistics.zonemaps
    slots = np.zeros(int(maps.live[0]) + 1, dtype=np.int64)
    with pytest.raises(AssertionError, match="negative"):
        maps.note_delete(slots)


def test_fragment_cache_lru_eviction():
    stored = _store(clustered_relation())
    cache = CandidateSetCache(stored.statistics.zonemaps, capacity=2)
    cp = DEFAULT_CONFIG.pim.crossbars_per_page
    fragments = [Comparison("key", "<", bound) for bound in (100, 200, 300)]
    for fragment in fragments:
        cache.lookup(fragment, cp)
    stats = cache.stats()
    assert stats.misses == 3 and stats.evictions == 1
    assert len(cache) == 2
    # The evicted (oldest) fragment misses again; the newest still hits.
    _, entries = cache.lookup(fragments[-1], cp)
    assert entries == 0
    _, entries = cache.lookup(fragments[0], cp)
    assert entries > 0


def test_normalize_fragment_canonicalizes_equivalent_predicates():
    swapped = (
        And((Comparison("key", "<", 5), Comparison("value", ">", 1))),
        And((Comparison("value", ">", 1), Comparison("key", "<", 5))),
    )
    assert normalize_fragment(swapped[0]) == normalize_fragment(swapped[1])
    assert normalize_fragment(
        Comparison("value", "in", values=(3, 1, 3))
    ) == normalize_fragment(Comparison("value", "in", values=(1, 3)))
    assert normalize_fragment(
        Comparison("key", "<", 5)
    ) != normalize_fragment(Comparison("key", "<=", 5))


def test_host_scan_selectivity_normalized_by_live_rows():
    """After a DELETE, both routes report the live-row selected fraction."""
    stored = _store(clustered_relation())
    engine = PimQueryEngine(
        stored, config=DEFAULT_CONFIG, vectorized=True, pruning=True
    )
    executor = PimExecutor(DEFAULT_CONFIG)
    execute_delete(
        stored, Comparison("value", ">=", 512), executor, vectorized=True
    )
    query = Query(
        "q", Comparison("value", "<", 100),
        (Aggregate("sum", "value"), Aggregate("count")),
    )
    live = stored.live_relation()
    expected = float(
        evaluate_predicate(query.predicate, live).sum() / len(live)
    )
    host = execute_host_scan(engine, query)
    assert host.selectivity == pytest.approx(expected)
    pim = engine.execute(query)
    assert pim.selectivity == pytest.approx(expected)
    assert host.rows == pim.rows


def test_service_batch_reports_candidate_cache_counters():
    service = QueryService()
    service.register("pl", _store(clustered_relation()), timing_scale=1024.0)
    first = service.execute_batch([POINT, RANGE, NOTHING])
    assert first.stats.planner is not None
    assert first.stats.planner.candidates is not None
    assert first.stats.planner.candidates.misses > 0
    assert "candidate cache:" in first.stats.describe()
    cold_entries = first.stats.planner.candidates.entries_checked
    # A clean replay never reaches the fragment cache (the whole-plan memo
    # answers), so its batch delta reports no candidate activity at all.
    clean = service.execute_batch([POINT, RANGE, NOTHING])
    assert clean.stats.planner.candidates is None
    # After an INSERT the replay re-assembles, re-validating only the one
    # bumped crossbar per fragment.
    service.insert([{"key": 7, "value": 9, "city": "LYON"}])
    churned = service.execute_batch([POINT, RANGE, NOTHING])
    candidates = churned.stats.planner.candidates
    assert candidates is not None
    assert candidates.misses == 0 and candidates.revalidations > 0
    assert 0 < candidates.entries_checked < cold_entries
