"""Property-based tests of storage round-trips and planner invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DEFAULT_CONFIG
from repro.core.groupby import GroupByPlanner
from repro.core.latency_model import GroupByCostModel, HostGbLatencyModel, PimGbLatencyModel
from repro.core.sampling import SubgroupEstimate
from repro.db.relation import Relation
from repro.db.schema import Schema, int_attribute
from repro.db.storage import StoredRelation
from repro.pim.module import PimModule


# --------------------------------------------------------- storage round-trip
widths_strategy = st.lists(st.integers(min_value=1, max_value=32), min_size=1, max_size=6)


@settings(max_examples=15, deadline=None)
@given(widths=widths_strategy, records=st.integers(min_value=1, max_value=300),
       seed=st.integers(min_value=0, max_value=2 ** 16))
def test_store_and_decode_roundtrip(widths, records, seed):
    rng = np.random.default_rng(seed)
    attributes = [int_attribute(f"a{i}", width) for i, width in enumerate(widths)]
    columns = {
        f"a{i}": (rng.integers(0, 1 << 32, records).astype(np.uint64)
                  & np.uint64((1 << width) - 1))
        for i, width in enumerate(widths)
    }
    relation = Relation(Schema("prop", attributes), columns)
    module = PimModule(DEFAULT_CONFIG)
    stored = StoredRelation(relation, module, label="prop")
    for name in relation.schema.names:
        assert np.array_equal(stored.decode_column(name), relation.column(name))
    assert stored.valid_mask().sum() == records


# ----------------------------------------------------------- r(k) monotonicity
fractions_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=20
)


def _estimate_from(fractions, selectivity):
    total = sum(fractions)
    if total > 0:
        fractions = [f / total for f in fractions]
    ordered = sorted(range(len(fractions)), key=lambda i: fractions[i], reverse=True)
    groups = [(i,) for i in ordered]
    return SubgroupEstimate(
        ordered_groups=groups,
        group_fractions={(i,): fractions[i] for i in ordered},
        selectivity=selectivity,
        sample_size=1000,
        sample_selected=int(1000 * selectivity),
        observed_subgroups=len(groups),
    )


@settings(max_examples=40, deadline=None)
@given(fractions=fractions_strategy,
       selectivity=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_remaining_ratio_is_monotone_and_bounded(fractions, selectivity):
    estimate = _estimate_from(fractions, selectivity)
    previous = estimate.remaining_ratio(0)
    assert previous == pytest.approx(selectivity)
    for k in range(1, len(fractions) + 2):
        current = estimate.remaining_ratio(k)
        assert 0.0 <= current <= previous + 1e-12
        previous = current


# --------------------------------------------------------- planner optimality
@settings(max_examples=30, deadline=None)
@given(fractions=fractions_strategy,
       selectivity=st.floats(min_value=0.001, max_value=0.5, allow_nan=False),
       pim_slope=st.floats(min_value=1e-9, max_value=1e-5),
       host_a=st.floats(min_value=1e-7, max_value=1e-3))
def test_planner_choice_is_no_worse_than_extremes(fractions, selectivity, pim_slope, host_a):
    estimate = _estimate_from(fractions, selectivity)
    model = GroupByCostModel(
        HostGbLatencyModel({4: host_a}, {4: host_a / 10}),
        PimGbLatencyModel({2: pim_slope}, {2: 1e-5}),
    )
    planner = GroupByPlanner(model)
    plan = planner.plan(estimate, pages=500, aggregation_reads=2, reads_per_record=4)
    assert plan.k <= plan.total_subgroups
    assert plan.predicted_time_s <= plan.predicted_host_only_s + 1e-12
    assert plan.predicted_time_s <= plan.predicted_pim_only_s + 1e-12
    assert plan.host_pass_needed == (plan.k < plan.total_subgroups)
    # The chosen subgroups are the largest estimated ones.
    chosen = plan.pim_groups
    if chosen:
        chosen_fracs = [estimate.group_fractions.get(key, 0.0) for key in chosen]
        remaining = [estimate.group_fractions.get(key, 0.0)
                     for key in estimate.ordered_groups[plan.k:]]
        if remaining:
            assert min(chosen_fracs) >= max(remaining) - 1e-12
