"""Property-based tests of storage round-trips and planner invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DEFAULT_CONFIG
from repro.core.groupby import GroupByPlanner
from repro.core.latency_model import GroupByCostModel, HostGbLatencyModel, PimGbLatencyModel
from repro.core.sampling import SubgroupEstimate
from repro.db.query import (
    Aggregate,
    Comparison,
    Query,
    evaluate_predicate,
    reference_group_aggregate,
)
from repro.db.relation import Relation
from repro.db.schema import Schema, int_attribute
from repro.db.storage import StoredRelation
from repro.db.update import execute_update
from repro.pim.module import PimModule
from repro.planner.planner import RelationStatistics
from repro.service import QueryService
from repro.sharding import execute_sharded_update


# --------------------------------------------------------- storage round-trip
widths_strategy = st.lists(st.integers(min_value=1, max_value=32), min_size=1, max_size=6)


@settings(max_examples=15, deadline=None)
@given(widths=widths_strategy, records=st.integers(min_value=1, max_value=300),
       seed=st.integers(min_value=0, max_value=2 ** 16))
def test_store_and_decode_roundtrip(widths, records, seed):
    rng = np.random.default_rng(seed)
    attributes = [int_attribute(f"a{i}", width) for i, width in enumerate(widths)]
    columns = {
        f"a{i}": (rng.integers(0, 1 << 32, records).astype(np.uint64)
                  & np.uint64((1 << width) - 1))
        for i, width in enumerate(widths)
    }
    relation = Relation(Schema("prop", attributes), columns)
    module = PimModule(DEFAULT_CONFIG)
    stored = StoredRelation(relation, module, label="prop")
    for name in relation.schema.names:
        assert np.array_equal(stored.decode_column(name), relation.column(name))
    assert stored.valid_mask().sum() == records


# ----------------------------------------------------------- r(k) monotonicity
fractions_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=20
)


def _estimate_from(fractions, selectivity):
    total = sum(fractions)
    if total > 0:
        fractions = [f / total for f in fractions]
    ordered = sorted(range(len(fractions)), key=lambda i: fractions[i], reverse=True)
    groups = [(i,) for i in ordered]
    return SubgroupEstimate(
        ordered_groups=groups,
        group_fractions={(i,): fractions[i] for i in ordered},
        selectivity=selectivity,
        sample_size=1000,
        sample_selected=int(1000 * selectivity),
        observed_subgroups=len(groups),
    )


@settings(max_examples=40, deadline=None)
@given(fractions=fractions_strategy,
       selectivity=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_remaining_ratio_is_monotone_and_bounded(fractions, selectivity):
    estimate = _estimate_from(fractions, selectivity)
    previous = estimate.remaining_ratio(0)
    assert previous == pytest.approx(selectivity)
    for k in range(1, len(fractions) + 2):
        current = estimate.remaining_ratio(k)
        assert 0.0 <= current <= previous + 1e-12
        previous = current


# --------------------------------------------------------- planner optimality
@settings(max_examples=30, deadline=None)
@given(fractions=fractions_strategy,
       selectivity=st.floats(min_value=0.001, max_value=0.5, allow_nan=False),
       pim_slope=st.floats(min_value=1e-9, max_value=1e-5),
       host_a=st.floats(min_value=1e-7, max_value=1e-3))
def test_planner_choice_is_no_worse_than_extremes(fractions, selectivity, pim_slope, host_a):
    estimate = _estimate_from(fractions, selectivity)
    model = GroupByCostModel(
        HostGbLatencyModel({4: host_a}, {4: host_a / 10}),
        PimGbLatencyModel({2: pim_slope}, {2: 1e-5}),
    )
    planner = GroupByPlanner(model)
    plan = planner.plan(estimate, pages=500, aggregation_reads=2, reads_per_record=4)
    assert plan.k <= plan.total_subgroups
    assert plan.predicted_time_s <= plan.predicted_host_only_s + 1e-12
    assert plan.predicted_time_s <= plan.predicted_pim_only_s + 1e-12
    assert plan.host_pass_needed == (plan.k < plan.total_subgroups)
    # The chosen subgroups are the largest estimated ones.
    chosen = plan.pim_groups
    if chosen:
        chosen_fracs = [estimate.group_fractions.get(key, 0.0) for key in chosen]
        remaining = [estimate.group_fractions.get(key, 0.0)
                     for key in estimate.ordered_groups[plan.k:]]
        if remaining:
            assert min(chosen_fracs) >= max(remaining) - 1e-12


# --------------------------------------- semantic candidate cache under churn
CHURN_RECORDS = 900

CHURN_PROBES = (
    Query(
        "scalar",
        Comparison("value", "<", 2000),
        (Aggregate("sum", "value"), Aggregate("count")),
    ),
    Query(
        "by-flag",
        Comparison("value", "between", low=500, high=3500),
        (Aggregate("sum", "value"), Aggregate("min", "value"),
         Aggregate("count")),
        group_by=("flag",),
    ),
)

churn_op_strategy = st.one_of(
    st.tuples(st.just("insert"), st.integers(min_value=1, max_value=4),
              st.integers(min_value=0, max_value=2 ** 16)),
    st.tuples(st.just("delete"), st.integers(min_value=0, max_value=3800),
              st.integers(min_value=50, max_value=600)),
    st.tuples(st.just("update"), st.integers(min_value=0, max_value=3),
              st.integers(min_value=0, max_value=4095)),
    st.tuples(st.just("compact")),
)


def _churn_relation(seed: int) -> Relation:
    rng = np.random.default_rng(seed)
    schema = Schema("churn", [
        int_attribute("key", 16),
        int_attribute("value", 12),
        int_attribute("flag", 2),
    ])
    return Relation(schema, {
        "key": rng.integers(0, 1 << 16, CHURN_RECORDS).astype(np.uint64),
        "value": rng.integers(0, 1 << 12, CHURN_RECORDS).astype(np.uint64),
        "flag": rng.integers(0, 4, CHURN_RECORDS).astype(np.uint64),
    })


def _churn_storeds(service, shards):
    engine = service.engine()
    if shards == 1:
        return [engine.stored]
    return list(engine.sharded.shards)


def _assert_cached_plan_matches_cold_walk(service, shards) -> None:
    """Cached/re-validated decisions == a cold walk of the same zone maps."""
    for stored in _churn_storeds(service, shards):
        statistics = stored.statistics
        crossbars_per_page = (
            stored.module.system_config.pim.crossbars_per_page
        )
        assert int(statistics.zonemaps.live.min()) >= 0
        for query in CHURN_PROBES:
            cached = statistics.plan(
                query.predicate, stored.partition_attributes,
                crossbars_per_page, peek=True,
            )
            cold = RelationStatistics(
                statistics.zonemaps, statistics.selectivity,
                semantic_cache=False,
            ).plan(
                query.predicate, stored.partition_attributes,
                crossbars_per_page,
            )
            assert len(cached.candidates) == len(cold.candidates)
            for have, want in zip(cached.candidates, cold.candidates):
                assert np.array_equal(have, want)


def _apply_churn_op(service, shards, op) -> None:
    kind = op[0]
    if kind == "insert":
        _, count, value_seed = op
        storeds = _churn_storeds(service, shards)
        free = sum(s.free_slots for s in storeds)
        record_rng = np.random.default_rng(value_seed)
        records = [
            {
                "key": int(record_rng.integers(0, 1 << 16)),
                "value": int(record_rng.integers(0, 1 << 12)),
                "flag": int(record_rng.integers(0, 4)),
            }
            for _ in range(min(count, free))
        ]
        if records:
            service.insert(records)
    elif kind == "delete":
        _, low, span = op
        service.delete(Comparison("value", "between", low=low, high=low + span))
    elif kind == "update":
        _, flag, new_value = op
        predicate = Comparison("flag", "==", flag)
        assignments = {"value": new_value}
        engine = service.engine()
        if shards == 1:
            from repro.pim.controller import PimExecutor
            execute_update(
                engine.stored, predicate, assignments,
                PimExecutor(engine.config),
            )
        else:
            execute_sharded_update(engine.sharded, predicate, assignments)
    else:
        service.compact(force=True)


@settings(max_examples=6, deadline=None)
@given(ops=st.lists(churn_op_strategy, min_size=3, max_size=6),
       seed=st.integers(min_value=0, max_value=2 ** 16))
def test_candidate_cache_bit_exact_under_churn(ops, seed):
    """INSERT/DELETE/UPDATE/compaction churn at K=1 and K=4, both backends.

    After every op, on every backend and shard count: the probe rows are
    bit-exact with a reference aggregation over the live ground truth, an
    immediate replay (the cached decision) returns identical rows, every
    cached/re-validated plan equals a cold walk over the same maintained
    zone maps, and no live counter ever goes negative.
    """
    rows_by_backend = {}
    for backend in ("packed", "bool"):
        trace = []
        for shards in (1, 4):
            service = QueryService(vectorized=True)
            relation = _churn_relation(seed)
            if shards == 1:
                system = DEFAULT_CONFIG.with_backend(backend)
                stored = StoredRelation(
                    relation, PimModule(system), label="churn"
                )
                service.register("churn", stored, config=system)
            else:
                service.register_sharded(
                    "churn", relation, shards=shards, backend=backend
                )
            for op in ops:
                _apply_churn_op(service, shards, op)
                live = (
                    service.engine().stored.live_relation()
                    if shards == 1
                    else service.engine().sharded.live_relation()
                )
                for query in CHURN_PROBES:
                    execution = service.execute(query)
                    expected = reference_group_aggregate(
                        live, evaluate_predicate(query.predicate, live),
                        query.group_by, query.aggregates,
                    )
                    assert execution.rows == expected
                    replay = service.execute(query)
                    assert replay.rows == execution.rows
                    trace.append(sorted(execution.rows.items()))
                _assert_cached_plan_matches_cold_walk(service, shards)
        rows_by_backend[backend] = trace
    assert rows_by_backend["packed"] == rows_by_backend["bool"]
