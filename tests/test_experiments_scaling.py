"""Small-scale tests of the serving experiments (throughput + sharded scaling).

The full sweeps run in ``benchmarks/``; these tests execute the same
harnesses at reduced size so their result containers, acceptance properties
and renderers stay covered by the tier-1 suite.
"""

import pytest

from repro.experiments import service_throughput, sharded_scaling


@pytest.fixture(scope="module")
def scaling_results():
    return sharded_scaling.run_scaling(
        shard_counts=(1, 2), queries=("Q1.1", "Q3.1")
    )


def test_sharded_scaling_smoke(scaling_results):
    results = scaling_results
    assert results.bit_exact
    assert results.latency_monotonic
    assert results.shard_counts == (1, 2)
    # Pages divide evenly at every swept shard count.
    assert results.records == sharded_scaling.aligned_record_count((1, 2))
    assert results.pages % 2 == 0
    # K=1 equals unsharded up to the (tiny) gather term.
    assert results.point(1).total_time_s == pytest.approx(
        results.unsharded_time_s, rel=1e-3
    )
    assert results.speedup(2) > 1.0
    assert results.wear_ratio(2) <= 1.001
    assert results.energy_ratio(2) <= 1.05
    assert results.scalar_dynamic_energy_ratio(2) == pytest.approx(1.0, rel=1e-3)
    with pytest.raises(KeyError):
        results.point(8)


def test_sharded_scaling_render(scaling_results):
    text = sharded_scaling.render(scaling_results)
    assert "latency monotonic" in text
    assert "bit-exact" in text and "yes" in text
    assert "K=2" in text


def test_service_throughput_smoke():
    results = service_throughput.run_throughput(
        scale_factor=0.002, batch_sizes=(2,), baseline_batch=2
    )
    assert results.bit_exact
    point = results.warm_point(2)
    assert point.batch_size == 2 and point.wall_qps > 0
    assert results.speedup > 0
    text = service_throughput.render(results)
    assert "batch" in text.lower()
