"""Tests of the NOR program builder and its comparison circuits."""

import numpy as np
import pytest

from repro.pim.crossbar import CrossbarBank
from repro.pim.logic import InitOp, NorOp, Program, ProgramBuilder, ScratchExhaustedError


FIELD_WIDTH = 8
FIELD_COLS = list(range(FIELD_WIDTH))
SCRATCH = list(range(40, 64))
RESULT = 30


@pytest.fixture()
def bank():
    bank = CrossbarBank(count=3, rows=32, columns=64)
    rng = np.random.default_rng(7)
    values = rng.integers(0, 1 << FIELD_WIDTH, (3, 32)).astype(np.uint64)
    bank.write_field_column(0, FIELD_WIDTH, values)
    return bank


def _values(bank):
    return bank.read_field_all(0, FIELD_WIDTH)


def _run(bank, build):
    builder = ProgramBuilder(SCRATCH)
    result = build(builder)
    builder.store(result, RESULT)
    program = builder.build(result_column=RESULT)
    program.execute(bank)
    return bank.read_column(RESULT), program


@pytest.mark.parametrize("constant", [0, 1, 37, 200, 255])
def test_eq_const(bank, constant):
    result, program = _run(bank, lambda b: b.eq_const(FIELD_COLS, constant))
    assert np.array_equal(result, _values(bank) == constant)
    assert program.cycles > 0


@pytest.mark.parametrize("constant", [0, 1, 100, 255])
def test_ordering_comparisons(bank, constant):
    values = _values(bank)
    for method, reference in [
        ("lt_const", values < constant),
        ("le_const", values <= constant),
        ("gt_const", values > constant),
        ("ge_const", values >= constant),
        ("ne_const", values != constant),
    ]:
        result, _ = _run(bank, lambda b, m=method: getattr(b, m)(FIELD_COLS, constant))
        assert np.array_equal(result, reference), (method, constant)


def test_between_and_isin(bank):
    values = _values(bank)
    result, _ = _run(bank, lambda b: b.between_const(FIELD_COLS, 50, 180))
    assert np.array_equal(result, (values >= 50) & (values <= 180))
    result, _ = _run(bank, lambda b: b.isin_const(FIELD_COLS, [3, 77, 200]))
    assert np.array_equal(result, np.isin(values, [3, 77, 200]))
    result, _ = _run(bank, lambda b: b.between_const(FIELD_COLS, 180, 50))
    assert not result.any()


def test_boolean_gates(bank):
    a = _values(bank) < 100
    b = _values(bank) % 2 == 1

    def build(builder):
        ca = builder.lt_const(FIELD_COLS, 100)
        cb = builder.copy(FIELD_COLS[0])
        out = builder.and_(ca, cb)
        nout = builder.not_(out)
        return builder.or_(out, nout)  # tautology

    result, _ = _run(bank, build)
    assert result.all()

    def build_xor(builder):
        ca = builder.lt_const(FIELD_COLS, 100)
        cb = builder.copy(FIELD_COLS[0])
        return builder.xor(ca, cb)

    result, _ = _run(bank, build_xor)
    assert np.array_equal(result, a ^ b)


def test_mux_update_algorithm1(bank):
    select = np.random.default_rng(0).integers(0, 2, (3, 32)).astype(bool)
    bank.bits[:, :, 20] = select
    before = _values(bank)
    builder = ProgramBuilder(SCRATCH)
    builder.mux_update(FIELD_COLS, 173, 20)
    program = builder.build()
    # Algorithm 1 uses two primitives per field bit plus the in-place temps.
    assert program.cycles == 2 * FIELD_WIDTH
    program.execute(bank)
    assert np.array_equal(_values(bank), np.where(select, 173, before))


def test_scratch_exhaustion_raises():
    builder = ProgramBuilder([60, 61])
    builder.alloc()
    builder.alloc()
    with pytest.raises(ScratchExhaustedError):
        builder.alloc()


def test_constant_folding_out_of_range():
    builder = ProgramBuilder(SCRATCH)
    with pytest.raises(ValueError):
        builder.eq_const(FIELD_COLS, 1 << FIELD_WIDTH)
    # lt against an over-large constant is simply always true.
    col = builder.lt_const(FIELD_COLS, 1 << FIELD_WIDTH)
    assert isinstance(col, int)


def test_program_reports_cycles_and_writes():
    ops = [InitOp(1, True), NorOp(2, (1,)), NorOp(3, (1, 2))]
    program = Program(ops, result_column=3)
    assert program.cycles == 3
    assert program.writes_per_row == 3
    assert len(program) == 3
