"""The self-tuning storage loop: feedback, re-clustering, pruned DML."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DEFAULT_CONFIG
from repro.core.executor import PimQueryEngine
from repro.db import dml
from repro.db.query import (
    Aggregate,
    And,
    Comparison,
    Query,
    evaluate_predicate,
    reference_group_aggregate,
)
from repro.db.relation import Relation
from repro.db.schema import Schema, int_attribute
from repro.db.storage import StoredRelation
from repro.db.update import execute_update
from repro.pim.controller import PimExecutor
from repro.pim.module import PimModule
from repro.planner.adaptive import AdaptiveController
from repro.planner.selectivity import (
    ColumnHistogram,
    EquiDepthHistogram,
    SelectivityModel,
)
from repro.planner.zonemap import PairZoneMap


# ------------------------------------------------------ equi-depth histograms
def _skewed_values(count=4000, seed=7):
    rng = np.random.default_rng(seed)
    # 90% of the mass in [0, 100), a thin tail across the full 16-bit domain.
    dense = rng.integers(0, 100, int(count * 0.9))
    tail = rng.integers(0, 1 << 16, count - len(dense))
    return np.concatenate([dense, tail]).astype(np.uint64)


def test_equi_depth_beats_equi_width_on_skew():
    values = _skewed_values()
    depth = EquiDepthHistogram.from_values(values, width=16)
    width = ColumnHistogram.from_values(values, width=16)

    def reference_eq(v):
        return float((values == v).sum()) / len(values)

    probes = [0, 5, 50, 99]
    depth_error = sum(
        abs(depth.fraction_eq(v) - reference_eq(v)) for v in probes
    )
    width_error = sum(
        abs(width.fraction_eq(v) - reference_eq(v)) for v in probes
    )
    # The dense region spans a sliver of one equi-width bucket, so its point
    # estimates are diluted by the bucket span; equi-depth edges follow the
    # mass (only the bucket straddling the tail stays diluted).
    assert depth_error < width_error / 2


def test_equi_depth_range_fractions_are_consistent():
    values = _skewed_values(seed=11)
    histogram = EquiDepthHistogram.from_values(values, width=16)
    assert histogram.kind == "equi-depth"
    # Below the domain maximum (inclusive) is everything.
    assert histogram.fraction_below(histogram.max_value, inclusive=True) == (
        pytest.approx(1.0)
    )
    assert histogram.fraction_below(0, inclusive=False) == pytest.approx(0.0)
    # fraction_below is monotone in the limit.
    previous = 0.0
    for limit in range(0, 1 << 16, 4096):
        current = histogram.fraction_below(limit, inclusive=True)
        assert current >= previous - 1e-12
        previous = current
    # A bucket-aligned prefix is exact: every edge cuts at counted mass.
    for bucket in range(histogram.buckets):
        edge = int(histogram.edges[bucket])
        expected = float((values <= edge).sum()) / len(values)
        assert histogram.fraction_below(edge, inclusive=True) == (
            pytest.approx(expected, abs=1e-9)
        )


def test_equi_depth_add_remove_roundtrip():
    values = _skewed_values(seed=3)
    histogram = EquiDepthHistogram.from_values(values, width=16)
    before = histogram.counts.copy()
    extra = np.array([1, 2, 70000 % (1 << 16), 9], dtype=np.uint64)
    histogram.add(extra)
    histogram.remove(extra)
    assert np.array_equal(histogram.counts, before)
    assert histogram.total == len(values)


def test_rebuild_preserves_histogram_variant():
    values = _skewed_values(seed=5)
    schema = Schema("t", [int_attribute("v", 16)])
    relation = Relation(schema, {"v": values})
    model = SelectivityModel.from_relation(relation)
    assert isinstance(model.histograms["v"], ColumnHistogram)
    # One error-triggered rebuild flips the column to equi-depth...
    model.rebuild_column(relation, "v", equi_depth=True)
    assert isinstance(model.histograms["v"], EquiDepthHistogram)
    # ...and a later exact rebuild (compaction) keeps it equi-depth.
    model.rebuild(relation)
    assert isinstance(model.histograms["v"], EquiDepthHistogram)


# --------------------------------------------------------- adaptive controller
def test_error_accumulates_and_triggers_per_column():
    controller = AdaptiveController(error_threshold=2.0)
    predicate = Comparison("a", "==", 1)
    # Perfect estimates never trigger.
    for _ in range(50):
        assert controller.observe(predicate, 0.25, 0.25, 10) == []
    # Total misses (estimated 0.5, actual 0) add 1.0 each: two cross 2.0.
    assert controller.observe(predicate, 0.5, 0.0, 10) == []
    triggered = controller.observe(predicate, 0.5, 0.0, 10)
    assert triggered == ["a"]
    # The accumulator reset: it takes two more misses to trigger again.
    assert controller.observe(predicate, 0.5, 0.0, 10) == []
    assert controller.observe(predicate, 0.5, 0.0, 10) == ["a"]


def test_error_splits_across_predicate_columns():
    controller = AdaptiveController(error_threshold=1.0)
    both = And((Comparison("a", "==", 1), Comparison("b", "==", 2)))
    # A total miss split over two columns adds 0.5 to each.
    assert controller.observe(both, 0.5, 0.0, 10) == []
    assert sorted(controller.observe(both, 0.5, 0.0, 10)) == ["a", "b"]


def test_hot_column_and_pair_tracking():
    controller = AdaptiveController(pair_threshold=100.0)
    controller.observe(Comparison("a", "==", 1), 0.1, 0.1, 30)
    controller.observe(Comparison("b", "==", 1), 0.1, 0.1, 200)
    assert controller.hottest_column() == "b"
    assert controller.hot_pair() is None
    both = And((Comparison("a", "==", 1), Comparison("c", "==", 2)))
    controller.observe(both, 0.1, 0.1, 150)  # 75 per pair, below threshold
    assert controller.hot_pair() is None
    controller.observe(both, 0.1, 0.1, 150)
    assert controller.hot_pair() == ("a", "c")
    snapshot = controller.snapshot()
    assert snapshot.observations == 4
    assert snapshot.hot_pair == ("a", "c")


# ----------------------------------------------------------- pair zone sketch
def test_pair_sketch_is_conservative_and_narrows():
    rng = np.random.default_rng(17)
    crossbars, rows = 8, 64
    schema = Schema("t", [int_attribute("a", 8), int_attribute("b", 8)])
    # Correlated pair: b tracks a's bucket, so most (a, b) combinations
    # never co-occur even though each column alone spans its full domain.
    a = rng.integers(0, 256, crossbars * rows).astype(np.uint64)
    b = ((a // 32) * 32 + rng.integers(0, 32, crossbars * rows)).astype(
        np.uint64
    )
    relation = Relation(schema, {"a": a, "b": b})
    sketch = PairZoneMap.from_relation(
        ("a", "b"), schema, crossbars, rows, relation
    )
    grid_a = a.reshape(crossbars, rows)
    grid_b = b.reshape(crossbars, rows)
    for low in (0, 64, 160, 224):
        frag_a = Comparison("a", "between", low=low, high=low + 31)
        for blow in (0, 96, 224):
            frag_b = Comparison("b", "between", low=blow, high=blow + 31)
            mask_a = sketch.bucket_mask(frag_a)
            mask_b = sketch.bucket_mask(frag_b)
            possible = sketch.possible(mask_a, mask_b)
            truth = (
                (grid_a >= low) & (grid_a <= low + 31)
                & (grid_b >= blow) & (grid_b <= blow + 31)
            ).any(axis=1)
            # Conservative: never prunes a crossbar holding a matching row.
            assert not np.any(truth & ~possible)
    # And it actually narrows: an anti-correlated combination is pruned
    # everywhere even though each single-column zone map would pass it.
    mask_a = sketch.bucket_mask(Comparison("a", "between", low=0, high=31))
    mask_b = sketch.bucket_mask(Comparison("b", "between", low=224, high=255))
    assert not sketch.possible(mask_a, mask_b).any()


def test_pair_sketch_update_saturates():
    schema = Schema("t", [int_attribute("a", 8), int_attribute("b", 8)])
    values = np.zeros(16, dtype=np.uint64)
    relation = Relation(schema, {"a": values, "b": values})
    sketch = PairZoneMap.from_relation(("a", "b"), schema, 2, 8, relation)
    mask_a = sketch.bucket_mask(Comparison("a", "==", 255))
    mask_b = sketch.bucket_mask(Comparison("b", "==", 255))
    assert not sketch.possible(mask_a, mask_b).any()
    # An UPDATE touching crossbar 1 saturates its sketch word: any
    # combination is possible there until the next exact rebuild.
    sketch.note_update("a", np.array([1]))
    assert not sketch.possible(mask_a, mask_b)[0]
    assert sketch.possible(mask_a, mask_b)[1]


# ------------------------------------------- tightness after an exact rebuild
def _small_stored(backend="packed", records=600, seed=29):
    rng = np.random.default_rng(seed)
    schema = Schema("drift", [
        int_attribute("key", 16),
        int_attribute("value", 12),
        int_attribute("flag", 2),
    ])
    relation = Relation(schema, {
        "key": rng.integers(0, 1 << 16, records).astype(np.uint64),
        "value": rng.integers(0, 1 << 12, records).astype(np.uint64),
        "flag": rng.integers(0, 4, records).astype(np.uint64),
    })
    system = DEFAULT_CONFIG.with_backend(backend)
    stored = StoredRelation(relation, PimModule(system), label="drift")
    return stored, system


def _narrow_stored(backend="packed", records=600, seed=29):
    """All `value`s in a narrow mid-range band, so UPDATEs can drift bounds."""
    rng = np.random.default_rng(seed)
    schema = Schema("drift", [
        int_attribute("key", 16),
        int_attribute("value", 12),
        int_attribute("flag", 2),
    ])
    relation = Relation(schema, {
        "key": rng.integers(0, 1 << 16, records).astype(np.uint64),
        "value": rng.integers(1000, 1100, records).astype(np.uint64),
        "flag": rng.integers(0, 4, records).astype(np.uint64),
    })
    system = DEFAULT_CONFIG.with_backend(backend)
    stored = StoredRelation(relation, PimModule(system), label="drift")
    return stored, system


def test_update_churn_drifts_then_rebuild_is_tight():
    """Widen-only drift under UPDATE churn, gone after compaction."""
    stored, system = _narrow_stored()
    executor = PimExecutor(system)
    # Shuttle the flag==1 rows to a high extreme and back down: the first
    # UPDATE widens the max bound to 4000 (tight — the rows are there); the
    # second moves those same rows to 5, but the maintenance hook only ever
    # widens, so the max bound keeps claiming 4000 while no live row holds it.
    for new_value in (4000, 5):
        execute_update(
            stored, Comparison("flag", "==", 1), {"value": new_value},
            executor,
        )
    zonemaps = stored.statistics.zonemaps
    with pytest.raises(AssertionError, match="not tight"):
        zonemaps.assert_tight(stored.relation, stored.valid_mask(0))
    # A DELETE (so compaction has tombstones to chase) then a forced
    # compaction rebuilds exactly — rebuild() itself asserts tightness; the
    # explicit re-check documents the contract.
    dml.execute_delete(
        stored, Comparison("value", "between", low=0, high=5), executor
    )
    result = dml.execute_compaction(stored, executor, force=True)
    assert result.performed
    stored.statistics.zonemaps.assert_tight(
        stored.relation, stored.valid_mask(0)
    )


def test_assert_tight_catches_a_stale_bound():
    stored, _ = _small_stored(records=200, seed=31)
    zonemaps = stored.statistics.zonemaps
    zonemaps.assert_tight(stored.relation, stored.valid_mask(0))
    zonemaps.maxs["value"][0] += np.uint64(1)
    with pytest.raises(AssertionError, match="not tight"):
        zonemaps.assert_tight(stored.relation, stored.valid_mask(0))


# ----------------------------------------------------- pruned DML == broadcast
@pytest.mark.parametrize("backend", ["packed", "bool"])
@pytest.mark.parametrize("vectorized", [False, True])
def test_pruned_delete_matches_broadcast(backend, vectorized):
    pruned_stored, system = _small_stored(backend)
    broadcast_stored, _ = _small_stored(backend)
    predicate = Comparison("key", "between", low=0, high=2000)
    a = dml.execute_delete(
        pruned_stored, predicate, PimExecutor(system),
        vectorized=vectorized, pruned=True,
    )
    b = dml.execute_delete(
        broadcast_stored, predicate, PimExecutor(system),
        vectorized=vectorized, pruned=False,
    )
    assert a.records_deleted == b.records_deleted > 0
    assert np.array_equal(
        pruned_stored.valid_mask(0), broadcast_stored.valid_mask(0)
    )
    for name in pruned_stored.relation.schema.names:
        assert np.array_equal(
            pruned_stored.decode_column(name),
            broadcast_stored.decode_column(name),
        )


@pytest.mark.parametrize("backend", ["packed", "bool"])
def test_pruned_update_matches_broadcast(backend):
    pruned_stored, system = _small_stored(backend)
    broadcast_stored, _ = _small_stored(backend)
    predicate = Comparison("key", "between", low=1000, high=9000)
    assignments = {"value": 77}
    a = execute_update(
        pruned_stored, predicate, assignments, PimExecutor(system),
        pruned=True,
    )
    b = execute_update(
        broadcast_stored, predicate, assignments, PimExecutor(system),
        pruned=False,
    )
    assert a.records_updated == b.records_updated > 0
    for name in pruned_stored.relation.schema.names:
        assert np.array_equal(
            pruned_stored.decode_column(name),
            broadcast_stored.decode_column(name),
        )


def test_pruned_dml_empty_decision_skips_the_broadcast():
    stored, system = _small_stored()
    executor = PimExecutor(system)
    logic_before = executor.stats.logic_ops
    # `key` is 16 bits wide: nothing can exceed the domain maximum, and the
    # planner folds the comparison to false before touching any crossbar.
    result = dml.execute_delete(
        stored, Comparison("key", ">", (1 << 16) - 1), executor, pruned=True,
    )
    assert result.records_deleted == 0
    assert executor.stats.logic_ops == logic_before  # no program ran
    assert stored.tombstone_count == 0


# ------------------------------------------------ engine feedback integration
def test_engine_feedback_rebuilds_and_recluster_loop():
    """The closed loop end to end on a small relation (packed backend)."""
    stored, system = _small_stored(records=3000, seed=41)
    engine = PimQueryEngine(
        stored, config=system, label="loop", vectorized=True, pruning=True,
    )
    executor = PimExecutor(system)
    probe = Query(
        "probe",
        Comparison("key", "between", low=0, high=20000),
        (Aggregate("sum", "value"), Aggregate("count")),
    )
    engine.execute(probe)
    # Tombstone the probed range, then replay: the maintained histogram
    # still spreads residual mass into the emptied range, so every replay
    # estimates >0 while selecting nothing — a relative error of 1.0 per
    # query, scale-free by design, which crosses the rebuild threshold.
    dml.execute_delete(
        stored, Comparison("key", "between", low=0, high=20000), executor
    )
    assert stored.statistics.estimate(probe.predicate) > 0.0
    for _ in range(6):
        engine.execute(probe)
    snapshot = stored.statistics.adaptive_snapshot()
    assert snapshot.rebuilds >= 1
    assert snapshot.hot_column == "key"
    assert isinstance(
        stored.statistics.selectivity.histograms["key"], EquiDepthHistogram
    )
    # Compaction re-clusters by the hottest column and rebuilds tight.
    result = dml.execute_compaction(stored, executor, force=True)
    assert result.performed
    assert result.clustered_by == "key"
    keys = stored.relation.column("key")
    assert np.all(keys[:-1] <= keys[1:])  # densely sorted by the hot column
    stored.statistics.zonemaps.assert_tight(
        stored.relation, stored.valid_mask(0)
    )


def test_host_scan_records_estimate_and_feeds_back():
    """Host-routed executions carry the estimate and feed the accumulator."""
    from repro.planner.planner import execute_host_scan

    stored, system = _small_stored(records=800, seed=43)
    engine = PimQueryEngine(
        stored, config=system, label="host", vectorized=True, pruning=True,
    )
    query = Query(
        "host-probe",
        Comparison("value", "<", 100),
        (Aggregate("sum", "value"), Aggregate("count")),
    )
    observations_before = stored.statistics.adaptive_snapshot().observations
    execution = execute_host_scan(engine, query)
    assert execution.estimated_selectivity is not None
    snapshot = stored.statistics.adaptive_snapshot()
    assert snapshot.observations == observations_before + 1


# ------------------------------- property: the whole loop under random churn
CHURN_RECORDS = 900

CHURN_PROBES = (
    Query(
        "scalar",
        Comparison("value", "<", 2000),
        (Aggregate("sum", "value"), Aggregate("count")),
    ),
    Query(
        "by-flag",
        Comparison("value", "between", low=500, high=3500),
        (Aggregate("sum", "value"), Aggregate("min", "value"),
         Aggregate("count")),
        group_by=("flag",),
    ),
)

churn_op_strategy = st.one_of(
    st.tuples(st.just("insert"), st.integers(min_value=1, max_value=4),
              st.integers(min_value=0, max_value=2 ** 16)),
    st.tuples(st.just("delete"), st.integers(min_value=0, max_value=3800),
              st.integers(min_value=50, max_value=600)),
    st.tuples(st.just("update"), st.integers(min_value=0, max_value=3),
              st.integers(min_value=0, max_value=4095)),
    st.tuples(st.just("feedback")),
    st.tuples(st.just("compact")),
)


def _churn_relation(seed: int) -> Relation:
    rng = np.random.default_rng(seed)
    schema = Schema("churn", [
        int_attribute("key", 16),
        int_attribute("value", 12),
        int_attribute("flag", 2),
    ])
    return Relation(schema, {
        "key": rng.integers(0, 1 << 16, CHURN_RECORDS).astype(np.uint64),
        "value": rng.integers(0, 1 << 12, CHURN_RECORDS).astype(np.uint64),
        "flag": rng.integers(0, 4, CHURN_RECORDS).astype(np.uint64),
    })


def _build_service(backend: str, shards: int, seed: int):
    from repro.service import QueryService

    service = QueryService(vectorized=True)
    relation = _churn_relation(seed)
    if shards == 1:
        system = DEFAULT_CONFIG.with_backend(backend)
        stored = StoredRelation(relation, PimModule(system), label="churn")
        service.register("churn", stored, config=system)
    else:
        service.register_sharded(
            "churn", relation, shards=shards, backend=backend
        )
    return service


def _service_storeds(service, shards):
    engine = service.engine()
    if shards == 1:
        return [engine.stored]
    return list(engine.sharded.shards)


def _apply_churn_op(service, shards, op, pruned: bool) -> None:
    from repro.sharding import execute_sharded_update

    kind = op[0]
    if kind == "insert":
        _, count, value_seed = op
        storeds = _service_storeds(service, shards)
        free = sum(s.free_slots for s in storeds)
        record_rng = np.random.default_rng(value_seed)
        records = [
            {
                "key": int(record_rng.integers(0, 1 << 16)),
                "value": int(record_rng.integers(0, 1 << 12)),
                "flag": int(record_rng.integers(0, 4)),
            }
            for _ in range(min(count, free))
        ]
        if records:
            service.insert(records)
    elif kind == "delete":
        _, low, span = op
        predicate = Comparison("value", "between", low=low, high=low + span)
        engine = service.engine()
        if shards == 1:
            dml.execute_delete(
                engine.stored, predicate, PimExecutor(engine.config),
                pruned=pruned,
            )
        else:
            from repro.sharding.dml import execute_sharded_delete
            execute_sharded_delete(engine.sharded, predicate, pruned=pruned)
    elif kind == "update":
        _, flag, new_value = op
        predicate = Comparison("flag", "==", flag)
        assignments = {"value": new_value}
        engine = service.engine()
        if shards == 1:
            execute_update(
                engine.stored, predicate, assignments,
                PimExecutor(engine.config), pruned=pruned,
            )
        else:
            execute_sharded_update(
                engine.sharded, predicate, assignments, pruned=pruned
            )
    elif kind == "feedback":
        # Drive the error accumulator through its public API hard enough to
        # trigger an equi-depth rebuild mid-churn (a certain-miss estimate
        # repeated past the threshold), on every shard.
        for stored in _service_storeds(service, shards):
            for _ in range(5):
                stored.statistics.observe_execution(
                    CHURN_PROBES[0].predicate, 1.0, 0.0,
                    crossbars_scanned=stored.statistics.zonemaps.crossbars,
                    stored=stored,
                )
    else:
        service.compact(force=True)


def _histograms_tight(storeds, names) -> None:
    """The just-rebuilt histograms count exactly the live rows.

    Only the columns rebuilt by the op are exact: the approximate bucket
    maintenance between rebuilds is allowed to drift (that drift is the
    error signal), so a feedback op guarantees tightness for its triggered
    column and a *performed* compaction for every column.
    """
    for stored in storeds:
        live = stored.live_relation()
        for name in names:
            histogram = stored.statistics.selectivity.histograms[name]
            fresh = type(histogram).from_values(
                live.column(name), stored.relation.schema.attribute(name).width
            )
            assert histogram.total == len(live)
            if isinstance(histogram, EquiDepthHistogram):
                assert np.array_equal(histogram.edges, fresh.edges)
            assert np.array_equal(histogram.counts, fresh.counts)


@settings(max_examples=4, deadline=None)
@given(ops=st.lists(churn_op_strategy, min_size=3, max_size=6),
       seed=st.integers(min_value=0, max_value=2 ** 16))
def test_adaptive_loop_bit_exact_under_churn(ops, seed):
    """Pruned churn at K=1 and K=4, both backends, vs a broadcast twin.

    After every op, on every backend and shard count: probe rows are
    bit-exact with the reference aggregation over the live ground truth and
    with a broadcast-DML twin replaying the same ops; pruned DML tombstones
    exactly the rows broadcast DML does (valid masks compared per shard);
    and after every compaction or error-triggered rebuild the histograms
    count exactly the live rows and the zone maps are tight.
    """
    rows_by_backend = {}
    for backend in ("packed", "bool"):
        trace = []
        for shards in (1, 4):
            service = _build_service(backend, shards, seed)
            twin = _build_service(backend, shards, seed)
            for op in ops:
                # A forced compaction is still a no-op on a shard without
                # tombstones, so only shards with pending tombstones get
                # the exact rebuild the post-compact assertions rely on.
                compacted = [
                    stored
                    for stored in _service_storeds(service, shards)
                    if stored.tombstone_count > 0
                ] if op[0] == "compact" else []
                _apply_churn_op(service, shards, op, pruned=True)
                _apply_churn_op(twin, shards, op, pruned=False)
                # Pruned DML tombstones exactly what broadcast does.
                for mine, theirs in zip(
                    _service_storeds(service, shards),
                    _service_storeds(twin, shards),
                ):
                    assert np.array_equal(
                        mine.valid_mask(0), theirs.valid_mask(0)
                    )
                live = (
                    service.engine().stored.live_relation()
                    if shards == 1
                    else service.engine().sharded.live_relation()
                )
                for query in CHURN_PROBES:
                    execution = service.execute(query)
                    expected = reference_group_aggregate(
                        live, evaluate_predicate(query.predicate, live),
                        query.group_by, query.aggregates,
                    )
                    assert execution.rows == expected
                    assert twin.execute(query).rows == expected
                    trace.append(sorted(execution.rows.items()))
                if op[0] == "compact":
                    _histograms_tight(compacted, ("key", "value", "flag"))
                    for stored in compacted:
                        stored.statistics.zonemaps.assert_tight(
                            stored.relation, stored.valid_mask(0)
                        )
                elif op[0] == "feedback":
                    _histograms_tight(
                        _service_storeds(service, shards), ("value",)
                    )
        rows_by_backend[backend] = trace
    assert rows_by_backend["packed"] == rows_by_backend["bool"]
