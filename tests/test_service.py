"""Tests of the batched query service (cache, scheduling, stats)."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.executor import PimQueryEngine
from repro.db.query import Aggregate, And, BETWEEN, Comparison, IN, Query
from repro.db.storage import StoredRelation
from repro.pim.module import PimModule
from repro.service import ProgramCache, QueryRequest, QueryService

FILTER = And((
    Comparison("region", IN, values=("ASIA", "EUROPE")),
    Comparison("year", BETWEEN, low=1993, high=1996),
))
WORKLOAD = [
    Query("scalar", FILTER, (Aggregate("sum", "price"), Aggregate("count"))),
    Query("gb-city", FILTER,
          (Aggregate("sum", "price"), Aggregate("min", "price")),
          group_by=("city",)),
    Query("gb-year", Comparison("discount", ">=", 5),
          (Aggregate("sum", "price"), Aggregate("count")),
          group_by=("year",)),
    Query("scalar", FILTER, (Aggregate("sum", "price"), Aggregate("count"))),
]


def _store(relation, **kwargs):
    module = PimModule(DEFAULT_CONFIG)
    return StoredRelation(
        relation, module, label=kwargs.pop("label", "svc"),
        aggregation_width=22, reserve_bulk_aggregation=False, **kwargs
    )


@pytest.fixture()
def service(toy_relation):
    service = QueryService(cache_capacity=128)
    service.register("toy", _store(toy_relation))
    return service


def test_batch_matches_sequential_execution(toy_relation, service):
    result = service.execute_batch(WORKLOAD)
    sequential = PimQueryEngine(_store(toy_relation))
    for execution, query in zip(result, WORKLOAD):
        assert execution.rows == sequential.execute(query).rows
    assert len(result) == len(WORKLOAD)


def test_second_replay_hits_the_cache(service):
    first = service.execute_batch(WORKLOAD)
    assert first.stats.cache.misses > 0
    second = service.execute_batch(WORKLOAD)
    assert second.stats.cache.misses == 0
    assert second.stats.cache.hits > 0
    for a, b in zip(first, second):
        assert a.rows == b.rows
        assert a.time_s == pytest.approx(b.time_s, rel=1e-12)


def test_service_stats_summarise_the_batch(service):
    result = service.execute_batch(WORKLOAD)
    stats = result.stats
    assert stats.queries == len(WORKLOAD)
    assert stats.wall_time_s > 0 and stats.wall_qps > 0
    latencies = sorted(e.time_s for e in result)
    assert stats.modelled_time_s == pytest.approx(sum(latencies))
    assert latencies[0] <= stats.modelled_p50_s <= stats.modelled_p95_s <= latencies[-1]
    assert "q/s" in stats.describe()


def test_multiple_relations_and_request_routing(toy_relation):
    service = QueryService()
    service.register("a", _store(toy_relation, label="a"))
    service.register("b", _store(toy_relation, label="b"))
    assert service.relations == ["a", "b"]
    requests = [
        QueryRequest(WORKLOAD[0], "b"),
        WORKLOAD[1],                      # routed to the default ("a")
        QueryRequest(WORKLOAD[2], "a"),
    ]
    result = service.execute_batch(requests)
    # The cost planner may route individual queries to the host-scan path
    # (label suffix "/host-scan"); the relation routing must hold either way.
    assert [e.label.split("/")[0] for e in result] == ["b", "a", "a"]
    reference = PimQueryEngine(_store(toy_relation))
    for execution, request in zip(result, requests):
        query = request.query if isinstance(request, QueryRequest) else request
        assert execution.rows == reference.execute(query).rows


def test_service_registry_errors(toy_relation, service):
    with pytest.raises(ValueError, match="already registered"):
        service.register("toy", _store(toy_relation))
    with pytest.raises(KeyError, match="unknown relation"):
        service.execute(WORKLOAD[0], relation="nope")
    with pytest.raises(ValueError, match="no relation registered"):
        QueryService().execute(WORKLOAD[0])


def test_program_cache_lru_eviction():
    cache = ProgramCache(capacity=1)
    first = cache._lookup(("filter", "p", 1), lambda: "p1")
    assert first == "p1" and len(cache) == 1
    cache._lookup(("filter", "q", 2), lambda: "p2")  # evicts the first
    assert cache.stats.evictions == 1 and len(cache) == 1
    again = cache._lookup(("filter", "p", 1), lambda: "rebuilt")
    assert again == "rebuilt"
    assert cache.stats.misses == 3 and cache.stats.hits == 0
    with pytest.raises(ValueError):
        ProgramCache(capacity=0)


def test_ssb_replay_through_service(ssb_one_xb_engine):
    """A slice of the SSB workload served in a batch, bit-exact vs execute()."""
    from repro.ssb import ssb_query

    names = ["Q1.1", "Q2.1", "Q1.1"]
    queries = [ssb_query(n) for n in names]
    service = QueryService()
    service.register(
        "ssb", ssb_one_xb_engine.stored,
        timing_scale=ssb_one_xb_engine.timing_scale,
    )
    result = service.execute_batch(queries)
    for execution, query in zip(result, queries):
        assert execution.rows == ssb_one_xb_engine.execute(query).rows
    assert result.stats.cache.hits > 0  # the repeated Q1.1 reuses its program
