"""Tests of the host-side models: DRAM timing, read path, aggregation, CPU."""

import math

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.db.query import Aggregate
from repro.host import dram
from repro.host.aggregator import combine_partials, host_group_aggregate, merge_group_results
from repro.host.processor import cpu_time, split_evenly
from repro.host.readpath import HostReadModel
from repro.pim.controller import PimExecutor
from repro.pim.stats import PimStats
from repro.db.compiler import compile_predicate
from repro.db.query import Comparison, LT


HOST = DEFAULT_CONFIG.host


def test_stream_and_scattered_read_times():
    assert dram.stream_read_time(HOST, 0) == 0.0
    assert dram.stream_read_time(HOST, 64) == pytest.approx(HOST.dram_access_latency_s)
    big = dram.stream_read_time(HOST, 1 << 30)
    assert big == pytest.approx((1 << 30) / HOST.dram_bw_bytes_per_s)
    # Scattered reads are latency-bound and benefit from threads, but never
    # beat the bandwidth bound.
    one_thread = dram.scattered_read_time(HOST, 10_000, threads=1)
    four_threads = dram.scattered_read_time(HOST, 10_000, threads=4)
    assert four_threads < one_thread
    assert dram.scattered_read_time(HOST, 10_000_000, threads=64) >= (
        10_000_000 * 64 / HOST.dram_bw_bytes_per_s
    )
    assert dram.write_time(HOST, 0) == 0.0


def test_cpu_time_and_split():
    assert split_evenly(10, 4) == [3, 3, 2, 2]
    assert split_evenly(2, 4) == [1, 1, 0, 0]
    assert cpu_time(HOST, 0, 10) == 0.0
    assert cpu_time(HOST, 1000, 10, threads=2) == pytest.approx(
        1000 * 10 / 2 / HOST.frequency_hz
    )
    # Threads are capped at the core count.
    assert cpu_time(HOST, 1000, 10, threads=100) == pytest.approx(
        1000 * 10 / HOST.cores / HOST.frequency_hz
    )


def _filtered_toy(toy_stored, toy_relation, threshold=200_000):
    executor = PimExecutor(DEFAULT_CONFIG)
    program = compile_predicate(
        Comparison("price", LT, threshold), toy_relation.schema, toy_stored.layouts[0]
    )
    executor.run_program(toy_stored.allocations[0].bank, program, pages=1)
    return toy_stored


def test_read_filter_bitvector_and_records(toy_stored, toy_relation):
    stored = _filtered_toy(toy_stored, toy_relation)
    stats = PimStats()
    reader = HostReadModel(DEFAULT_CONFIG, stats)
    mask = reader.read_filter_bitvector(stored, 0)
    assert np.array_equal(mask, toy_relation.column("price") < 200_000)
    assert stats.host_lines_read >= math.ceil(stored.num_records / 8 / 64)

    indices = np.nonzero(mask)[0]
    values = reader.read_records(stored, 0, indices, ["price", "city"])
    assert np.array_equal(values["price"], toy_relation.column("price")[indices])
    assert stats.total_time_s > 0
    assert stats.energy_by_component["read"] > 0

    # Read amplification: the distinct-line count is far below one line per
    # value read once many records share a (page, row) line.
    lines = reader.count_record_lines(stored, 0, np.arange(stored.num_records), ["price"])
    words = len(stored.layouts[0].word_indexes("price"))
    assert lines <= stored.rows_per_crossbar * stored.pages * words


def test_reads_per_record_matches_layout(toy_stored):
    stats = PimStats()
    reader = HostReadModel(DEFAULT_CONFIG, stats)
    s = reader.reads_per_record(toy_stored, 0, ["price", "city", "year"])
    assert s == len(toy_stored.layouts[0].words_for_fields(["price", "city", "year"]))


def test_traffic_scale_multiplies_cost_not_values(toy_stored, toy_relation):
    stored = _filtered_toy(toy_stored, toy_relation)
    base_stats, scaled_stats = PimStats(), PimStats()
    base = HostReadModel(DEFAULT_CONFIG, base_stats)
    scaled = HostReadModel(DEFAULT_CONFIG, scaled_stats, traffic_scale=100.0)
    mask_a = base.read_filter_bitvector(stored, 0)
    mask_b = scaled.read_filter_bitvector(stored, 0)
    assert np.array_equal(mask_a, mask_b)
    assert scaled_stats.total_time_s > base_stats.total_time_s
    assert scaled_stats.host_lines_read > base_stats.host_lines_read


def test_transfer_bit_column_between_partitions(toy_relation):
    from repro.db.storage import StoredRelation
    from repro.pim.module import PimModule

    module = PimModule(DEFAULT_CONFIG)
    stored = StoredRelation(
        toy_relation, module, label="two",
        partitions=[["key", "price", "discount", "quantity"],
                    ["city", "region", "year"]],
        aggregation_width=22,
    )
    stats = PimStats()
    reader = HostReadModel(DEFAULT_CONFIG, stats)
    source_layout = stored.layouts[1]
    pattern = np.zeros(stored.num_records, dtype=bool)
    pattern[::7] = True
    stored.write_bit_column(1, source_layout.filter_column, pattern)
    bits = reader.transfer_bit_column(
        stored, 1, source_layout.filter_column, 0, stored.layouts[0].remote_column
    )
    assert np.array_equal(bits, pattern)
    assert np.array_equal(stored.column_bit(0, stored.layouts[0].remote_column), pattern)
    assert stats.host_lines_written > 0
    assert stats.bits_written > 0


def test_host_group_aggregate_and_merge():
    groups = {"g": np.array([0, 0, 1, 2, 1], dtype=np.uint64)}
    values = {"v": np.array([5, 7, 1, 9, 3], dtype=np.uint64)}
    aggregates = [Aggregate("sum", "v"), Aggregate("count"), Aggregate("max", "v")]
    stats = PimStats()
    result = host_group_aggregate(groups, values, aggregates, HOST, stats=stats, threads=4)
    assert result[(0,)]["sum_v"] == 12
    assert result[(1,)]["count"] == 2
    assert result[(2,)]["max_v"] == 9
    assert stats.total_time_s > 0
    with pytest.raises(ValueError):
        host_group_aggregate({"g": np.array([1])}, {"v": np.array([1, 2])}, aggregates, HOST)

    merged = merge_group_results(
        {(0,): {"sum_v": 12, "count": 2, "max_v": 7}},
        {(0,): {"sum_v": 3, "count": 1, "max_v": 9}, (5,): {"sum_v": 1, "count": 1, "max_v": 1}},
        aggregates,
    )
    assert merged[(0,)] == {"sum_v": 15, "count": 3, "max_v": 9}
    assert merged[(5,)]["sum_v"] == 1

    assert combine_partials([np.array([1, 2]), np.array([3])], "sum", HOST) == 6
    assert combine_partials([np.array([4, 2])], "min", HOST) == 2
    assert combine_partials([np.array([4, 2])], "max", HOST) == 4
    with pytest.raises(ValueError):
        combine_partials([np.array([1])], "avg", HOST)
