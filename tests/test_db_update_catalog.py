"""Tests of UPDATE-via-Algorithm-1 and of the star-schema catalog."""

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.db.catalog import Database, ForeignKey
from repro.db.compiler import CompilationError
from repro.db.query import Comparison, EQ
from repro.db.relation import Relation
from repro.db.schema import Schema, int_attribute
from repro.db.storage import StoredRelation
from repro.db.update import execute_update
from repro.pim.controller import PimExecutor
from repro.pim.module import PimModule


def test_execute_update_changes_only_selected_records(toy_stored, toy_relation):
    executor = PimExecutor(DEFAULT_CONFIG)
    before_years = toy_relation.column("year").copy()
    target = toy_relation.column("city") == 2
    result = execute_update(
        toy_stored, Comparison("city", EQ, "CITY2"), {"year": 2001}, executor
    )
    assert result.records_updated == int(target.sum())
    after = toy_stored.decode_column("year")
    assert (after[target] == 2001).all()
    assert np.array_equal(after[~target], before_years[~target])
    # The functional ground truth is kept in sync with the stored bits.
    assert np.array_equal(toy_stored.relation.column("year"), after)
    # The UPDATE itself uses only PIM operations (no host record reads).
    assert executor.stats.host_lines_read == 0
    assert result.update_cycles > 0 and result.filter_cycles > 0


def test_execute_update_rejects_cross_partition(toy_relation):
    module = PimModule(DEFAULT_CONFIG)
    stored = StoredRelation(
        toy_relation, module, label="two",
        partitions=[["key", "price", "discount", "quantity"],
                    ["city", "region", "year"]],
        aggregation_width=22,
    )
    executor = PimExecutor(DEFAULT_CONFIG)
    with pytest.raises(CompilationError):
        execute_update(stored, Comparison("city", EQ, "CITY1"), {"price": 5}, executor)
    with pytest.raises(ValueError):
        execute_update(stored, Comparison("city", EQ, "CITY1"), {}, executor)


def _star_database():
    dim = Relation(
        Schema("dim", [int_attribute("d_key", 8, source="dim"),
                       int_attribute("d_value", 8, source="dim")]),
        {"d_key": np.array([1, 2, 3], dtype=np.uint64),
         "d_value": np.array([10, 20, 30], dtype=np.uint64)},
    )
    fact = Relation(
        Schema("fact", [int_attribute("f_key", 8, source="fact"),
                        int_attribute("f_dim", 8, source="fact")]),
        {"f_key": np.array([1, 2], dtype=np.uint64),
         "f_dim": np.array([3, 1], dtype=np.uint64)},
    )
    return Database(
        relations={"fact": fact, "dim": dim},
        fact="fact",
        foreign_keys=[ForeignKey("f_dim", "dim", "d_key")],
    )


def test_database_catalog_lookups():
    database = _star_database()
    assert "fact" in database
    assert database.fact_relation is database.relation("fact")
    assert database.dimension_names == ["dim"]
    assert database.foreign_key_for("dim").fact_attribute == "f_dim"
    assert database.relation_of_attribute("d_value") == "dim"
    with pytest.raises(KeyError):
        database.relation("missing")
    with pytest.raises(KeyError):
        database.foreign_key_for("missing")
    with pytest.raises(KeyError):
        database.relation_of_attribute("missing")
    empty = Database()
    with pytest.raises(ValueError):
        _ = empty.fact_relation
