"""Tests of the end-to-end PIM query engine on the toy relation."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.executor import PimQueryEngine
from repro.db.query import (
    Aggregate,
    And,
    BETWEEN,
    Comparison,
    EQ,
    IN,
    Query,
    evaluate_predicate,
    reference_group_aggregate,
)
from repro.db.storage import StoredRelation
from repro.pim.module import PimModule


FILTER = And((
    Comparison("region", IN, values=("ASIA", "EUROPE")),
    Comparison("year", BETWEEN, low=1993, high=1996),
    Comparison("discount", ">=", 2),
))


def _engine(relation, partitions=None, config=None, **kwargs):
    system = config if config is not None else DEFAULT_CONFIG
    module = PimModule(system)
    stored = StoredRelation(
        relation, module, label="engine-test",
        partitions=partitions, aggregation_width=22,
        reserve_bulk_aggregation=not system.pim.aggregation_circuit.enabled,
    )
    return PimQueryEngine(stored, config=system, **kwargs)


TWO_XB = [["key", "price", "discount", "quantity"], ["city", "region", "year"]]


def _reference(relation, query):
    mask = evaluate_predicate(query.predicate, relation)
    return reference_group_aggregate(relation, mask, query.group_by, query.aggregates)


def test_scalar_aggregation_matches_reference(toy_relation):
    query = Query("scalar", FILTER,
                  (Aggregate("sum", "price"), Aggregate("count"),
                   Aggregate("min", "price"), Aggregate("max", "price")))
    engine = _engine(toy_relation)
    execution = engine.execute(query)
    reference = _reference(toy_relation, query)[()]
    assert execution.rows[()] == reference
    assert execution.scalar("count") == reference["count"]
    assert 0 < execution.selectivity < 1
    assert execution.time_s > 0 and execution.energy_j > 0
    assert execution.max_writes_per_row > 0
    with pytest.raises(ValueError):
        # decoded access of grouped results on a scalar query is fine, but
        # scalar() on a grouped query is not; exercise the error path below.
        _engine(toy_relation).execute(
            Query("g", FILTER, (Aggregate("sum", "price"),), group_by=("city",))
        ).scalar()


@pytest.mark.parametrize("partitions", [None, TWO_XB])
def test_group_by_matches_reference(toy_relation, partitions):
    query = Query("groupby", FILTER, (Aggregate("sum", "price"), Aggregate("count")),
                  group_by=("city", "year"))
    engine = _engine(toy_relation, partitions=partitions,
                     label="two_xb" if partitions else "one_xb")
    execution = engine.execute(query)
    assert execution.rows == _reference(toy_relation, query)
    assert execution.total_subgroups >= execution.subgroups_in_sample
    assert execution.pim_subgroups <= execution.total_subgroups
    assert execution.plan is not None


def test_group_by_without_aggregation_circuit(toy_relation):
    query = Query("pimdb-like", FILTER, (Aggregate("sum", "price"),), group_by=("region",))
    engine = _engine(toy_relation, config=DEFAULT_CONFIG.without_aggregation_circuit(),
                     label="pimdb")
    execution = engine.execute(query)
    assert execution.rows == _reference(toy_relation, query)


def test_timing_scale_changes_costs_not_results(toy_relation):
    query = Query("scaled", FILTER, (Aggregate("sum", "price"),), group_by=("city",))
    small = _engine(toy_relation, timing_scale=1.0).execute(query)
    large = _engine(toy_relation, timing_scale=500.0).execute(query)
    assert small.rows == large.rows
    assert large.time_s > small.time_s
    assert large.energy_j > small.energy_j
    with pytest.raises(ValueError):
        _engine(toy_relation, timing_scale=0.0)


def test_forced_pim_only_and_host_only_plans(toy_relation):
    """Degenerate cost models force all-PIM or all-host plans; both are exact."""
    from repro.core.latency_model import GroupByCostModel, HostGbLatencyModel, PimGbLatencyModel

    query = Query("forced", FILTER, (Aggregate("sum", "price"),), group_by=("city",))
    reference = _reference(toy_relation, query)

    all_pim_model = GroupByCostModel(
        HostGbLatencyModel({2: 1.0}, {2: 1.0}),      # host absurdly expensive
        PimGbLatencyModel({2: 0.0}, {2: 0.0}),       # PIM free
    )
    all_pim = _engine(toy_relation, cost_model=all_pim_model).execute(query)
    assert all_pim.pim_subgroups == all_pim.total_subgroups
    assert all_pim.rows == reference

    all_host_model = GroupByCostModel(
        HostGbLatencyModel({2: 0.0}, {2: 0.0}),      # host free
        PimGbLatencyModel({2: 1.0}, {2: 1.0}),       # PIM absurdly expensive
    )
    all_host = _engine(toy_relation, cost_model=all_host_model).execute(query)
    assert all_host.pim_subgroups == 0
    assert all_host.rows == reference


def test_empty_result_query(toy_relation):
    query = Query("empty", Comparison("city", EQ, "CITYX"),
                  (Aggregate("sum", "price"),), group_by=("year",))
    execution = _engine(toy_relation).execute(query)
    assert execution.rows == {}
    assert execution.selectivity == 0.0


def test_aggregates_across_partitions_rejected(toy_relation):
    query = Query("bad", FILTER,
                  (Aggregate("sum", "price"), Aggregate("sum", "year")))
    engine = _engine(toy_relation, partitions=TWO_XB)
    with pytest.raises(NotImplementedError):
        engine.execute(query)


def test_decoded_rows_translate_group_keys(toy_relation):
    query = Query("decode", FILTER, (Aggregate("sum", "price"),), group_by=("region",))
    execution = _engine(toy_relation).execute(query)
    decoded = execution.decoded_rows(toy_relation.schema)
    assert all(key[0] in ("ASIA", "EUROPE") for key in decoded)
    assert sum(v["sum_price"] for v in decoded.values()) == sum(
        v["sum_price"] for v in execution.rows.values()
    )
