"""Property-based tests of the arithmetic circuits and reductions (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pim.arithmetic import BulkAggregationPlan, build_ripple_add, build_subtract
from repro.pim.crossbar import CrossbarBank
from repro.pim.logic import ProgramBuilder
from repro.pim.packed import make_bank


WIDTH = 9
A_COLS = list(range(0, WIDTH))
B_COLS = list(range(WIDTH, 2 * WIDTH))
DEST = list(range(2 * WIDTH, 3 * WIDTH + 1))
SCRATCH = list(range(80, 112))

pair_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=(1 << WIDTH) - 1),
        st.integers(min_value=0, max_value=(1 << WIDTH) - 1),
    ),
    min_size=1, max_size=16,
)


def _bank_with(pairs):
    a = np.array([[p[0] for p in pairs]], dtype=np.uint64)
    b = np.array([[p[1] for p in pairs]], dtype=np.uint64)
    bank = CrossbarBank(count=1, rows=len(pairs), columns=112)
    bank.write_field_column(0, WIDTH, a)
    bank.write_field_column(WIDTH, WIDTH, b)
    return bank, a[0], b[0]


@settings(max_examples=30, deadline=None)
@given(pairs=pair_lists)
def test_ripple_add_matches_integer_addition(pairs):
    bank, a, b = _bank_with(pairs)
    builder = ProgramBuilder(SCRATCH)
    build_ripple_add(builder, A_COLS, B_COLS, DEST)
    builder.build().execute(bank)
    assert np.array_equal(bank.read_field_all(DEST[0], WIDTH + 1)[0], a + b)


@settings(max_examples=30, deadline=None)
@given(pairs=pair_lists)
def test_subtract_matches_modular_subtraction(pairs):
    bank, a, b = _bank_with(pairs)
    builder = ProgramBuilder(SCRATCH)
    build_subtract(builder, A_COLS, B_COLS, DEST[:WIDTH])
    builder.build().execute(bank)
    modulus = np.uint64((1 << WIDTH) - 1)
    assert np.array_equal(bank.read_field_all(DEST[0], WIDTH)[0], (a - b) & modulus)


aggregation_cases = st.tuples(
    st.lists(st.integers(min_value=0, max_value=(1 << WIDTH) - 1),
             min_size=2, max_size=32),
    st.lists(st.booleans(), min_size=2, max_size=32),
    st.sampled_from(["sum", "min", "max", "count"]),
)


@pytest.mark.parametrize(
    "backend", ["packed", pytest.param("bool", marks=pytest.mark.slow)]
)
@settings(max_examples=30, deadline=None)
@given(case=aggregation_cases)
def test_gate_level_reduction_equals_functional_reduction(case, backend):
    values, mask, operation = case
    rows = min(len(values), len(mask))
    values, mask = values[:rows], mask[:rows]
    plan = BulkAggregationPlan(
        rows=rows, field_offset=0, field_width=WIDTH, mask_column=25,
        acc_offset=30, operand_offset=55,
        scratch_columns=range(80, 140), operation=operation,
    )

    def loaded():
        bank = make_bank(backend, count=1, rows=rows, columns=140)
        bank.write_field_column(0, WIDTH, np.array([values], dtype=np.uint64))
        bank.write_bool_column(25, np.array([mask], dtype=bool))
        return bank

    gate = plan.run_gate_level(loaded())
    functional = plan.run_functional(loaded())
    assert np.array_equal(gate, functional)

    stored = np.array(values, dtype=np.uint64)
    chosen = stored[np.array(mask, dtype=bool)]
    if operation == "sum":
        expected = int(chosen.sum())
    elif operation == "count":
        expected = int(np.count_nonzero(mask))
    elif operation == "min":
        expected = int(chosen.min()) if chosen.size else (1 << plan.acc_width) - 1
    else:
        expected = int(chosen.max()) if chosen.size else 0
    assert int(gate[0]) == expected
