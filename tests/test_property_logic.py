"""Property-based tests of the NOR comparison circuits (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.pim.crossbar import CrossbarBank
from repro.pim.logic import ProgramBuilder


WIDTH = 10
FIELD = list(range(WIDTH))
SCRATCH = list(range(40, 72))
RESULT = 30


def _bank_with(values):
    bank = CrossbarBank(count=1, rows=len(values), columns=72)
    bank.write_field_column(0, WIDTH, np.array([values], dtype=np.uint64))
    return bank


values_strategy = st.lists(
    st.integers(min_value=0, max_value=(1 << WIDTH) - 1), min_size=1, max_size=24
)
constant_strategy = st.integers(min_value=0, max_value=(1 << WIDTH) - 1)


@settings(max_examples=40, deadline=None)
@given(values=values_strategy, constant=constant_strategy,
       op=st.sampled_from(["eq", "ne", "lt", "le", "gt", "ge"]))
def test_constant_comparisons_match_python_semantics(values, constant, op):
    bank = _bank_with(values)
    builder = ProgramBuilder(SCRATCH)
    column = getattr(builder, f"{op}_const")(FIELD, constant)
    builder.store(column, RESULT)
    builder.build().execute(bank)
    stored = np.array(values, dtype=np.uint64)
    python_op = {
        "eq": stored == constant, "ne": stored != constant,
        "lt": stored < constant, "le": stored <= constant,
        "gt": stored > constant, "ge": stored >= constant,
    }[op]
    assert np.array_equal(bank.read_column(RESULT)[0], python_op)


@settings(max_examples=30, deadline=None)
@given(values=values_strategy, low=constant_strategy, high=constant_strategy)
def test_between_matches_python_semantics(values, low, high):
    bank = _bank_with(values)
    builder = ProgramBuilder(SCRATCH)
    column = builder.between_const(FIELD, low, high)
    builder.store(column, RESULT)
    builder.build().execute(bank)
    stored = np.array(values, dtype=np.uint64)
    assert np.array_equal(bank.read_column(RESULT)[0], (stored >= low) & (stored <= high))


@settings(max_examples=30, deadline=None)
@given(values=values_strategy,
       members=st.lists(constant_strategy, min_size=1, max_size=6))
def test_isin_matches_python_semantics(values, members):
    bank = _bank_with(values)
    builder = ProgramBuilder(SCRATCH)
    column = builder.isin_const(FIELD, members)
    builder.store(column, RESULT)
    builder.build().execute(bank)
    stored = np.array(values, dtype=np.uint64)
    assert np.array_equal(bank.read_column(RESULT)[0], np.isin(stored, members))


@settings(max_examples=30, deadline=None)
@given(values=values_strategy, constant=constant_strategy,
       selector=st.lists(st.booleans(), min_size=1, max_size=24))
def test_mux_update_only_touches_selected_rows(values, constant, selector):
    rows = min(len(values), len(selector))
    values, selector = values[:rows], selector[:rows]
    bank = _bank_with(values)
    bank.bits[0, :, 20] = np.array(selector, dtype=bool)
    builder = ProgramBuilder(SCRATCH)
    builder.mux_update(FIELD, constant, 20)
    builder.build().execute(bank)
    stored = bank.read_field_all(0, WIDTH)[0]
    expected = np.where(np.array(selector), constant, np.array(values, dtype=np.uint64))
    assert np.array_equal(stored, expected)


@settings(max_examples=25, deadline=None)
@given(values=values_strategy, constant=constant_strategy)
def test_scratch_columns_are_always_released(values, constant):
    """Comparison builders must not leak scratch columns."""
    builder = ProgramBuilder(SCRATCH)
    free_before = len(builder._free)
    column = builder.eq_const(FIELD, constant)
    builder.free(column)
    assert len(builder._free) == free_before
    column = builder.lt_const(FIELD, constant)
    builder.free(column)
    assert len(builder._free) == free_before
