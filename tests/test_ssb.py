"""Tests of the SSB schemas, data generator and query definitions."""

import numpy as np
import pytest

from repro.db.query import evaluate_predicate
from repro.ssb import ALL_QUERIES, QUERY_ORDER, generate, ssb_query
from repro.ssb import schema as ssb_schema
from repro.ssb.datagen import MIN_CUSTOMERS, MIN_PARTS, MIN_SUPPLIERS
from repro.ssb.prejoined import DERIVED_ATTRIBUTES, max_aggregated_width, two_xb_partitions
from repro.ssb.queries import SSB_QUERIES, queries_in_group


def test_value_domains():
    assert len(ssb_schema.REGIONS) == 5
    assert len(ssb_schema.NATIONS) == 25
    assert len(ssb_schema.CITIES) == 250
    assert len(ssb_schema.CATEGORIES) == 25
    assert len(ssb_schema.BRANDS) == 1000
    assert "UNITED STATES" in ssb_schema.NATIONS
    assert ssb_schema.NATION_REGION["JAPAN"] == "ASIA"
    assert ssb_schema.city_name("UNITED KINGDOM", 1) == "UNITED KI1"
    assert "UNITED KI1" in ssb_schema.CITIES
    assert "MFGR#2239" in ssb_schema.BRANDS


def test_brand_dictionary_preserves_order():
    """Range predicates on brands rely on order-preserving dictionary codes."""
    schema = ssb_schema.part_schema(1000)
    brand = schema.attribute("p_brand1")
    low = brand.encode_value("MFGR#2221")
    high = brand.encode_value("MFGR#2228")
    other = brand.encode_value("MFGR#2230")
    assert low < high < other


def test_generator_sizes_and_keys(ssb_dataset):
    assert len(ssb_dataset.customer) >= MIN_CUSTOMERS
    assert len(ssb_dataset.supplier) >= MIN_SUPPLIERS
    assert len(ssb_dataset.part) >= MIN_PARTS
    assert len(ssb_dataset.date) == 2557 or len(ssb_dataset.date) == 2556
    # Foreign keys always reference existing dimension records.
    for fk in ssb_dataset.database.foreign_keys:
        fact_keys = ssb_dataset.lineorder.column(fk.fact_attribute)
        dim_keys = ssb_dataset.database.relation(fk.dimension).column(fk.dimension_key)
        assert np.isin(fact_keys, dim_keys).all()
    # Value ranges of the measure attributes.
    lineorder = ssb_dataset.lineorder
    assert lineorder.column("lo_discount").max() <= 10
    assert 1 <= lineorder.column("lo_quantity").min()
    assert lineorder.column("lo_quantity").max() <= 50
    assert (lineorder.column("lo_revenue") >= lineorder.column("lo_supplycost")).all()


def test_generator_is_deterministic_and_skewed():
    a = generate(scale_factor=0.002, skew=0.8, seed=5)
    b = generate(scale_factor=0.002, skew=0.8, seed=5)
    assert np.array_equal(a.lineorder.column("lo_custkey"), b.lineorder.column("lo_custkey"))
    # Skewed generation concentrates lineorders on few customers compared to
    # the uniform population.
    uniform = generate(scale_factor=0.002, skew=0.0, seed=5)
    def top_share(dataset):
        _, counts = np.unique(dataset.lineorder.column("lo_custkey"), return_counts=True)
        counts.sort()
        return counts[-10:].sum() / counts.sum()
    assert top_share(a) > top_share(uniform)
    with pytest.raises(ValueError):
        generate(scale_factor=0.0)


def test_covering_assignment_guarantees_query_constants(ssb_dataset):
    customer_cities = set(ssb_dataset.customer.decoded_column("c_city"))
    supplier_cities = set(ssb_dataset.supplier.decoded_column("s_city"))
    assert {"UNITED KI1", "UNITED KI5"} <= customer_cities
    assert {"UNITED KI1", "UNITED KI5"} <= supplier_cities
    brands = set(ssb_dataset.part.decoded_column("p_brand1"))
    assert "MFGR#2239" in brands


def test_query_catalogue_structure():
    assert len(QUERY_ORDER) == 13
    assert set(ALL_QUERIES) == set(QUERY_ORDER)
    assert queries_in_group(1) == ["Q1.1", "Q1.2", "Q1.3"]
    assert len(queries_in_group(3)) == 4
    with pytest.raises(KeyError):
        ssb_query("Q9.9")
    for entry in SSB_QUERIES.values():
        assert entry.sql.startswith("select")
        if entry.group == 1:
            assert entry.query.group_by == ()
            assert entry.query.aggregates[0].attribute == "lo_revenue_discounted"
        else:
            assert entry.query.group_by
        if entry.group == 4:
            assert entry.query.aggregates[0].attribute == "lo_profit"


def test_query_selectivities_are_ordered_like_the_paper(ssb_prejoined):
    """Within each flight, selectivity drops from the .1 to the .3/.4 query."""
    def selectivity(name):
        query = ALL_QUERIES[name]
        return evaluate_predicate(query.predicate, ssb_prejoined).mean()

    assert selectivity("Q1.1") > selectivity("Q1.2") > selectivity("Q1.3")
    assert selectivity("Q2.1") > selectivity("Q2.3")
    assert selectivity("Q3.1") > selectivity("Q3.2") > selectivity("Q3.3")
    assert selectivity("Q4.1") > selectivity("Q4.3")


def test_prejoined_record_fits_single_crossbar_row(ssb_prejoined):
    assert ssb_prejoined.schema.record_width + 4 <= 512
    assert max_aggregated_width(ssb_prejoined) == 28
    fact_part, dim_part = two_xb_partitions(ssb_prejoined)
    assert "lo_revenue" in fact_part and "lo_profit" in fact_part
    assert "c_city" in dim_part and "d_year" in dim_part
    assert set(fact_part) | set(dim_part) == set(ssb_prejoined.schema.names)
    assert not (set(fact_part) & set(dim_part))
    assert {d.name for d in DERIVED_ATTRIBUTES} <= set(fact_part)
