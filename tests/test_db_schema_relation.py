"""Tests of schemas, dictionaries and in-memory relations."""

import numpy as np
import pytest

from repro.db.relation import Relation, concatenate
from repro.db.schema import (
    Attribute,
    Dictionary,
    Schema,
    dict_attribute,
    int_attribute,
    width_for_count,
)


def test_dictionary_roundtrip_and_width():
    dictionary = Dictionary(["b", "a", "c"])
    assert dictionary.encode("a") == 1
    assert dictionary.decode(2) == "c"
    assert dictionary.encode("new") == 3
    assert "new" in dictionary
    with pytest.raises(KeyError):
        dictionary.encode_existing("missing")
    assert dictionary.code_width == 2
    assert dictionary.decode_array(np.array([0, 1])) == ["b", "a"]


def test_attribute_validation_and_value_translation():
    with pytest.raises(ValueError):
        Attribute("too_wide", 65)
    with pytest.raises(ValueError):
        Attribute("bad_kind", 8, kind="float")
    city = dict_attribute("city", ["X", "Y"])
    assert city.encode_value("Y") == 1
    assert city.decode_value(0) == "X"
    plain = int_attribute("k", 4)
    assert plain.max_value == 15
    assert plain.encode_value(7) == 7


def test_width_for_count():
    assert width_for_count(1) == 1
    assert width_for_count(2) == 1
    assert width_for_count(3) == 2
    assert width_for_count(1000) == 10


def test_schema_lookup_subset_and_duplicates():
    schema = Schema("s", [int_attribute("a", 4), int_attribute("b", 8)])
    assert schema.record_width == 12
    assert schema.names == ["a", "b"]
    assert "a" in schema and "c" not in schema
    with pytest.raises(KeyError):
        schema.attribute("c")
    subset = schema.subset(["b"])
    assert subset.names == ["b"]
    with pytest.raises(ValueError):
        Schema("dup", [int_attribute("a", 4), int_attribute("a", 4)])


def test_relation_validation_and_operations():
    schema = Schema("r", [int_attribute("a", 4), int_attribute("b", 8)])
    with pytest.raises(ValueError):
        Relation(schema, {"a": np.array([1], dtype=np.uint64)})
    with pytest.raises(ValueError):
        Relation(schema, {"a": np.array([99], dtype=np.uint64),
                          "b": np.array([1], dtype=np.uint64)})
    relation = Relation(schema, {
        "a": np.array([1, 2, 3], dtype=np.uint64),
        "b": np.array([10, 20, 30], dtype=np.uint64),
    })
    assert len(relation) == 3
    selected = relation.select(np.array([True, False, True]))
    assert list(selected.column("b")) == [10, 30]
    projected = relation.project(["b"])
    assert projected.schema.names == ["b"]
    extended = relation.with_column(int_attribute("c", 8), np.array([5, 6, 7]))
    assert "c" in extended.schema
    assert relation.head(2).num_records == 2
    assert relation.records([0]) == [{"a": 1, "b": 10}]
    both = concatenate([relation, relation])
    assert len(both) == 6
    assert relation.nbytes > 0


def test_decoded_column_uses_dictionary():
    schema = Schema("r", [dict_attribute("city", ["X", "Y", "Z"])])
    relation = Relation(schema, {"city": np.array([2, 0], dtype=np.uint64)})
    assert relation.decoded_column("city") == ["Z", "X"]
