"""Tests of the row layout and of relations stored in the PIM module."""

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.db.encoding import LayoutError, RowLayout
from repro.db.schema import Schema, int_attribute
from repro.db.storage import StoredRelation
from repro.pim.module import PimModule


def test_row_layout_assigns_disjoint_fields(toy_relation):
    layout = RowLayout(toy_relation.schema, columns=512, rows=1024)
    used = set()
    for name in toy_relation.schema.names:
        columns = layout.field_columns(name)
        assert not (used & set(columns))
        used.update(columns)
    for special in (layout.valid_column, layout.filter_column,
                    layout.group_column, layout.remote_column):
        assert special not in used
    assert layout.accumulator_offset > layout.remote_column
    assert layout.operand_offset is not None
    assert len(layout.scratch_columns) >= 10
    assert layout.used_columns + len(layout.scratch_columns) == 512


def test_row_layout_word_indexes():
    schema = Schema("w", [int_attribute("a", 20), int_attribute("b", 4)])
    layout = RowLayout(schema, columns=128, rows=16)
    # a spans words 0 and 1; b sits in word 1.
    assert layout.word_indexes("a") == [0, 1]
    assert layout.word_indexes("b") == [1]
    assert layout.words_for_fields(["a", "b"]) == [0, 1]
    assert len(layout.result_word_indexes) >= 1
    described = {name for name, _, _ in layout.describe()}
    assert "<filter>" in described and "<scratch>" in described


def test_row_layout_overflow_raises():
    wide = Schema("wide", [int_attribute(f"a{i}", 64) for i in range(9)])
    with pytest.raises(LayoutError):
        RowLayout(wide, columns=512, rows=1024)


def test_stored_relation_roundtrip_and_geometry(toy_stored, toy_relation):
    assert toy_stored.num_records == len(toy_relation)
    assert toy_stored.partitions == 1
    assert toy_stored.pages == 1
    for name in toy_relation.schema.names:
        assert np.array_equal(toy_stored.decode_column(name), toy_relation.column(name))
    valid = toy_stored.valid_mask()
    assert valid.shape == (len(toy_relation),)
    assert valid.all()
    # Loading must not count towards endurance.
    assert toy_stored.max_writes_since(toy_stored.wear_snapshot()) == 0


def test_stored_relation_vertical_partitioning(toy_relation):
    module = PimModule(DEFAULT_CONFIG)
    stored = StoredRelation(
        toy_relation, module, label="two",
        partitions=[["key", "price", "discount", "quantity"],
                    ["city", "region", "year"]],
        aggregation_width=22,
    )
    assert stored.partitions == 2
    assert stored.partition_of("price") == 0
    assert stored.partition_of("city") == 1
    assert stored.layout_of("year") is stored.layouts[1]
    assert np.array_equal(stored.decode_column("year"), toy_relation.column("year"))
    with pytest.raises(KeyError):
        stored.partition_of("missing")


def test_stored_relation_partition_validation(toy_relation):
    module = PimModule(DEFAULT_CONFIG)
    with pytest.raises(ValueError):
        StoredRelation(toy_relation, module, partitions=[["key"], ["key", "price"]])
    with pytest.raises(ValueError):
        StoredRelation(toy_relation, module, partitions=[["key"]])


def test_write_bit_column_roundtrip(toy_stored):
    values = np.zeros(toy_stored.num_records, dtype=bool)
    values[::3] = True
    column = toy_stored.layouts[0].remote_column
    toy_stored.write_bit_column(0, column, values)
    assert np.array_equal(toy_stored.column_bit(0, column), values)
