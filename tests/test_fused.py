"""The fused kernel pipeline: NOR-DAG lowering and fused-vs-dispatch parity.

Three layers are locked in here:

* **IR** (:mod:`repro.pim.ir`): lowering a compiled program into the
  optimized NOR DAG applies CSE, constant folding and double-negation
  elimination — the tests pin hand-computed gate counts and critical-path
  depths, and an independent reimplementation recomputes every depth.
* **Kernel** (:mod:`repro.pim.fused`): a hypothesis property test drives
  random programs through dispatch and fused execution on both backends in
  lock step — bit-identical cells and wear, broadcast and masked.
* **Execution**: engines configured ``execution="fused"`` and
  ``execution="dispatch"`` must produce identical rows and bit-identical
  :class:`~repro.pim.stats.PimStats` across backends, pruning, and both
  aggregation paths (circuit and bulk-bitwise).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DEFAULT_CONFIG
from repro.core.executor import PimQueryEngine
from repro.core.latency_model import refine_program_latency
from repro.db.query import Aggregate, And, Comparison, Query
from repro.db.relation import Relation
from repro.db.schema import Schema, dict_attribute, int_attribute
from repro.db.storage import StoredRelation
from repro.pim.arithmetic import build_ripple_add
from repro.pim.controller import PimExecutor
from repro.pim.ir import CONST, INPUT
from repro.pim.logic import InitOp, NorOp, Program, ProgramBuilder
from repro.pim.module import PimModule
from repro.pim.packed import make_bank
from repro.pim.stats import PimStats
from repro.service.cache import ProgramCache

ROWS = 70          # crosses the 64-row packed word boundary
COLUMNS = 32
COUNT = 3
SCRATCH = range(16, 32)

CITIES = ["LYON", "OSLO", "PERTH", "QUITO"]


# --------------------------------------------------------------- equality
def assert_banks_equal(a, b) -> None:
    """Both banks hold the same cells and the same wear counters."""
    assert (a.count, a.rows, a.columns) == (b.count, b.rows, b.columns)
    for column in range(a.columns):
        assert np.array_equal(a.read_column(column), b.read_column(column)), (
            f"column {column} differs"
        )
    assert np.array_equal(a.writes_per_row, b.writes_per_row)


def assert_stats_identical(a: PimStats, b: PimStats) -> None:
    """Bit-identical modelled statistics on the two execution strategies."""
    assert dict(a.time_by_phase) == dict(b.time_by_phase)
    assert dict(a.energy_by_component) == dict(b.energy_by_component)
    assert a.logic_ops == b.logic_ops
    assert a.max_writes_per_row == b.max_writes_per_row
    assert a == b


# ------------------------------------------------------------ IR lowering
def _recomputed_depth(dag) -> int:
    """Independent reimplementation of the depth rule (pyCircuit's cells)."""
    depths = []
    for kind, payload in zip(dag.kinds, dag.payloads):
        if kind == INPUT:
            depths.append(0)
        elif kind == CONST:
            depths.append(1)
        else:
            depths.append(1 + max(depths[i] for i in payload))
    return max((depths[node] for _, node in dag.outputs), default=0)


def test_cse_shares_duplicate_subcircuits():
    """Computing the same XNOR twice costs cycles but lowers to one circuit."""
    builder = ProgramBuilder(SCRATCH)
    x1 = builder.xnor(0, 1)
    x2 = builder.xnor(0, 1)
    y = builder.and_(x1, x2)
    builder.store(y, 8)
    duplicated = builder.build(result_column=8)

    single = ProgramBuilder(SCRATCH)
    builder_x = single.xnor(0, 1)
    single.store(builder_x, 8)
    reference = single.build(result_column=8)

    assert duplicated.cycles > reference.cycles
    dag = duplicated.ir()
    # AND of a value with itself collapses; the store's double-NOT collapses;
    # what remains is exactly one XNOR: 4 live gates, critical path 3.
    assert dag.nor_count == reference.ir().nor_count == 4
    assert dag.depth == reference.ir().depth == 3
    # Modelled costs still come from the un-optimized programs.
    assert dag.cycles == duplicated.cycles


def test_double_negation_chain_collapses():
    program = Program(
        [NorOp(5, (0,)), NorOp(6, (5,)), NorOp(7, (6,))], output_columns=[7]
    )
    dag = program.ir()
    # NOT NOT NOT x == NOT x: one gate, depth 1, CSE-shared with column 5.
    assert dag.nor_count == 1
    assert dag.depth == 1
    assert dag.input_columns == (0,)


def test_constant_folding():
    forced_low = Program(
        [InitOp(3, True), NorOp(4, (3, 0))], output_columns=[4]
    )
    dag = forced_low.ir()
    assert dag.nor_count == 0          # a true operand forces the output low
    assert dag.kinds == (CONST,)
    assert dag.payloads == (False,)

    identity = Program(
        [InitOp(3, False), NorOp(4, (3, 0))], output_columns=[4]
    )
    dag = identity.ir()
    assert dag.nor_count == 1          # false operands vanish: NOR(x) remains
    assert dag.depth == 1


def test_depth_matches_hand_computed_gates():
    """Critical-path depth of every builder gate, computed by hand."""
    cases = [
        ("not", lambda b: b.not_(0), 1, 1),
        ("or", lambda b: b.or_(0, 1), 2, 2),
        ("and", lambda b: b.and_(0, 1), 2, 3),
        ("and_not", lambda b: b.and_not(0, 1), 2, 2),
        ("xnor", lambda b: b.xnor(0, 1), 3, 4),
        ("xor", lambda b: b.xor(0, 1), 4, 5),
        # copy is NOT(NOT(x)): double-negation eliminates the whole circuit.
        ("copy", lambda b: b.copy(0), 0, 0),
    ]
    for name, gate, depth, nor_count in cases:
        builder = ProgramBuilder(SCRATCH)
        result = gate(builder)
        builder.store(result, 8)
        program = builder.build(result_column=8)
        dag = program.ir()
        assert dag.depth == depth, name
        assert dag.nor_count == nor_count, name
        assert _recomputed_depth(dag) == dag.depth, name


def test_adder_depth_below_cycles_and_consistent():
    """The ripple adder's critical path sits far below its op count."""
    builder = ProgramBuilder(SCRATCH)
    build_ripple_add(builder, [0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11])
    program = builder.build()
    dag = program.ir()
    assert {column for column, _ in dag.outputs} == {8, 9, 10, 11}
    assert 0 < dag.depth < program.cycles
    assert _recomputed_depth(dag) == dag.depth == program.depth
    refinement = refine_program_latency(program, DEFAULT_CONFIG)
    assert refinement.critical_path_time_s < refinement.sequential_time_s
    assert refinement.parallelism > 1.0
    assert refinement.cycles == program.cycles


def test_ir_and_kernel_are_memoized():
    builder = ProgramBuilder(SCRATCH)
    builder.store(builder.xor(0, 1), 8)
    program = builder.build(result_column=8)
    assert program.ir() is program.ir()
    assert program.fused_kernel() is program.fused_kernel()


# ------------------------------------------------- fused-vs-dispatch lockstep
def _ops_strategy():
    column = st.integers(0, COLUMNS - 1)
    nor = st.tuples(
        st.just("nor"), column,
        st.lists(column, min_size=1, max_size=3).map(tuple),
    )
    init = st.tuples(st.just("init"), column, st.booleans())
    return st.lists(st.one_of(nor, init), min_size=1, max_size=24)


def _build_program(raw_ops) -> Program:
    ops = [
        NorOp(dest, payload) if kind == "nor" else InitOp(dest, payload)
        for kind, dest, payload in raw_ops
    ]
    return Program(ops)


def _seeded_banks(seed):
    """Four identically seeded banks: (backend, strategy) -> bank."""
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, (COUNT, ROWS, COLUMNS)).astype(bool)
    banks = {}
    for backend in ("bool", "packed"):
        for strategy in ("dispatch", "fused"):
            bank = make_bank(backend, COUNT, ROWS, COLUMNS)
            for column in range(COLUMNS):
                bank.write_bool_column(column, bits[:, :, column])
            banks[backend, strategy] = bank
    return banks


@settings(max_examples=60, deadline=None)
@given(raw_ops=_ops_strategy(), seed=st.integers(0, 2 ** 31),
       xbars=st.lists(st.integers(0, COUNT - 1), unique=True, max_size=COUNT))
def test_fused_execution_bit_exact_with_dispatch(raw_ops, seed, xbars):
    """Random programs: fused == dispatch cells and wear, broadcast + masked."""
    program = _build_program(raw_ops)
    # Broadcast to every crossbar.
    banks = _seeded_banks(seed)
    for backend in ("bool", "packed"):
        program.execute(banks[backend, "dispatch"])
        program.run_fused(banks[backend, "fused"])
        assert_banks_equal(banks[backend, "dispatch"], banks[backend, "fused"])
    assert_banks_equal(banks["bool", "fused"], banks["packed", "fused"])
    # Masked execution at an arbitrary crossbar subset (the pruned path).
    banks = _seeded_banks(seed)
    idx = np.array(sorted(xbars), dtype=np.intp)
    for backend in ("bool", "packed"):
        program.execute_at(banks[backend, "dispatch"], idx)
        program.run_fused(banks[backend, "fused"], idx)
        assert_banks_equal(banks[backend, "dispatch"], banks[backend, "fused"])
    assert_banks_equal(banks["bool", "fused"], banks["packed", "fused"])


def test_builder_programs_only_write_outputs_identically():
    """A builder program leaves identical bits in its output columns and
    identical wear; scratch columns are not part of the contract, so the
    comparison goes through the declared outputs."""
    builder = ProgramBuilder(SCRATCH)
    predicate = builder.and_(builder.xor(0, 1), builder.or_(2, 3))
    builder.store(predicate, 8)
    program = builder.build(result_column=8)
    banks = _seeded_banks(17)
    for backend in ("bool", "packed"):
        program.execute(banks[backend, "dispatch"])
        program.run_fused(banks[backend, "fused"])
        for column in program.output_columns:
            assert np.array_equal(
                banks[backend, "dispatch"].read_column(column),
                banks[backend, "fused"].read_column(column),
            )
        assert np.array_equal(
            banks[backend, "dispatch"].writes_per_row,
            banks[backend, "fused"].writes_per_row,
        )


def test_executor_charges_identical_stats_for_both_strategies():
    """run_program / run_program_pruned: PimStats bit-identical either way."""
    builder = ProgramBuilder(SCRATCH)
    builder.store(builder.and_(builder.xor(0, 1), 2), 8)
    program = builder.build(result_column=8)
    candidates = np.array([True, False, True])
    for backend in ("bool", "packed"):
        stats = {}
        for strategy in ("dispatch", "fused"):
            config = DEFAULT_CONFIG.with_backend(backend).with_execution(strategy)
            executor = PimExecutor(config, PimStats())
            bank = _seeded_banks(23)[backend, strategy]
            executor.run_program(bank, program, pages=4.0, phase="filter")
            executor.run_program_pruned(
                bank, program, candidates, pages=4.0, phase="filter",
            )
            stats[strategy] = executor.stats
        assert_stats_identical(stats["dispatch"], stats["fused"])


# ----------------------------------------------------- engine-level parity
def _mini_relation(records: int = 640, seed: int = 7) -> Relation:
    rng = np.random.default_rng(seed)
    schema = Schema("mini", [
        int_attribute("key", 10, source="fact"),
        int_attribute("value", 8, source="fact"),
        dict_attribute("city", CITIES, source="dim"),
    ])
    return Relation(schema, {
        "key": np.sort(rng.integers(0, 1 << 10, records).astype(np.uint64)),
        "value": rng.integers(0, 1 << 8, records).astype(np.uint64),
        "city": rng.integers(0, len(CITIES), records).astype(np.uint64),
    })


MINI_QUERIES = (
    Query(
        "scalar",
        And((Comparison("key", "between", low=64, high=320),
             Comparison("city", "==", "OSLO"))),
        (Aggregate("sum", "value"), Aggregate("count"),
         Aggregate("min", "value")),
    ),
    Query(
        "grouped", Comparison("key", "<", 512),
        (Aggregate("sum", "value"), Aggregate("max", "value")),
        group_by=("city",),
    ),
)


@pytest.mark.parametrize("backend", ["packed", "bool"])
@pytest.mark.parametrize("pruning", [False, True])
@pytest.mark.parametrize("circuit", [True, False])
def test_engine_fused_matches_dispatch(backend, pruning, circuit):
    """Gate-level engines: identical rows and stats for the two strategies,
    with and without pruning, on both aggregation paths."""
    executions = {}
    for strategy in ("fused", "dispatch"):
        config = DEFAULT_CONFIG.with_backend(backend).with_execution(strategy)
        if not circuit:
            config = config.without_aggregation_circuit()
        stored = StoredRelation(
            _mini_relation(), PimModule(config), label="mini"
        )
        engine = PimQueryEngine(
            stored, config=config, vectorized=False, pruning=pruning
        )
        executions[strategy] = [engine.execute(q) for q in MINI_QUERIES]
    for fused, dispatch in zip(executions["fused"], executions["dispatch"]):
        assert fused.rows == dispatch.rows, fused.query.name
        assert fused.selectivity == dispatch.selectivity
        assert fused.max_writes_per_row == dispatch.max_writes_per_row
        assert_stats_identical(fused.stats, dispatch.stats)


def test_program_cache_reuses_fused_kernels():
    """Cache hits carry the compiled kernel along with the program."""
    cache = ProgramCache(capacity=32)
    config = DEFAULT_CONFIG.with_execution("fused")
    stored = StoredRelation(_mini_relation(), PimModule(config), label="mini")
    engine = PimQueryEngine(
        stored, config=config, compiler=cache, vectorized=False
    )
    assert cache.fused_kernels() == 0
    engine.execute(MINI_QUERIES[0])
    kernels_after_first = cache.fused_kernels()
    assert kernels_after_first > 0
    hits_before = cache.snapshot().hits
    engine.execute(MINI_QUERIES[0])
    assert cache.snapshot().hits > hits_before
    assert cache.fused_kernels() == kernels_after_first
