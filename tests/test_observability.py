"""Tests of the telemetry layer: tracer, metrics registry, explain, wear."""

import dataclasses
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DEFAULT_CONFIG
from repro.core.executor import PimQueryEngine
from repro.db.query import Aggregate, Comparison, Query
from repro.db.storage import StoredRelation
from repro.obs.metrics import (
    MetricsRegistry,
    add_stats,
    register_fields,
    sub_stats,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    SpanTracer,
    fold_trace_charges,
    tracer_from_config,
)
from repro.pim.module import PimModule
from repro.pim.stats import PimStats
from repro.planner.adaptive import AdaptiveSnapshot
from repro.planner.candidates import CandidateCacheStats
from repro.service import QueryService
from repro.service.stats import ServiceStats
from repro.ssb import ALL_QUERIES
from repro.ssb.prejoined import max_aggregated_width

FILTER_QUERY = Query(
    "filter", Comparison("region", "==", "ASIA"),
    (Aggregate("sum", "price"), Aggregate("count")),
)
GROUP_QUERY = Query(
    "gb", Comparison("year", ">=", 1995),
    (Aggregate("sum", "price"),), group_by=("region",),
)


def _store(relation, label="obs"):
    return StoredRelation(
        relation, PimModule(DEFAULT_CONFIG), label=label,
        aggregation_width=22, reserve_bulk_aggregation=False,
    )


# ------------------------------------------------------------------- tracer

def test_spans_nest_and_carry_attributes():
    tracer = SpanTracer(enabled=True)
    with tracer.span("root", label="x") as root:
        with tracer.span("child") as child:
            child.set(depth=1)
        assert tracer.current() is root
    trace = tracer.pop_trace()
    assert trace is root
    assert trace.attributes == {"label": "x"}
    assert [c.name for c in trace.children] == ["child"]
    assert trace.children[0].attributes == {"depth": 1}
    assert trace.wall_s >= trace.children[0].wall_s >= 0.0
    assert tracer.pop_trace() is None


def test_disabled_tracer_returns_the_shared_null_span():
    tracer = SpanTracer(enabled=False)
    span = tracer.span("anything", attr=1)
    assert span is NULL_SPAN
    with span as inner:
        inner.set(ignored=True)  # no-op, no error
    assert tracer.traces == []


def test_null_tracer_refuses_to_enable():
    with pytest.raises(ValueError):
        NULL_TRACER.enabled = True
    assert tracer_from_config(DEFAULT_CONFIG) is NULL_TRACER


def test_charges_attach_to_the_innermost_span():
    tracer = SpanTracer(enabled=True)
    stats = PimStats()
    tracer.bind(stats)
    with tracer.span("outer"):
        stats.add_time("a", 1.0)
        with tracer.span("inner"):
            stats.add_time("b", 2.0)
            stats.add_energy("e", 0.5)
        stats.add_time("a", 3.0)
    trace = tracer.pop_trace()
    outer_keys = [(c.kind, c.key) for c in trace.charges]
    inner = trace.children[0]
    assert outer_keys == [("time", "a"), ("time", "a")]
    assert [(c.kind, c.key) for c in inner.charges] == [
        ("time", "b"), ("energy", "e")
    ]
    folded = fold_trace_charges(trace)
    assert folded["time"] == dict(stats.time_by_phase)
    assert folded["energy"] == dict(stats.energy_by_component)


def test_unbound_stats_charge_without_a_hook():
    stats = PimStats()
    assert stats.trace_hook is None
    stats.add_time("a", 1.0)  # must not raise
    assert stats.time_by_phase["a"] == 1.0


def test_trace_jsonl_sink(tmp_path, toy_relation):
    sink = tmp_path / "trace.jsonl"
    service = QueryService(tracing=True, trace_sink=sink)
    service.register("toy", _store(toy_relation))
    service.execute(FILTER_QUERY)
    lines = sink.read_text().splitlines()
    assert len(lines) == 1
    record = json.loads(lines[0])
    assert record["name"] == "query"
    names = set()
    stack = [record]
    while stack:
        node = stack.pop()
        names.add(node["name"])
        stack.extend(node["children"])
    assert "plan" in names


# ------------------------------------------------- engine trace completeness

@pytest.mark.parametrize("query", [FILTER_QUERY, GROUP_QUERY])
def test_engine_trace_folds_bit_exact(toy_relation, query):
    tracer = SpanTracer(enabled=True)
    engine = PimQueryEngine(_store(toy_relation), tracer=tracer)
    execution = engine.execute(query)
    trace = tracer.pop_trace()
    folded = fold_trace_charges(trace)
    assert folded["time"] == dict(execution.stats.time_by_phase)
    assert folded["energy"] == dict(execution.stats.energy_by_component)
    # The subtree sum visits spans in tree order, not charge order, so it is
    # equal up to float re-association only.
    assert trace.subtree_time_s() == pytest.approx(
        execution.stats.total_time_s, rel=1e-12
    )


def test_service_trace_covers_dml(toy_relation):
    from repro.db.relation import Relation

    service = QueryService(tracing=True, trace_sink=None)
    relation = Relation(
        toy_relation.schema,
        {n: c.copy() for n, c in toy_relation.columns.items()},
    )
    service.register("toy", _store(relation))
    service.delete(Comparison("region", "==", "AFRICA"), relation="toy")
    trace = service.tracer.pop_trace()
    assert trace.name == "dml-delete"
    assert trace.attributes["deleted"] > 0
    assert trace.modelled_time_s > 0.0


# ------------------------------------------------------------------ explain

def test_explain_executes_once_and_renders(toy_relation):
    service = QueryService()  # tracing off by default
    service.register("toy", _store(toy_relation))
    result = service.explain(FILTER_QUERY)
    assert service.tracer.enabled is False
    assert service.tracer.traces == []
    text = result.render()
    assert "EXPLAIN ANALYZE" in text
    for name in ("query", "plan"):
        assert name in text
    assert f"{result.execution.time_s * 1e3:.6f}" in text


def test_explain_golden_stable_across_backends(ssb_prejoined):
    renders = {}
    for backend in ("packed", "bool"):
        config = DEFAULT_CONFIG.with_backend(backend)
        stored = StoredRelation(
            ssb_prejoined, PimModule(config), label=backend,
            aggregation_width=max_aggregated_width(ssb_prejoined),
            reserve_bulk_aggregation=False,
        )
        service = QueryService()
        service.register("ssb", stored, config=config, label="ssb")
        renders[backend] = [
            service.explain(ALL_QUERIES[name]).render()
            for name in ("Q1.1", "Q3.2")
        ]
    assert renders["packed"] == renders["bool"]


# --------------------------------------------------------------------- wear

def test_wear_report_renders_a_heatmap(toy_relation):
    from repro.db.relation import Relation

    service = QueryService()
    relation = Relation(
        toy_relation.schema,
        {n: c.copy() for n, c in toy_relation.columns.items()},
    )
    service.register("toy", _store(relation))
    # The initial bulk store does not count as endurance wear; DML and the
    # compaction rewrite do.
    service.delete(Comparison("region", "==", "AFRICA"), relation="toy")
    service.compact(relation="toy", force=True)
    report = service.wear_report()
    assert report.total_writes > 0
    text = report.heatmap()
    assert "writes/row" in text


# ----------------------------------------------------------------- registry

def test_registry_counters_gauges_histograms():
    registry = MetricsRegistry()
    registry.counter("reqs", 2, labels={"route": "pim"})
    registry.counter("reqs", 3, labels={"route": "pim"})
    registry.gauge("occupancy", 7)
    registry.gauge("occupancy", 9)
    registry.histogram("latency", [1.0, 2.0, 3.0])
    assert registry.value("reqs", labels={"route": "pim"}) == 5
    assert registry.value("occupancy") == 9
    assert registry.value("latency") == 3
    with pytest.raises(ValueError):
        registry.gauge("reqs", 1, labels={"route": "pim"})


def test_registry_renders_prometheus_and_json():
    registry = MetricsRegistry()
    registry.counter("hits", 4, labels={"cache": "program"}, help="cache hits")
    registry.histogram("lat", [2.0, 4.0])
    text = registry.render_prometheus()
    assert "# TYPE hits counter" in text
    assert 'hits{cache="program"} 4.0' in text
    assert "lat_count 2" in text
    record = json.loads(registry.render_json())
    names = {m["name"] for m in record["metrics"]}
    assert names == {"hits", "lat"}


def test_register_fields_splits_counters_and_gauges():
    registry = MetricsRegistry()
    stats = CandidateCacheStats(hits=3, misses=1, entries=5, capacity=8)
    register_fields(registry, stats, "cc", gauges=("entries", "capacity"))
    assert registry.value("cc_hits") == 3
    assert registry.value("cc_entries") == 5
    merged = registry.merge(registry)
    assert merged.value("cc_hits") == 6          # counters sum
    assert merged.value("cc_entries") == 10      # gauges roll up on merge


# ------------------------------------------------------ property: algebra

adaptive_snapshots = st.builds(
    AdaptiveSnapshot,
    observations=st.integers(0, 1000),
    rebuilds=st.integers(0, 50),
    pair_sketches=st.integers(0, 50),
    # Integer-valued floats keep the sum exactly associative; float
    # re-association is covered by the registry canonicalisation test.
    accumulated_error=st.integers(0, 100).map(float),
    hot_column=st.one_of(st.none(), st.sampled_from(["a", "b"])),
    hot_pair=st.one_of(st.none(), st.just(("a", "b"))),
)

candidate_stats = st.builds(
    CandidateCacheStats,
    hits=st.integers(0, 1000),
    misses=st.integers(0, 1000),
    revalidations=st.integers(0, 1000),
    stale_crossbars=st.integers(0, 1000),
    evictions=st.integers(0, 1000),
    entries_checked=st.integers(0, 10_000),
    entries=st.integers(0, 256),
    capacity=st.integers(1, 256),
)


@settings(max_examples=50, deadline=None)
@given(a=adaptive_snapshots, b=adaptive_snapshots, c=adaptive_snapshots)
def test_adaptive_snapshot_add_is_associative_with_identity(a, b, c):
    assert (a + b) + c == a + (b + c)
    zero = AdaptiveSnapshot()
    assert a + zero == a
    added = a + b
    assert added.observations == a.observations + b.observations
    expected_hot = a.hot_column if a.hot_column is not None else b.hot_column
    assert added.hot_column == expected_hot


@settings(max_examples=50, deadline=None)
@given(a=candidate_stats, b=candidate_stats)
def test_candidate_stats_delta_inverts_counter_growth(a, b):
    total = a + b
    for f in dataclasses.fields(CandidateCacheStats):
        assert getattr(total, f.name) == getattr(a, f.name) + getattr(b, f.name)
    delta = total - a
    # Counters return to b's values; occupancy/capacity stay point-in-time.
    assert delta.hits == b.hits and delta.misses == b.misses
    assert delta.entries == total.entries
    assert delta.capacity == total.capacity


@settings(max_examples=50, deadline=None)
@given(a=candidate_stats, b=candidate_stats)
def test_shared_algebra_matches_handwritten_semantics(a, b):
    assert add_stats(a, b) == a + b
    assert sub_stats(a, b, keep=("entries", "capacity")) == a - b
    with pytest.raises(TypeError):
        add_stats(a, AdaptiveSnapshot())


metric_updates = st.lists(
    st.tuples(
        st.sampled_from(["counter", "gauge", "histogram"]),
        st.sampled_from(["m1", "m2", "m3"]),
        st.floats(-100, 100, allow_nan=False),
    ),
    max_size=8,
)


def _registry(updates):
    registry = MetricsRegistry()
    for kind, name, value in updates:
        # Prefix by kind so one name never mixes kinds across registries.
        if kind == "histogram":
            registry.histogram(f"{kind}_{name}", [value])
        elif kind == "gauge":
            registry.gauge(f"{kind}_{name}", value)
        else:
            registry.counter(f"{kind}_{name}", value)
    return registry


def _canonical(registry):
    record = registry.to_json()
    for metric in record["metrics"]:
        if "value" in metric:
            metric["value"] = round(metric["value"], 9)
        for key in ("sum", "p50", "p95"):
            if key in metric:
                metric[key] = round(metric[key], 9)
    return record


@settings(max_examples=50, deadline=None)
@given(a=metric_updates, b=metric_updates, c=metric_updates)
def test_registry_merge_is_associative_commutative_with_identity(a, b, c):
    ra, rb, rc = _registry(a), _registry(b), _registry(c)
    left = ra.merge(rb).merge(rc)
    right = ra.merge(rb.merge(rc))
    assert _canonical(left) == _canonical(right)
    assert _canonical(ra.merge(rb)) == _canonical(rb.merge(ra))
    assert _canonical(ra.merge(MetricsRegistry())) == _canonical(ra)


# ------------------------------------------------------------ service stats

def test_service_stats_empty_batch_describes_and_exports():
    stats = ServiceStats.from_executions([], wall_time_s=0.0)
    assert stats.queries == 0
    text = stats.describe()
    assert "0 queries" in text
    assert len(stats.metrics()) > 0
    assert stats.render_prometheus().startswith("# TYPE")


def test_service_batch_exports_metrics(toy_relation):
    service = QueryService()
    service.register("toy", _store(toy_relation))
    batch = service.execute_batch([FILTER_QUERY, GROUP_QUERY])
    registry = batch.stats.metrics()
    assert registry.value("service_queries") == 2
    assert registry.value("program_cache_misses") > 0
    record = batch.stats.to_json()
    assert any(m["name"] == "planner_host_routed" for m in record["metrics"])
    assert "service_queries" in batch.stats.render_prometheus()
