"""Sharded scatter-gather execution: golden bit-exactness and merge laws.

The golden test runs *all 13 SSB queries* at K = 1, 2 and 4 shards and
requires the merged results to be identical to the unsharded engine and to
the NumPy reference evaluator.  The property-based tests lock in the merge
algebra: folding per-shard partial aggregates (SUM/COUNT/MIN/MAX, AVG
through its SUM/COUNT decomposition, empty shards included) must equal
aggregating the concatenated records — the invariant behind the PR 1
empty-MIN fix.
"""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DEFAULT_CONFIG
from repro.db.query import (
    Aggregate,
    And,
    BETWEEN,
    Comparison,
    IN,
    Query,
    evaluate_predicate,
    reference_group_aggregate,
)
from repro.db.relation import Relation
from repro.db.schema import Schema, int_attribute
from repro.db.storage import StoredRelation
from repro.host.aggregator import merge_shard_rows
from repro.pim.controller import PimExecutor
from repro.pim.module import PimModule
from repro.service import ProgramCache, QueryService
from repro.sharding import (
    ShardedQueryEngine,
    ShardedStoredRelation,
    shard_bounds,
)
from repro.ssb import ALL_QUERIES, QUERY_ORDER

SHARD_COUNTS = (1, 2, 4)


# ------------------------------------------------------------------ fixtures
@pytest.fixture(scope="module")
def sharded_engines(ssb_prejoined):
    """One scatter-gather engine per shard count, sharing nothing across K."""
    from repro.ssb.prejoined import max_aggregated_width

    width = max_aggregated_width(ssb_prejoined)
    engines = {}
    for shards in SHARD_COUNTS:
        module = PimModule(DEFAULT_CONFIG)
        sharded = ShardedStoredRelation(
            ssb_prejoined, module, shards=shards, label=f"ssb{shards}",
            aggregation_width=width, reserve_bulk_aggregation=False,
        )
        engines[shards] = ShardedQueryEngine(
            sharded, label=f"sharded{shards}", timing_scale=100.0,
            compiler=ProgramCache(256), vectorized=True,
        )
    return engines


# ------------------------------------------------------- golden bit-exactness
@pytest.mark.parametrize("query_name", QUERY_ORDER)
def test_all_ssb_queries_bit_exact_at_every_shard_count(
    sharded_engines, ssb_one_xb_engine, ssb_prejoined, query_name
):
    """All 13 SSB queries, K=1/2/4: identical to unsharded and reference."""
    query = ALL_QUERIES[query_name]
    reference = reference_group_aggregate(
        ssb_prejoined, evaluate_predicate(query.predicate, ssb_prejoined),
        query.group_by, query.aggregates,
    )
    unsharded_rows = ssb_one_xb_engine.execute(query).rows
    assert unsharded_rows == reference
    for shards, engine in sharded_engines.items():
        execution = engine.execute(query)
        assert execution.rows == reference, (shards, query_name)
        assert execution.rows == unsharded_rows, (shards, query_name)
        assert execution.time_s > 0 and execution.energy_j > 0
        assert len(execution.shard_executions) == shards


def test_latency_is_max_over_shards_plus_merge(sharded_engines):
    """The sharded latency model: max over the shards plus the gather term."""
    query = ALL_QUERIES["Q1.1"]
    for shards, engine in sharded_engines.items():
        execution = engine.execute(query)
        shard_total = sum(execution.shard_times_s)
        expected = max(execution.shard_times_s) + execution.merge_time_s
        assert execution.time_s == pytest.approx(expected, rel=1e-12)
        if shards > 1:
            assert execution.time_s < shard_total
            assert execution.parallel_speedup > 1.0


def test_programs_compile_once_across_shards(ssb_prejoined):
    """Shards share layouts, so the program cache compiles each program once."""
    from repro.ssb.prejoined import max_aggregated_width

    query = ALL_QUERIES["Q1.1"]
    misses = {}
    for shards in (1, 4):
        cache = ProgramCache(256)
        sharded = ShardedStoredRelation(
            ssb_prejoined, PimModule(DEFAULT_CONFIG), shards=shards,
            label=f"compile{shards}",
            aggregation_width=max_aggregated_width(ssb_prejoined),
            reserve_bulk_aggregation=False,
        )
        engine = ShardedQueryEngine(
            sharded, compiler=cache, vectorized=True, timing_scale=100.0
        )
        engine.execute(query)
        misses[shards] = cache.stats.misses
        for shard in sharded.shards[1:]:
            assert shard.layouts[0] is sharded.shards[0].layouts[0]
    assert misses[4] == misses[1]  # compile once, execute on every shard
    assert misses[4] > 0


def test_thread_pool_scatter_is_bit_exact(ssb_prejoined):
    """max_workers > 1 changes wall-clock only, never results or costs."""
    from repro.ssb.prejoined import max_aggregated_width

    width = max_aggregated_width(ssb_prejoined)
    engines = {}
    for workers in (1, 4):
        sharded = ShardedStoredRelation(
            ssb_prejoined, PimModule(DEFAULT_CONFIG), shards=4,
            label=f"workers{workers}", aggregation_width=width,
            reserve_bulk_aggregation=False,
        )
        engines[workers] = ShardedQueryEngine(
            sharded, compiler=ProgramCache(256), vectorized=True,
            timing_scale=100.0, max_workers=workers,
        )
    for name in ("Q1.1", "Q2.1", "Q3.1"):
        query = ALL_QUERIES[name]
        sequential = engines[1].execute(query)
        threaded = engines[4].execute(query)
        assert threaded.rows == sequential.rows
        assert threaded.time_s == pytest.approx(sequential.time_s, rel=1e-12)
        assert threaded.energy_j == pytest.approx(sequential.energy_j, rel=1e-12)
    # The lazily created scatter pool is reused across queries and released
    # by close(); a closed engine rebuilds it on the next execution.
    assert engines[4].pool._executor is not None
    engines[4].close()
    assert engines[4].pool._executor is None
    with engines[4] as engine:
        assert engine.execute(ALL_QUERIES["Q1.1"]).rows == \
            engines[1].execute(ALL_QUERIES["Q1.1"]).rows
    assert engines[4].pool._executor is None


# ----------------------------------------------------------- shard geometry
def test_shard_bounds_are_balanced_and_contiguous():
    for records in (1, 7, 100, 4001):
        for shards in (1, 2, 3, 4, 7):
            if shards > records:
                continue
            bounds = shard_bounds(records, shards)
            sizes = [stop - start for start, stop in bounds]
            assert bounds[0][0] == 0 and bounds[-1][1] == records
            assert all(a[1] == b[0] for a, b in zip(bounds, bounds[1:]))
            assert max(sizes) - min(sizes) <= 1
            assert min(sizes) >= 1
    with pytest.raises(ValueError, match="non-empty"):
        shard_bounds(3, 4)
    with pytest.raises(ValueError):
        shard_bounds(0, 1)
    with pytest.raises(ValueError):
        shard_bounds(10, 0)


def test_sharded_relation_views_share_ground_truth(toy_relation):
    relation = Relation(
        toy_relation.schema,
        {name: toy_relation.column(name).copy() for name in toy_relation.schema.names},
    )
    sharded = ShardedStoredRelation(
        relation, PimModule(DEFAULT_CONFIG), shards=4, label="views",
        aggregation_width=22, reserve_bulk_aggregation=False,
    )
    assert np.array_equal(sharded.decode_column("price"), relation.column("price"))
    assert sharded.shard_of_record(0) == 0
    assert sharded.shard_of_record(sharded.num_records - 1) == 3
    with pytest.raises(IndexError):
        sharded.shard_of_record(sharded.num_records)
    # The shard relations are views into the parent's columns.
    shard0 = sharded.shards[0].relation
    relation.column("price")[0] = np.uint64(123)
    assert int(shard0.column("price")[0]) == 123


def test_total_subgroups_covers_groups_split_across_shards():
    """Shard-disjoint groups: the merged subgroup count ≥ the result rows."""
    schema = Schema("split", [int_attribute("g", 2), int_attribute("v", 8)])
    relation = Relation(schema, {
        "g": np.array([0] * 50 + [1] * 50, dtype=np.uint64),   # one group per shard
        "v": np.arange(100, dtype=np.uint64) % 200,
    })
    sharded = ShardedStoredRelation(
        relation, PimModule(DEFAULT_CONFIG), shards=2, label="split",
    )
    engine = ShardedQueryEngine(sharded, vectorized=True)
    execution = engine.execute(
        Query("split", None, (Aggregate("count"),), group_by=("g",))
    )
    assert len(execution.rows) == 2
    assert all(e.total_subgroups == 1 for e in execution.shard_executions)
    assert execution.total_subgroups >= len(execution.rows)


def test_executor_count_must_match_shards(toy_relation):
    sharded = ShardedStoredRelation(
        toy_relation, PimModule(DEFAULT_CONFIG), shards=2, label="execs",
        aggregation_width=22, reserve_bulk_aggregation=False,
    )
    engine = ShardedQueryEngine(sharded, vectorized=True)
    query = Query("q", None, (Aggregate("count"),))
    with pytest.raises(ValueError, match="one executor per shard"):
        engine.execute(query, executor=[PimExecutor(DEFAULT_CONFIG)])
    executions = engine.execute(query, executor=engine.make_executors())
    assert executions.scalar("count") == len(toy_relation)


# ------------------------------------------------------- service integration
def test_service_register_sharded_routes_and_reports(toy_relation):
    service = QueryService()
    plain_store = StoredRelation(
        Relation(
            toy_relation.schema,
            {n: toy_relation.column(n).copy() for n in toy_relation.schema.names},
        ),
        PimModule(DEFAULT_CONFIG), label="plain",
        aggregation_width=22, reserve_bulk_aggregation=False,
    )
    # Serving scale: the cost planner keeps every shard on the PIM path
    # (per-shard host routing on toy-sized shards is covered separately).
    service.register("plain", plain_store, timing_scale=1024.0)
    engine = service.register_sharded(
        "sharded", toy_relation, shards=4, timing_scale=1024.0,
        aggregation_width=22, reserve_bulk_aggregation=False,
    )
    assert service.relations == ["plain", "sharded"]
    assert engine.num_shards == 4

    queries = [
        Query("scalar",
              And((Comparison("region", IN, values=("ASIA", "EUROPE")),
                   Comparison("year", BETWEEN, low=1993, high=1996))),
              (Aggregate("sum", "price"), Aggregate("count"),
               Aggregate("min", "price"))),
        Query("gb", Comparison("discount", ">=", 5),
              (Aggregate("sum", "price"), Aggregate("max", "price")),
              group_by=("city",)),
    ]
    for query in queries:
        plain = service.execute(query, relation="plain")
        sharded = service.execute(query, relation="sharded")
        assert sharded.rows == plain.rows

    result = service.execute_batch(queries, relation="sharded")
    stats = result.stats
    assert stats.sharded is not None
    assert stats.sharded.shards == 4
    assert stats.sharded.executions == len(queries)
    assert 0 < stats.sharded.shard_p50_s <= stats.sharded.shard_p95_s
    assert stats.sharded.parallel_speedup > 1.0
    assert stats.sharded.max_shard_writes_per_row > 0
    assert "parallel speedup" in stats.describe()
    # A batch against the unsharded relation reports no sharded section.
    plain_stats = service.execute_batch(queries, relation="plain").stats
    assert plain_stats.sharded is None
    with pytest.raises(ValueError, match="already registered"):
        service.register_sharded("sharded", toy_relation, shards=2)


def test_per_shard_host_routing_bit_exact_and_counted(toy_relation):
    """Small residual shards stream through the host; rows stay bit-exact."""
    routed = QueryService()
    reference = QueryService(planner=False)
    for service in (routed, reference):
        service.register_sharded(
            "sharded", toy_relation, shards=4,
            aggregation_width=22, reserve_bulk_aggregation=False,
        )
    query = Query(
        "broad", Comparison("discount", ">=", 0),
        (Aggregate("sum", "price"), Aggregate("count")),
    )
    execution = routed.execute(query)
    assert execution.rows == reference.execute(query).rows
    # A near-unselective scan over toy-sized shards routes to the host.
    assert execution.host_routed_shards > 0
    assert any(
        shard.label.endswith("/host-scan")
        for shard in execution.shard_executions
    )
    batch = routed.execute_batch([query])
    assert batch.stats.planner is not None
    assert batch.stats.planner.host_routed >= execution.host_routed_shards


# -------------------------------------------------- merge algebra (property)
AGGREGATES = (
    Aggregate("sum", "v"),
    Aggregate("count"),
    Aggregate("min", "v"),
    Aggregate("max", "v"),
)

shards_strategy = st.lists(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=3),      # group key
                  st.integers(min_value=0, max_value=(1 << 20) - 1)),  # value
        min_size=0, max_size=30,                               # empty shards!
    ),
    min_size=1, max_size=5,
)


def _relation_from(records):
    schema = Schema("part", [int_attribute("g", 2), int_attribute("v", 20)])
    groups = np.array([g for g, _ in records], dtype=np.uint64)
    values = np.array([v for _, v in records], dtype=np.uint64)
    return Relation(schema, {"g": groups, "v": values})


@settings(max_examples=60, deadline=None)
@given(shards=shards_strategy, group_by=st.booleans())
def test_merging_shard_partials_equals_concatenated_aggregation(shards, group_by):
    """merge(shard partials) == aggregate(concat(shards)), empty shards too."""
    group_columns = ("g",) if group_by else ()
    per_shard = []
    for records in shards:
        relation = _relation_from(records)
        per_shard.append(reference_group_aggregate(
            relation, np.ones(len(relation), dtype=bool),
            group_columns, AGGREGATES,
        ))
    merged = merge_shard_rows(per_shard, AGGREGATES)

    concatenated = _relation_from([r for shard in shards for r in shard])
    expected = reference_group_aggregate(
        concatenated, np.ones(len(concatenated), dtype=bool),
        group_columns, AGGREGATES,
    )
    assert merged == expected

    # AVG merges through its SUM/COUNT decomposition: the merged partials
    # reproduce the average of the concatenated records exactly.
    for key in expected:
        merged_avg = Fraction(merged[key]["sum_v"], merged[key]["count"])
        values = [v for shard in shards for g, v in shard
                  if not group_by or (g,) == key]
        assert merged_avg == Fraction(sum(values), len(values))


def test_merge_skips_absent_min_partials():
    """A shard-side None (empty min, the PR 1 fix) never poisons the merge."""
    first = {(1,): {"sum_v": 10, "count": 2, "min_v": None, "max_v": 7}}
    second = {(1,): {"sum_v": 5, "count": 1, "min_v": 3, "max_v": 3},
              (2,): {"sum_v": 1, "count": 1, "min_v": 1, "max_v": 1}}
    merged = merge_shard_rows([first, second], AGGREGATES)
    assert merged[(1,)]["min_v"] == 3          # not min(None-placeholder, 3)
    assert merged[(1,)]["sum_v"] == 15 and merged[(1,)]["count"] == 3
    assert merged[(2,)] == second[(2,)]
    assert merge_shard_rows([{}, {}], AGGREGATES) == {}


def test_merge_charges_the_gather_term():
    from repro.pim.stats import PimStats

    stats = PimStats()
    rows = {(0,): {"sum_v": 1, "count": 1, "min_v": 1, "max_v": 1}}
    merge_shard_rows([rows, rows], AGGREGATES,
                     config=DEFAULT_CONFIG.host, stats=stats)
    assert stats.time_by_phase["shard-merge"] > 0
