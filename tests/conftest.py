"""Shared fixtures for the test suite.

The expensive fixtures (a small generated SSB instance and the engines built
on it) are session-scoped so the integration tests pay for them once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG
from repro.db.relation import Relation
from repro.db.schema import Schema, dict_attribute, int_attribute
from repro.db.storage import StoredRelation
from repro.pim.module import PimModule


TOY_CITIES = [f"CITY{i}" for i in range(10)]
TOY_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]


def make_toy_relation(records: int = 4000, seed: int = 3) -> Relation:
    """A small relation exercising int and dictionary attributes."""
    rng = np.random.default_rng(seed)
    schema = Schema("toy", [
        int_attribute("key", 20, source="fact"),
        int_attribute("price", 22, source="fact"),
        int_attribute("discount", 4, source="fact"),
        int_attribute("quantity", 6, source="fact"),
        dict_attribute("city", TOY_CITIES, source="dim"),
        dict_attribute("region", TOY_REGIONS, source="dim"),
        int_attribute("year", 11, source="dim"),
    ])
    columns = {
        "key": np.arange(records, dtype=np.uint64),
        "price": rng.integers(0, 1 << 20, records).astype(np.uint64),
        "discount": rng.integers(0, 11, records).astype(np.uint64),
        "quantity": rng.integers(1, 51, records).astype(np.uint64),
        "city": rng.integers(0, len(TOY_CITIES), records).astype(np.uint64),
        "region": rng.integers(0, len(TOY_REGIONS), records).astype(np.uint64),
        "year": rng.integers(1992, 1999, records).astype(np.uint64),
    }
    return Relation(schema, columns)


@pytest.fixture(scope="session")
def toy_relation() -> Relation:
    return make_toy_relation()


@pytest.fixture()
def toy_relation_factory():
    """Build fresh (mutation-safe) toy relations, e.g. for UPDATE tests."""
    return make_toy_relation


@pytest.fixture()
def toy_stored(toy_relation):
    """The toy relation stored one-record-per-row in a fresh PIM module."""
    module = PimModule(DEFAULT_CONFIG)
    return StoredRelation(
        toy_relation, module, label="toy",
        aggregation_width=22, reserve_bulk_aggregation=True,
    )


@pytest.fixture(scope="session")
def ssb_dataset():
    """A tiny generated SSB instance (session-scoped)."""
    from repro.ssb import generate

    return generate(scale_factor=0.002, skew=0.5, seed=11)


@pytest.fixture(scope="session")
def ssb_prejoined(ssb_dataset):
    from repro.ssb import build_ssb_prejoined

    return build_ssb_prejoined(ssb_dataset.database)


@pytest.fixture(scope="session")
def ssb_one_xb_engine(ssb_prejoined):
    """A one-xb engine over the tiny SSB instance (session-scoped)."""
    from repro.core.executor import PimQueryEngine
    from repro.ssb.prejoined import max_aggregated_width

    module = PimModule(DEFAULT_CONFIG)
    stored = StoredRelation(
        ssb_prejoined, module, label="one_xb",
        aggregation_width=max_aggregated_width(ssb_prejoined),
        reserve_bulk_aggregation=False,
    )
    return PimQueryEngine(stored, label="one_xb", timing_scale=100.0)
