"""Quickstart: store a relation in bulk-bitwise PIM and run a query.

This example builds a small sales relation, stores it in the simulated RRAM
PIM module (one record per crossbar row), and executes a
select-from-where-group-by query entirely through the PIM engine: the WHERE
clause runs as NOR programs inside the memory arrays, the aggregation uses
the per-crossbar aggregation circuit, and the result is combined at the host.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro.config import DEFAULT_CONFIG
from repro.core.executor import PimQueryEngine
from repro.db.query import Aggregate, And, BETWEEN, Comparison, EQ, Query
from repro.db.relation import Relation
from repro.db.schema import Schema, dict_attribute, int_attribute
from repro.db.storage import StoredRelation
from repro.pim.module import PimModule


def build_sales_relation(records: int = 50_000, seed: int = 1) -> Relation:
    """A toy sales table: price, discount, quantity, region, year."""
    rng = np.random.default_rng(seed)
    regions = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
    schema = Schema("sales", [
        int_attribute("price", 24),
        int_attribute("discount", 4),
        int_attribute("quantity", 6),
        dict_attribute("region", regions),
        int_attribute("year", 11),
    ])
    return Relation(schema, {
        "price": rng.integers(1_000, 5_000_000, records).astype(np.uint64),
        "discount": rng.integers(0, 11, records).astype(np.uint64),
        "quantity": rng.integers(1, 51, records).astype(np.uint64),
        "region": rng.integers(0, len(regions), records).astype(np.uint64),
        "year": rng.integers(1992, 1999, records).astype(np.uint64),
    })


def main() -> None:
    relation = build_sales_relation()
    module = PimModule(DEFAULT_CONFIG)
    stored = StoredRelation(relation, module, label="sales",
                            aggregation_width=24, reserve_bulk_aggregation=False)
    engine = PimQueryEngine(stored, label="quickstart")

    query = Query(
        name="revenue_by_region",
        predicate=And((
            Comparison("year", EQ, 1995),
            Comparison("discount", BETWEEN, low=1, high=3),
            Comparison("quantity", "<", 25),
        )),
        aggregates=(Aggregate("sum", "price", alias="revenue"), Aggregate("count")),
        group_by=("region",),
    )
    execution = engine.execute(query)

    print(f"stored {stored.num_records} records on {stored.pages} huge page(s)")
    print(f"query selectivity: {execution.selectivity:.4f}")
    print(f"subgroups: {execution.total_subgroups} total, "
          f"{execution.pim_subgroups} aggregated in PIM")
    print(f"simulated latency: {execution.time_s * 1e3:.3f} ms, "
          f"PIM energy: {execution.energy_j * 1e3:.3f} mJ, "
          f"peak chip power: {execution.peak_chip_power_w:.2f} W")
    print("\nregion        revenue        count")
    for key, entry in sorted(execution.decoded_rows(relation.schema).items()):
        print(f"{key[0]:<12} {entry['revenue']:>12}  {entry['count']:>8}")

    # Cross-check against plain NumPy.
    from repro.db.query import evaluate_predicate

    mask = evaluate_predicate(query.predicate, relation)
    assert execution.rows and sum(
        entry["count"] for entry in execution.rows.values()
    ) == int(mask.sum())
    print("\nresult verified against the NumPy reference evaluator")


if __name__ == "__main__":
    main()
