"""Materialise a derived attribute with in-memory NOR arithmetic.

The SSB flight-1 queries aggregate ``lo_extendedprice * lo_discount``.  The
reproduction normally materialises that product when the pre-joined relation
is loaded, but the same result can be produced *inside* the memory arrays
with the shift-add multiplier built from NOR primitives
(:func:`repro.pim.arithmetic.build_multiply`) — every record of every
crossbar computes its product concurrently.

This example stores a slice of the SSB fact relation, runs the in-memory
multiplier, and checks the result against the host-computed column, also
reporting how many bulk-bitwise cycles the materialisation costs.

Run with::

    python examples/derived_attribute_in_memory.py
"""

import numpy as np

from repro.config import DEFAULT_CONFIG
from repro.db.relation import Relation
from repro.db.schema import Schema, int_attribute
from repro.db.storage import StoredRelation
from repro.pim.arithmetic import build_multiply
from repro.pim.controller import PimExecutor
from repro.pim.logic import ProgramBuilder
from repro.pim.module import PimModule
from repro.ssb import generate


def main() -> None:
    dataset = generate(scale_factor=0.002, skew=0.5)
    lineorder = dataset.lineorder
    schema = Schema("fact_slice", [
        int_attribute("lo_extendedprice", 24),
        int_attribute("lo_discount", 4),
        int_attribute("lo_revenue_discounted", 28),
    ])
    records = len(lineorder)
    relation = Relation(schema, {
        "lo_extendedprice": lineorder.column("lo_extendedprice"),
        "lo_discount": lineorder.column("lo_discount"),
        "lo_revenue_discounted": np.zeros(records, dtype=np.uint64),
    })

    module = PimModule(DEFAULT_CONFIG)
    stored = StoredRelation(relation, module, label="derived",
                            aggregation_width=28, reserve_bulk_aggregation=False)
    layout = stored.layouts[0]

    builder = ProgramBuilder(layout.scratch_columns)
    # The multiplier needs one dedicated scratch column per result bit; the
    # accumulator area is unused at this point and provides them.
    addend_columns = list(range(layout.accumulator_offset,
                                layout.accumulator_offset + 28))
    build_multiply(
        builder,
        layout.field_columns("lo_extendedprice"),
        layout.field_columns("lo_discount"),
        layout.field_columns("lo_revenue_discounted"),
        addend_columns,
    )
    program = builder.build()

    executor = PimExecutor(DEFAULT_CONFIG)
    executor.run_program(stored.allocations[0].bank, program,
                         pages=stored.pages, phase="derive")

    computed = stored.decode_column("lo_revenue_discounted")
    expected = lineorder.column("lo_extendedprice") * lineorder.column("lo_discount")
    assert np.array_equal(computed, expected)

    print(f"records processed          : {records}")
    print(f"multiplier program cycles  : {program.cycles}")
    print(f"simulated latency          : {executor.stats.total_time_s * 1e6:.1f} us "
          f"(all crossbars in parallel)")
    print(f"PIM energy                 : {executor.stats.total_energy_j * 1e3:.3f} mJ")
    print("verified: in-memory product equals the host-computed column")


if __name__ == "__main__":
    main()
