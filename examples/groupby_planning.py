"""Inspect the hybrid GROUP-BY planner's decision for an SSB query.

The paper's GROUP-BY technique (Section IV) samples one 2 MB page, estimates
the size of every candidate subgroup, and then chooses how many subgroups
``k`` to aggregate with PIM by minimising the Eq. (3) cost model.  This
example exposes that decision: it prints the sampled subgroup sizes, the
fitted latency-model tables, the predicted cost of the all-host / all-PIM /
chosen plans, and finally runs the query to show the measured outcome.

Run with::

    python examples/groupby_planning.py [query] [scale_factor]
"""

import sys

from repro.config import DEFAULT_CONFIG
from repro.core.executor import PimQueryEngine
from repro.db.storage import StoredRelation
from repro.pim.module import PimModule
from repro.ssb import ALL_QUERIES, build_ssb_prejoined, generate
from repro.ssb.datagen import LINEORDERS_PER_SF
from repro.ssb.prejoined import max_aggregated_width


def main(query_name: str = "Q3.2", scale_factor: float = 0.01) -> None:
    dataset = generate(scale_factor=scale_factor, skew=0.5)
    prejoined = build_ssb_prejoined(dataset.database)
    timing_scale = LINEORDERS_PER_SF * 10.0 / len(prejoined)
    module = PimModule(DEFAULT_CONFIG)
    stored = StoredRelation(prejoined, module, label="ssb",
                            aggregation_width=max_aggregated_width(prejoined),
                            reserve_bulk_aggregation=False)
    engine = PimQueryEngine(stored, label="one_xb", timing_scale=timing_scale)

    query = ALL_QUERIES[query_name]
    print(f"query {query_name}: group by {query.group_by}, "
          f"aggregating {query.aggregate_attributes}")

    print("\npim-gb latency model (Eq. 2 lookup tables):")
    for n, slope in sorted(engine.cost_model.pim.slope_table.items()):
        intercept = engine.cost_model.pim.intercept_table[n]
        print(f"  n={n}: slope={slope * 1e6:.3f} us/page, T0={intercept * 1e6:.1f} us")
    print("host-gb latency model (Eq. 1 lookup tables):")
    for s in sorted(engine.cost_model.host.a):
        print(f"  s={s}: a={engine.cost_model.host.a[s] * 1e6:.3f} us/page, "
              f"b={engine.cost_model.host.b[s] * 1e6:.3f} us/page")

    execution = engine.execute(query)
    plan = execution.plan
    estimate = plan.estimate
    print(f"\nsampled one 2MB page: {estimate.sample_selected} of "
          f"{estimate.sample_size} records passed the filter "
          f"(estimated selectivity {estimate.selectivity:.2e})")
    print(f"candidate subgroups: {plan.total_subgroups} "
          f"({estimate.observed_subgroups} observed in the sample)")
    largest = estimate.ordered_groups[:5]
    print("largest estimated subgroups (fraction of selected records):")
    for key in largest:
        print(f"  {key}: {estimate.group_fractions.get(key, 0.0):.3f}")

    print(f"\npredicted all-host latency : {plan.predicted_host_only_s * 1e3:.2f} ms")
    print(f"predicted all-PIM latency  : {plan.predicted_pim_only_s * 1e3:.2f} ms")
    print(f"chosen k = {plan.k} -> predicted {plan.predicted_time_s * 1e3:.2f} ms")
    print(f"measured latency           : {execution.time_s * 1e3:.2f} ms "
          f"({len(execution.rows)} result groups)")


if __name__ == "__main__":
    query = sys.argv[1] if len(sys.argv) > 1 else "Q3.2"
    sf = float(sys.argv[2]) if len(sys.argv) > 2 else 0.01
    main(query, sf)
