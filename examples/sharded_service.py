"""Sharded serving: scatter-gather across PIM modules.

This example splits a sales relation into K=4 horizontal shards, registers
it with a :class:`~repro.service.service.QueryService` via
``register_sharded``, and serves the same workload against the sharded and
an unsharded registration.  It demonstrates the three sharding guarantees:

* **bit-exact** — scatter-gather results equal the unsharded engine's;
* **compile once** — shards share row layouts, so the service's program
  cache compiles each predicate once and replays it on every shard;
* **max-over-shards latency** — the modelled latency of a sharded query is
  the slowest shard plus a small merge term, never the sum of the shards.

Run with::

    python examples/sharded_service.py
"""

import numpy as np

from repro.db.query import Aggregate, And, BETWEEN, Comparison, EQ, IN, Query
from repro.db.relation import Relation
from repro.db.schema import Schema, dict_attribute, int_attribute
from repro.service import QueryService
from repro.sharding import execute_sharded_update

SHARDS = 4


def build_sales_relation(records: int = 60_000, seed: int = 11) -> Relation:
    """A toy sales table: price, discount, quantity, region, year."""
    rng = np.random.default_rng(seed)
    regions = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
    schema = Schema("sales", [
        int_attribute("price", 24),
        int_attribute("discount", 4),
        int_attribute("quantity", 6),
        dict_attribute("region", regions),
        int_attribute("year", 11),
    ])
    return Relation(schema, {
        "price": rng.integers(1_000, 5_000_000, records).astype(np.uint64),
        "discount": rng.integers(0, 11, records).astype(np.uint64),
        "quantity": rng.integers(1, 51, records).astype(np.uint64),
        "region": rng.integers(0, len(regions), records).astype(np.uint64),
        "year": rng.integers(1992, 1999, records).astype(np.uint64),
    })


def build_workload() -> list:
    """Scalar aggregates and GROUP-BYs, with the repeats of a serving loop."""
    summer = Query(
        "revenue_1995",
        And((Comparison("year", EQ, 1995),
             Comparison("discount", BETWEEN, low=1, high=3))),
        (Aggregate("sum", "price", alias="revenue"), Aggregate("count")),
    )
    by_region = Query(
        "revenue_by_region",
        Comparison("quantity", "<", 25),
        (Aggregate("sum", "price", alias="revenue"),
         Aggregate("min", "price"), Aggregate("max", "price")),
        group_by=("region",),
    )
    asia_by_year = Query(
        "asia_by_year",
        Comparison("region", IN, values=("ASIA", "EUROPE")),
        (Aggregate("sum", "price", alias="revenue"), Aggregate("count")),
        group_by=("year",),
    )
    return [summer, by_region, asia_by_year, summer, by_region]


def main() -> None:
    relation = build_sales_relation()
    # Two independent copies of the data: one served unsharded, one sharded.
    unsharded_copy = Relation(
        relation.schema,
        {name: relation.column(name).copy() for name in relation.schema.names},
    )

    service = QueryService(cache_capacity=256)
    service.register_sharded(
        "sales", relation, shards=SHARDS,
        aggregation_width=24, reserve_bulk_aggregation=False,
        max_workers=SHARDS,          # scatter on a thread pool
    )
    from repro.config import DEFAULT_CONFIG
    from repro.db.storage import StoredRelation
    from repro.pim.module import PimModule

    service.register(
        "sales_unsharded",
        StoredRelation(unsharded_copy, PimModule(DEFAULT_CONFIG),
                       label="sales_unsharded", aggregation_width=24,
                       reserve_bulk_aggregation=False),
    )

    workload = build_workload()
    sharded = service.execute_batch(workload, relation="sales")
    unsharded = service.execute_batch(workload, relation="sales_unsharded")

    print(f"batch of {len(workload)} queries against {len(relation)} records "
          f"in {SHARDS} shards")
    print("\nsharded batch:")
    print(sharded.stats.describe())

    print("\nper-query modelled latency, sharded vs unsharded:")
    for s, u in zip(sharded, unsharded):
        slowest = max(s.shard_times_s)
        print(f"  {s.query.name:<20} K={s.shards}: {s.time_s * 1e3:8.3f} ms "
              f"(slowest shard {slowest * 1e3:8.3f} ms, merge "
              f"{s.merge_time_s * 1e9:6.1f} ns) vs unsharded "
              f"{u.time_s * 1e3:8.3f} ms")

    # --- verification ------------------------------------------------------
    # 1. Scatter-gather results are bit-exact with the unsharded engine.
    for s, u in zip(sharded, unsharded):
        assert s.rows == u.rows
    # 2. The sharded latency model is max-over-shards + merge, not the sum.
    for s in sharded:
        assert abs(s.time_s - (max(s.shard_times_s) + s.merge_time_s)) < 1e-15
        assert s.time_s < sum(s.shard_times_s)
    # 3. An UPDATE broadcast through the shards stays consistent everywhere.
    engine = service.engine("sales")
    update = execute_sharded_update(
        engine.sharded, Comparison("region", EQ, "EUROPE"), {"region": "ASIA"}
    )
    euro = relation.schema.attribute("region").encode_value("EUROPE")
    assert update.records_updated > 0
    assert int((relation.column("region") == np.uint64(euro)).sum()) == 0
    assert np.array_equal(
        engine.sharded.decode_column("region"), relation.column("region")
    )
    print(f"\nupdate touched {update.shards_with_matches}/{SHARDS} shards "
          f"({update.records_updated} records)")
    print("sharded results verified against the unsharded engine")


if __name__ == "__main__":
    main()
