"""UPDATE a pre-joined relation in memory with Algorithm 1.

Pre-joined relations duplicate dimension data: when a customer moves to a new
city, every one of their lineorders carries the stale value.  Section III of
the paper argues this maintenance cost is small in bulk-bitwise PIM because
the update runs entirely inside the memory: a PIM filter selects the affected
records, and the in-memory multiplexer of Algorithm 1 overwrites the
attribute — the host never reads a single record.

Run with::

    python examples/update_in_place.py
"""

from repro.config import DEFAULT_CONFIG
from repro.db.query import And, Comparison, EQ
from repro.db.storage import StoredRelation
from repro.db.update import execute_update
from repro.pim.controller import PimExecutor
from repro.pim.module import PimModule
from repro.ssb import build_ssb_prejoined, generate
from repro.ssb.prejoined import max_aggregated_width


def main() -> None:
    dataset = generate(scale_factor=0.005, skew=0.5)
    prejoined = build_ssb_prejoined(dataset.database)
    module = PimModule(DEFAULT_CONFIG)
    stored = StoredRelation(prejoined, module, label="ssb",
                            aggregation_width=max_aggregated_width(prejoined),
                            reserve_bulk_aggregation=False)
    executor = PimExecutor(DEFAULT_CONFIG)

    customer_key = int(prejoined.column("lo_custkey")[0])
    old_city = prejoined.schema.attribute("c_city").decode_value(
        int(prejoined.column("c_city")[0])
    )
    print(f"customer {customer_key} currently listed in city {old_city!r}")
    print("moving the customer to 'UNITED KI1' with an in-memory UPDATE ...")

    result = execute_update(
        stored,
        And((Comparison("lo_custkey", EQ, customer_key),)),
        {"c_city": "UNITED KI1"},
        executor,
    )

    print(f"records rewritten in place : {result.records_updated}")
    print(f"filter program cycles      : {result.filter_cycles}")
    print(f"Algorithm-1 update cycles  : {result.update_cycles}")
    print(f"host cache lines read      : {executor.stats.host_lines_read} "
          f"(the update moves no records to the host)")
    print(f"simulated latency          : {executor.stats.total_time_s * 1e6:.1f} us")

    # Every duplicated copy of the customer's city now holds the new value.
    mask = stored.relation.column("lo_custkey") == customer_key
    decoded = stored.decode_column("c_city")[mask]
    new_code = prejoined.schema.attribute("c_city").encode_value("UNITED KI1")
    assert (decoded == new_code).all()
    print("verified: every duplicated dimension value was rewritten")


if __name__ == "__main__":
    main()
