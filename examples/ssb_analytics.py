"""Run Star Schema Benchmark queries on the PIM engine and the baselines.

This example generates a laptop-sized SSB instance, stores the pre-joined
relation in the PIM module, and executes a selection of the benchmark's
queries on three configurations:

* ``one_xb``   — the paper's system (aggregation circuit, one row per record),
* ``pimdb``    — the PIMDB baseline (pure bulk-bitwise aggregation),
* ``mnt_join`` — the columnar (MonetDB-like) baseline on the same pre-joined
  relation.

Latency, energy and the GROUP-BY planning decision are reported for a
relation extrapolated to the paper's SF=10 size.

Run with::

    python examples/ssb_analytics.py [scale_factor]
"""

import sys

from repro.baselines import build_pimdb_engine
from repro.columnar import ColumnarEngine
from repro.config import DEFAULT_CONFIG
from repro.core.executor import PimQueryEngine
from repro.db.storage import StoredRelation
from repro.pim.module import PimModule
from repro.ssb import ALL_QUERIES, build_ssb_prejoined, generate
from repro.ssb.datagen import LINEORDERS_PER_SF
from repro.ssb.prejoined import DERIVED_ATTRIBUTES, max_aggregated_width

QUERIES = ("Q1.1", "Q2.3", "Q3.1", "Q4.1")


def main(scale_factor: float = 0.01) -> None:
    print(f"generating SSB at scale factor {scale_factor} ...")
    dataset = generate(scale_factor=scale_factor, skew=0.5)
    prejoined = build_ssb_prejoined(dataset.database)
    timing_scale = LINEORDERS_PER_SF * 10.0 / len(prejoined)
    print(f"{len(prejoined)} fact records; timing extrapolated x{timing_scale:.0f} "
          f"to the paper's SF=10")

    module = PimModule(DEFAULT_CONFIG)
    stored = StoredRelation(prejoined, module, label="ssb",
                            aggregation_width=max_aggregated_width(prejoined),
                            reserve_bulk_aggregation=False)
    one_xb = PimQueryEngine(stored, label="one_xb", timing_scale=timing_scale)
    pimdb, _ = build_pimdb_engine(prejoined,
                                  aggregation_width=max_aggregated_width(prejoined),
                                  timing_scale=timing_scale)
    columnar = ColumnarEngine(DEFAULT_CONFIG, derived=DERIVED_ATTRIBUTES,
                              workload_scale=timing_scale)

    header = f"{'query':6s} {'config':9s} {'time [ms]':>10s} {'energy [mJ]':>12s} {'k (PIM groups)':>15s}"
    print("\n" + header)
    print("-" * len(header))
    for name in QUERIES:
        query = ALL_QUERIES[name]
        executions = {
            "one_xb": one_xb.execute(query),
            "pimdb": pimdb.execute(query),
        }
        mnt = columnar.execute_prejoined(query, prejoined)
        for label, execution in executions.items():
            print(f"{name:6s} {label:9s} {execution.time_s * 1e3:10.2f} "
                  f"{execution.energy_j * 1e3:12.2f} {execution.pim_subgroups:15d}")
        print(f"{name:6s} {'mnt_join':9s} {mnt.time_s * 1e3:10.2f} {'-':>12s} {'-':>15s}")
        # All three agree on the answer.
        assert executions["one_xb"].rows == executions["pimdb"].rows == mnt.rows
        print()
    print("all configurations returned identical result rows")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.01)
