"""Trace an SSB query end to end: spans, EXPLAIN ANALYZE, metrics, wear.

The telemetry layer attributes every modelled :class:`~repro.pim.stats.PimStats`
charge to the engine stage that incurred it.  This example

* runs a tiny SSB workload through a tracing-enabled
  :class:`~repro.service.service.QueryService`, writing each query's span
  tree to a JSONL sink,
* verifies the trace-completeness contract — re-folding one trace's charge
  events reproduces the execution's ``time_by_phase`` bit-for-bit,
* prints ``EXPLAIN ANALYZE`` for a GROUP-BY query,
* renders the batch metrics in Prometheus text format and the per-crossbar
  wear heatmap.

Run with::

    python examples/trace_query.py [trace.jsonl]

The sink path may also come from the ``REPRO_TRACE`` environment variable
(which enables tracing service-wide without code changes).
"""

import json
import sys
import tempfile

from repro.config import DEFAULT_CONFIG
from repro.db.storage import StoredRelation
from repro.obs.trace import fold_trace_charges
from repro.pim.module import PimModule
from repro.service import QueryService
from repro.ssb import ALL_QUERIES, build_ssb_prejoined, generate
from repro.ssb.prejoined import max_aggregated_width


def main() -> None:
    sink = sys.argv[1] if len(sys.argv) > 1 else (
        tempfile.NamedTemporaryFile(
            suffix=".jsonl", prefix="repro_trace_", delete=False
        ).name
    )
    dataset = generate(scale_factor=0.002, skew=0.5)
    prejoined = build_ssb_prejoined(dataset.database)
    stored = StoredRelation(
        prejoined, PimModule(DEFAULT_CONFIG), label="ssb",
        aggregation_width=max_aggregated_width(prejoined),
        reserve_bulk_aggregation=False,
    )
    service = QueryService(tracing=True, trace_sink=sink)
    service.register("ssb", stored)

    # --- traced replay -----------------------------------------------------
    workload = ["Q1.1", "Q2.1", "Q3.2", "Q4.1"]
    executions = {name: service.execute(ALL_QUERIES[name]) for name in workload}

    # Trace completeness: the last query's charge events fold back into the
    # execution's own per-phase accounting, bit for bit.
    last = workload[-1]
    trace = service.tracer.traces[-1]
    folded = fold_trace_charges(trace)
    assert folded["time"] == dict(executions[last].stats.time_by_phase)
    assert folded["energy"] == dict(executions[last].stats.energy_by_component)
    print(f"verified: trace of {last} reproduces its modelled stats bit-exact")
    with open(sink) as handle:
        lines = handle.readlines()
    assert len(lines) == len(workload)
    spans = sum(
        1 for line in lines for _ in _walk(json.loads(line))
    )
    print(f"verified: {len(lines)} JSONL traces ({spans} spans) in {sink}")

    # --- EXPLAIN ANALYZE ---------------------------------------------------
    print()
    print(service.explain(ALL_QUERIES["Q3.2"]).render())

    # --- metrics + wear ----------------------------------------------------
    batch = service.execute_batch([ALL_QUERIES[name] for name in workload])
    print()
    print(batch.stats.render_prometheus().rstrip())
    print()
    print(service.wear_report().heatmap())


def _walk(node):
    yield node
    for child in node["children"]:
        yield from _walk(child)


if __name__ == "__main__":
    main()
