"""Batched query serving: the QueryService API.

This example stores a sales relation in the simulated PIM module, registers
it with a :class:`~repro.service.service.QueryService`, and serves a mixed
batch of analytical queries twice.  The service shares one compiled-program
cache across the batch (the second replay compiles nothing) and uses the
vectorized host paths, which are bit-exact with the gate-level NOR
simulation — the example verifies both against a plain sequential engine.

Run with::

    python examples/service_batch.py
"""

import numpy as np

from repro.config import DEFAULT_CONFIG
from repro.core.executor import PimQueryEngine
from repro.db.query import Aggregate, And, BETWEEN, Comparison, EQ, IN, Query
from repro.db.relation import Relation
from repro.db.schema import Schema, dict_attribute, int_attribute
from repro.db.storage import StoredRelation
from repro.pim.module import PimModule
from repro.service import QueryService


def build_sales_relation(records: int = 50_000, seed: int = 7) -> Relation:
    """A toy sales table: price, discount, quantity, region, year."""
    rng = np.random.default_rng(seed)
    regions = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
    schema = Schema("sales", [
        int_attribute("price", 24),
        int_attribute("discount", 4),
        int_attribute("quantity", 6),
        dict_attribute("region", regions),
        int_attribute("year", 11),
    ])
    return Relation(schema, {
        "price": rng.integers(1_000, 5_000_000, records).astype(np.uint64),
        "discount": rng.integers(0, 11, records).astype(np.uint64),
        "quantity": rng.integers(1, 51, records).astype(np.uint64),
        "region": rng.integers(0, len(regions), records).astype(np.uint64),
        "year": rng.integers(1992, 1999, records).astype(np.uint64),
    })


def build_workload() -> list:
    """A mixed batch: scalar aggregates and GROUP-BYs, with repeats."""
    summer = Query(
        "revenue_1995",
        And((Comparison("year", EQ, 1995),
             Comparison("discount", BETWEEN, low=1, high=3))),
        (Aggregate("sum", "price", alias="revenue"), Aggregate("count")),
    )
    by_region = Query(
        "revenue_by_region",
        And((Comparison("year", BETWEEN, low=1994, high=1996),
             Comparison("quantity", "<", 25))),
        (Aggregate("sum", "price", alias="revenue"),
         Aggregate("min", "price"), Aggregate("max", "price")),
        group_by=("region",),
    )
    asia_by_year = Query(
        "asia_by_year",
        Comparison("region", IN, values=("ASIA", "EUROPE")),
        (Aggregate("sum", "price", alias="revenue"), Aggregate("count")),
        group_by=("year",),
    )
    # Repeats within the batch are what a serving workload looks like —
    # and what the program cache exploits.
    return [summer, by_region, asia_by_year, summer, by_region]


def main() -> None:
    relation = build_sales_relation()
    module = PimModule(DEFAULT_CONFIG)
    stored = StoredRelation(relation, module, label="sales",
                            aggregation_width=24, reserve_bulk_aggregation=False)

    # --- the service API ---------------------------------------------------
    # One service, any number of registered relations; engines share the
    # service's program cache and run the vectorized host paths.
    service = QueryService(cache_capacity=256)
    service.register("sales", stored)

    workload = build_workload()
    first = service.execute_batch(workload)           # cold cache
    second = service.execute_batch(workload)          # warm cache

    print(f"batch of {len(workload)} queries against "
          f"{stored.num_records} stored records")
    print("\nfirst replay (cold cache):")
    print(first.stats.describe())
    print("\nsecond replay (warm cache):")
    print(second.stats.describe())
    assert second.stats.cache.misses == 0 and second.stats.cache.hits > 0

    print("\nper-query modelled latency (warm replay):")
    for execution in second:
        print(f"  {execution.query.name:<20} {execution.time_s * 1e3:8.3f} ms  "
              f"{len(execution.rows)} row(s)")

    # --- verification ------------------------------------------------------
    # The service must be bit-exact with sequential gate-level execution.
    sequential = PimQueryEngine(stored, label="sequential")
    for execution, query in zip(second, workload):
        assert execution.rows == sequential.execute(query).rows
    print("\nbatch results verified against the sequential gate-level engine")


if __name__ == "__main__":
    main()
