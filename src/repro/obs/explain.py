"""EXPLAIN ANALYZE rendering of one traced execution.

:meth:`repro.service.service.QueryService.explain` executes a query exactly
once with its tracer force-enabled and wraps the resulting span tree in an
:class:`ExplainResult`.  The default rendering shows only *modelled*
quantities — per-stage modelled time, pruning and routing decisions, cache
deltas and the adaptive feedback — which are bit-identical across the
simulation backends and execution strategies, so the output is stable
enough to golden-test.  Wall-clock times (simulator speed, host-dependent)
are opt-in via ``render(wall=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.trace import SpanRecord


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_format_value(v) for v in value) + "]"
    return str(value)


def _format_attributes(span: SpanRecord) -> str:
    if not span.attributes:
        return ""
    parts = [
        f"{key}={_format_value(value)}"
        for key, value in span.attributes.items()
    ]
    return " " + " ".join(parts)


@dataclass
class ExplainResult:
    """The execution and span tree of one ``EXPLAIN ANALYZE`` run."""

    relation: str
    execution: object  # QueryExecution (kept untyped to stay import-light)
    trace: SpanRecord | None

    @property
    def rows(self):
        """The executed query's (bit-exact) result rows."""
        return self.execution.rows

    def render(self, wall: bool = False) -> str:
        """The span tree with per-stage modelled time and decisions.

        ``wall`` appends each span's wall-clock time — excluded by default
        so the output depends only on the modelled execution (identical
        across backends).
        """
        execution = self.execution
        header = (
            f"EXPLAIN ANALYZE relation={self.relation} "
            f"label={execution.label}\n"
            f"modelled {execution.stats.total_time_s * 1e3:.6f} ms, "
            f"{execution.stats.total_energy_j * 1e3:.6f} mJ, "
            f"selectivity {execution.selectivity:.6g}, "
            f"{len(execution.rows)} result rows"
        )
        if self.trace is None:
            return header + "\n(no trace captured)"
        lines = [header, self._span_line(self.trace, wall)]
        self._render_children(self.trace, lines, prefix="", wall=wall)
        return "\n".join(lines)

    @staticmethod
    def _span_line(span: SpanRecord, wall: bool) -> str:
        timing = f" [{span.modelled_time_s * 1e3:.6f} ms]"
        if wall:
            timing += f" (wall {span.wall_s * 1e3:.3f} ms)"
        return f"{span.name}{timing}{_format_attributes(span)}"

    def _render_children(
        self, span: SpanRecord, lines: list[str], prefix: str, wall: bool
    ) -> None:
        for index, child in enumerate(span.children):
            last = index == len(span.children) - 1
            connector = "`- " if last else "|- "
            lines.append(f"{prefix}{connector}{self._span_line(child, wall)}")
            self._render_children(
                child, lines, prefix + ("   " if last else "|  "), wall
            )
