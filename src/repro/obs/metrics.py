"""Metrics registry and the shared snapshot/delta algebra of the stats classes.

Before this module every stats dataclass in the stack (`CacheStats`,
`CandidateCacheStats`, `AdaptiveSnapshot`, ...) hand-rolled its own
``__add__``/``__sub__``; :func:`add_stats`/:func:`sub_stats` are the one
definition of that algebra — numeric fields combine, ``keep`` fields carry
the left operand's point-in-time value (occupancy, capacity), and
non-numeric fields resolve first-non-``None``.

:class:`MetricsRegistry` is the export surface: counters, gauges and
histograms with label sets, rendered as JSON or Prometheus-style text
exposition.  ``merge()`` is associative and commutative with the empty
registry as identity (counters and gauges sum, histograms concatenate
their observations) so per-relation or per-shard registries roll up in any
order — ``tests/test_observability.py`` property-tests exactly that.
"""

from __future__ import annotations

import dataclasses
import json
import operator
from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping

#: A normalised label set: sorted ``(name, value)`` pairs.
LabelSet = tuple[tuple[str, str], ...]


# ---------------------------------------------------------------------------
# dataclass snapshot/delta algebra
# ---------------------------------------------------------------------------

def _combine(a, b, op, keep: tuple[str, ...]):
    if type(a) is not type(b):
        raise TypeError(
            f"cannot combine {type(a).__name__} with {type(b).__name__}"
        )
    values = {}
    for f in dataclasses.fields(a):
        left = getattr(a, f.name)
        right = getattr(b, f.name)
        if f.name in keep:
            values[f.name] = left if left is not None else right
        elif (
            isinstance(left, (int, float))
            and isinstance(right, (int, float))
            and not isinstance(left, bool)
        ):
            values[f.name] = op(left, right)
        else:
            values[f.name] = left if left is not None else right
    return type(a)(**values)


def add_stats(a, b, keep: tuple[str, ...] = ()):
    """Field-wise sum of two stats dataclasses of the same type.

    Numeric fields add; ``keep`` fields (and non-numeric ones) take the
    first non-``None`` operand — the roll-up semantics every stats class in
    the stack shares.
    """
    return _combine(a, b, operator.add, keep)


def sub_stats(a, b, keep: tuple[str, ...] = ()):
    """Field-wise delta ``a - b``, preserving ``a``'s ``keep`` fields.

    The delta of two snapshots of one object subtracts the counters but
    keeps the *later* snapshot's point-in-time fields (occupancy,
    capacity) — deltas of those would be meaningless.
    """
    return _combine(a, b, operator.sub, keep)


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------

def _labels(labels: Mapping[str, object] | None) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


@dataclass
class _Metric:
    """One named/labelled series: a scalar or a list of observations."""

    kind: str  # "counter" | "gauge" | "histogram"
    value: float = 0.0
    observations: list[float] = field(default_factory=list)
    help: str = ""


class MetricsRegistry:
    """Counters, gauges and histograms with label sets.

    Counters accumulate (``counter()`` adds), gauges record the last value
    set, histograms collect raw observations and render as
    count/sum/quantile summaries.  All three are keyed by
    ``(name, labels)``; re-using a name with a different kind raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelSet], _Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def _entry(
        self, kind: str, name: str, labels: Mapping[str, object] | None, help: str
    ) -> _Metric:
        key = (name, _labels(labels))
        entry = self._metrics.get(key)
        if entry is None:
            entry = _Metric(kind=kind, help=help)
            self._metrics[key] = entry
        elif entry.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {entry.kind}, not a {kind}"
            )
        if help and not entry.help:
            entry.help = help
        return entry

    # --------------------------------------------------------------- updates
    def counter(
        self,
        name: str,
        value: float = 1.0,
        labels: Mapping[str, object] | None = None,
        help: str = "",
    ) -> None:
        """Add ``value`` to a monotonically accumulating series."""
        self._entry("counter", name, labels, help).value += float(value)

    def gauge(
        self,
        name: str,
        value: float,
        labels: Mapping[str, object] | None = None,
        help: str = "",
    ) -> None:
        """Set a point-in-time series to ``value``."""
        self._entry("gauge", name, labels, help).value = float(value)

    def histogram(
        self,
        name: str,
        values: Iterable[float],
        labels: Mapping[str, object] | None = None,
        help: str = "",
    ) -> None:
        """Fold raw observations into a distribution series."""
        entry = self._entry("histogram", name, labels, help)
        entry.observations.extend(float(v) for v in values)

    # --------------------------------------------------------------- queries
    def value(
        self, name: str, labels: Mapping[str, object] | None = None
    ) -> float:
        """Scalar value of a counter/gauge (histograms: observation count)."""
        entry = self._metrics[(name, _labels(labels))]
        if entry.kind == "histogram":
            return float(len(entry.observations))
        return entry.value

    def names(self) -> list[str]:
        """Sorted distinct metric names."""
        return sorted({name for name, _ in self._metrics})

    # ----------------------------------------------------------------- merge
    def merge(self, other: MetricsRegistry) -> MetricsRegistry:
        """Combine two registries into a new one (associative + commutative).

        Counters and gauges sum (a gauge merged across shards is a roll-up
        of per-shard point-in-time values), histograms concatenate; a
        series present on one side only is carried over.  The empty
        registry is the identity.
        """
        merged = MetricsRegistry()
        for source in (self, other):
            for (name, labels), entry in source._metrics.items():
                target = merged._entry(entry.kind, name, dict(labels), entry.help)
                if entry.kind == "histogram":
                    target.observations.extend(entry.observations)
                else:
                    target.value += entry.value
        return merged

    # ------------------------------------------------------------ exposition
    @staticmethod
    def _quantile(values: list[float], q: float) -> float:
        ordered = sorted(values)
        if not ordered:
            return 0.0
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def to_json(self) -> dict:
        """JSON-serialisable export of every series."""
        series = []
        for (name, labels), entry in sorted(self._metrics.items()):
            record: dict = {
                "name": name,
                "kind": entry.kind,
                "labels": dict(labels),
            }
            if entry.help:
                record["help"] = entry.help
            if entry.kind == "histogram":
                record["count"] = len(entry.observations)
                record["sum"] = sum(entry.observations)
                record["p50"] = self._quantile(entry.observations, 0.50)
                record["p95"] = self._quantile(entry.observations, 0.95)
            else:
                record["value"] = entry.value
            series.append(record)
        return {"metrics": series}

    def render_json(self) -> str:
        """:meth:`to_json` as an indented JSON document."""
        return json.dumps(self.to_json(), indent=2)

    def render_prometheus(self) -> str:
        """Prometheus-style text exposition (histograms as summaries)."""
        lines: list[str] = []
        seen_headers: set[str] = set()
        for (name, labels), entry in sorted(self._metrics.items()):
            if name not in seen_headers:
                seen_headers.add(name)
                if entry.help:
                    lines.append(f"# HELP {name} {entry.help}")
                kind = "summary" if entry.kind == "histogram" else entry.kind
                lines.append(f"# TYPE {name} {kind}")
            label_text = ",".join(
                f'{key}="{_escape(value)}"' for key, value in labels
            )
            if entry.kind == "histogram":
                for q in (0.5, 0.95):
                    quantile_labels = ",".join(
                        filter(None, [label_text, f'quantile="{q}"'])
                    )
                    lines.append(
                        f"{name}{{{quantile_labels}}} "
                        f"{self._quantile(entry.observations, q)!r}"
                    )
                suffix_labels = f"{{{label_text}}}" if label_text else ""
                lines.append(f"{name}_sum{suffix_labels} {sum(entry.observations)!r}")
                lines.append(f"{name}_count{suffix_labels} {len(entry.observations)}")
            else:
                suffix_labels = f"{{{label_text}}}" if label_text else ""
                lines.append(f"{name}{suffix_labels} {entry.value!r}")
        return "\n".join(lines) + "\n"


def register_fields(
    registry: MetricsRegistry,
    stats,
    prefix: str,
    labels: Mapping[str, object] | None = None,
    gauges: tuple[str, ...] = (),
    skip: tuple[str, ...] = (),
) -> None:
    """Register a stats dataclass's numeric fields under ``prefix``.

    Fields named in ``gauges`` register as gauges (point-in-time values
    like occupancy), the remaining numeric fields as counters; ``None`` and
    non-numeric fields are skipped — structured values (hot column names
    and the like) belong in labels, not sample values.
    """
    for f in dataclasses.fields(stats):
        if f.name in skip:
            continue
        value = getattr(stats, f.name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        name = f"{prefix}_{f.name}"
        if f.name in gauges:
            registry.gauge(name, value, labels=labels)
        else:
            registry.counter(name, value, labels=labels)
