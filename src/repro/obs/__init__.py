"""Unified observability: span traces, metrics, EXPLAIN ANALYZE, wear.

* :mod:`repro.obs.trace` — hierarchical span tracer with bit-exact
  ``PimStats`` charge attribution and a JSONL sink;
* :mod:`repro.obs.metrics` — counters/gauges/histograms with label sets,
  JSON and Prometheus-style exposition, plus the shared snapshot/delta
  algebra of the stats dataclasses;
* :mod:`repro.obs.explain` — rendering of one traced execution
  (``QueryService.explain``);
* :mod:`repro.obs.wear` — per-crossbar write-count observatory behind the
  Fig. 9 endurance scalar.
"""

from repro.obs.explain import ExplainResult
from repro.obs.metrics import MetricsRegistry, add_stats, register_fields, sub_stats
from repro.obs.trace import (
    NULL_TRACER,
    ChargeEvent,
    SpanRecord,
    SpanTracer,
    fold_trace_charges,
    tracer_from_config,
)
from repro.obs.wear import WearReport

__all__ = [
    "ChargeEvent",
    "ExplainResult",
    "MetricsRegistry",
    "NULL_TRACER",
    "SpanRecord",
    "SpanTracer",
    "WearReport",
    "add_stats",
    "fold_trace_charges",
    "register_fields",
    "sub_stats",
    "tracer_from_config",
]
