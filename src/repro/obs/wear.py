"""The wear/endurance observatory: per-crossbar write-count drill-down.

The paper's Fig. 9 reports a single scalar per query — the worst per-row
write count, converted to a required cell endurance.  A production system
needs the distribution behind that maximum: which crossbar is wearing out,
how skewed the writes are across a partition, and how close the hottest row
is to the device's endurance budget.  :class:`WearReport` snapshots the
banks' ``writes_per_row`` counters (cumulative since allocation) and renders
them as distributions, an ASCII heatmap, and the Fig. 9 endurance figures
via :mod:`repro.memory.endurance`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memory.endurance import (
    RRAM_ENDURANCE_WRITES,
    lifetime_years,
    required_endurance,
)

#: Intensity ramp of the ASCII heatmap, coldest to hottest.
HEAT_CHARS = " .:-=+*#%@"


@dataclass(frozen=True)
class PartitionWear:
    """Wear counters of one crossbar allocation (one vertical partition)."""

    label: str
    partition: int
    #: ``(crossbars, rows)`` cumulative per-row write counts.
    writes: np.ndarray
    #: Columns per crossbar row (the wear-levelling divisor of Fig. 9).
    row_columns: int

    @property
    def crossbars(self) -> int:
        return int(self.writes.shape[0])

    @property
    def rows(self) -> int:
        return int(self.writes.shape[1])

    @property
    def total_writes(self) -> int:
        return int(self.writes.sum())

    @property
    def max_writes_per_row(self) -> int:
        return int(self.writes.max()) if self.writes.size else 0

    def crossbar_totals(self) -> np.ndarray:
        """Total writes per crossbar."""
        return self.writes.sum(axis=1)

    def distribution(self) -> dict[str, float]:
        """Summary statistics of the per-row write counts."""
        if not self.writes.size:
            return {"min": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0, "mean": 0.0}
        flat = self.writes.reshape(-1)
        return {
            "min": float(flat.min()),
            "p50": float(np.percentile(flat, 50)),
            "p95": float(np.percentile(flat, 95)),
            "max": float(flat.max()),
            "mean": float(flat.mean()),
        }


@dataclass(frozen=True)
class WearReport:
    """Point-in-time wear observatory of one stored (or sharded) relation."""

    label: str
    partitions: list[PartitionWear]

    @classmethod
    def from_stored(cls, stored, label: str | None = None) -> WearReport:
        """Snapshot a :class:`~repro.db.storage.StoredRelation`'s wear."""
        partitions = [
            PartitionWear(
                label=label if label is not None else stored.label,
                partition=index,
                writes=np.array(allocation.bank.writes_per_row, dtype=np.int64),
                row_columns=allocation.bank.columns,
            )
            for index, allocation in enumerate(stored.allocations)
        ]
        return cls(
            label=label if label is not None else stored.label,
            partitions=partitions,
        )

    @classmethod
    def from_sharded(cls, sharded, label: str | None = None) -> WearReport:
        """Snapshot every shard of a sharded relation into one report."""
        name = label if label is not None else sharded.label
        partitions = [
            partition
            for index, shard in enumerate(sharded.shards)
            for partition in cls.from_stored(
                shard, label=f"{name}/s{index}"
            ).partitions
        ]
        return cls(label=name, partitions=partitions)

    # ------------------------------------------------------------- roll-ups
    @property
    def max_writes_per_row(self) -> int:
        """The Fig. 9 scalar: worst per-row write count anywhere."""
        return max(
            (p.max_writes_per_row for p in self.partitions), default=0
        )

    @property
    def total_writes(self) -> int:
        return sum(p.total_writes for p in self.partitions)

    def hottest(self, n: int = 5) -> list[dict]:
        """The ``n`` crossbars with the highest total writes, hottest first."""
        entries = []
        for p in self.partitions:
            totals = p.crossbar_totals()
            for crossbar in range(p.crossbars):
                entries.append(
                    {
                        "label": p.label,
                        "partition": p.partition,
                        "crossbar": crossbar,
                        "total_writes": int(totals[crossbar]),
                        "max_writes_per_row": int(p.writes[crossbar].max())
                        if p.rows
                        else 0,
                    }
                )
        entries.sort(key=lambda e: (-e["total_writes"], e["label"], e["crossbar"]))
        return entries[:n]

    # ------------------------------------------------------------- endurance
    def required_endurance(
        self, query_time_s: float, years: float = 10.0
    ) -> float:
        """Fig. 9: endurance needed to sustain the observed worst-row wear.

        ``query_time_s`` is the modelled time over which the snapshot's
        writes accrued (one query for the paper's figure; a whole replay
        when drilled from a batch).
        """
        row_columns = self.partitions[0].row_columns if self.partitions else 1
        return required_endurance(
            self.max_writes_per_row, row_columns, query_time_s, years=years
        )

    def lifetime_years(
        self,
        query_time_s: float,
        endurance_writes: float = RRAM_ENDURANCE_WRITES,
    ) -> float:
        """Years of back-to-back execution the hottest cell survives."""
        row_columns = self.partitions[0].row_columns if self.partitions else 1
        return lifetime_years(
            self.max_writes_per_row, row_columns, query_time_s,
            endurance_writes=endurance_writes,
        )

    # --------------------------------------------------------------- renders
    def heatmap(
        self,
        partition: int = 0,
        width: int = 64,
        height: int = 16,
        chars: str = HEAT_CHARS,
    ) -> str:
        """ASCII heatmap of one partition: crossbars down, rows across.

        Crossbars and rows are bucketed (mean within each cell) to fit the
        requested size; intensity is normalised to the hottest cell.  An
        all-zero partition renders as blanks.
        """
        target = self.partitions[partition]
        writes = target.writes.astype(float)
        if not writes.size:
            return f"{target.label} p{partition}: (empty)"

        def bucket(array: np.ndarray, axis: int, count: int) -> np.ndarray:
            size = array.shape[axis]
            count = max(1, min(count, size))
            edges = np.linspace(0, size, count + 1).astype(int)
            pieces = [
                array.take(range(edges[i], edges[i + 1]), axis=axis).mean(axis=axis)
                for i in range(count)
            ]
            return np.stack(pieces, axis=axis)

        grid = bucket(bucket(writes, 0, height), 1, width)
        peak = grid.max()
        lines = [
            f"{target.label} p{partition}: {target.crossbars} crossbars x "
            f"{target.rows} rows, max {target.max_writes_per_row} writes/row"
        ]
        scale = len(chars) - 1
        for row_index in range(grid.shape[0]):
            cells = grid[row_index]
            rendered = "".join(
                chars[int(round(value / peak * scale))] if peak > 0 else chars[0]
                for value in cells
            )
            lines.append(f"xb[{row_index:>2}] |{rendered}|")
        return "\n".join(lines)

    def to_json(self) -> dict:
        """JSON-serialisable export (distributions, not raw matrices)."""
        return {
            "label": self.label,
            "max_writes_per_row": self.max_writes_per_row,
            "total_writes": self.total_writes,
            "partitions": [
                {
                    "label": p.label,
                    "partition": p.partition,
                    "crossbars": p.crossbars,
                    "rows": p.rows,
                    "total_writes": p.total_writes,
                    "max_writes_per_row": p.max_writes_per_row,
                    "distribution": p.distribution(),
                    "crossbar_totals": [int(v) for v in p.crossbar_totals()],
                }
                for p in self.partitions
            ],
            "hottest": self.hottest(),
        }
