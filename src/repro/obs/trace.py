"""Hierarchical span tracing for query, DML and maintenance execution.

A :class:`SpanTracer` records one tree of :class:`SpanRecord`\\ s per root
operation (a served query, a DML statement, a compaction).  The engine, its
stages, the cost planner, the sharded scatter-gather and the service all
open spans through the tracer they share, so a single trace shows where a
query's modelled time went: ``query -> plan -> execute -> prune / filter /
pim-gb / host-gb``, with per-shard children under the sharded scatter.

Two properties make the tracer safe to leave compiled into every hot path:

* **The disabled path is branch-cheap.**  ``span()`` performs one attribute
  check and returns a shared no-op context manager; ``bind()`` leaves the
  stats object's hook ``None``, so the per-charge cost of tracing-off is a
  single ``is not None`` test inside :meth:`~repro.pim.stats.PimStats.add_time`.

* **Charge attribution is exact.**  Rather than differencing stats
  snapshots (whose floating-point deltas do not telescope bit-exactly), the
  tracer hooks :class:`~repro.pim.stats.PimStats` and records every
  ``add_time``/``add_energy`` charge as an event on the innermost active
  span, tagged with a global sequence number.  Folding a trace's events in
  sequence order reproduces the stats object's own left-to-right
  accumulation — the per-phase sums match ``time_by_phase`` bit for bit
  (``benchmarks/bench_observability.py`` gates exactly that).

Span nesting uses a :class:`contextvars.ContextVar`, so the scatter pool's
worker threads each see their own stack; per-shard spans are parented
explicitly to the scatter span captured before the pool dispatch.

Tracing is selected by ``SystemConfig.tracing`` / the ``REPRO_TRACE``
environment variable (see :mod:`repro.config`); a value naming a path (it
contains a separator or ends in ``.jsonl``) additionally routes every
completed root span to that JSONL sink, one JSON object per line.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from collections import defaultdict
from collections.abc import Iterator


@dataclass
class ChargeEvent:
    """One ``PimStats`` charge attributed to a span.

    ``seq`` is the tracer-global sequence number: sorting a trace's events
    by it reproduces the exact order the stats object accumulated in.
    """

    seq: int
    kind: str  # "time" | "energy"
    key: str  # phase name or energy component
    value: float


@dataclass
class SpanRecord:
    """One node of a trace: name, wall time, charges and attributes."""

    name: str
    span_id: int
    parent_id: int | None = None
    attributes: dict = field(default_factory=dict)
    wall_s: float = 0.0
    charges: list[ChargeEvent] = field(default_factory=list)
    children: list[SpanRecord] = field(default_factory=list)

    def set(self, **attributes) -> None:
        """Attach attributes computed after the span was opened."""
        self.attributes.update(attributes)

    # ------------------------------------------------------------- traversal
    def iter_spans(self) -> Iterator[SpanRecord]:
        """This span and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> SpanRecord | None:
        """First span named ``name`` in preorder (``None`` if absent)."""
        for span in self.iter_spans():
            if span.name == name:
                return span
        return None

    # ------------------------------------------------------------ accounting
    def time_by_phase(self) -> dict[str, float]:
        """Modelled time charged to *this* span, per phase, in charge order."""
        folded: dict[str, float] = defaultdict(float)
        for event in self.charges:
            if event.kind == "time":
                folded[event.key] += event.value
        return dict(folded)

    @property
    def modelled_time_s(self) -> float:
        """Modelled time charged directly to this span."""
        return sum(e.value for e in self.charges if e.kind == "time")

    @property
    def modelled_energy_j(self) -> float:
        """Modelled energy charged directly to this span."""
        return sum(e.value for e in self.charges if e.kind == "energy")

    def subtree_time_s(self) -> float:
        """Modelled time charged anywhere in this span's subtree."""
        return sum(span.modelled_time_s for span in self.iter_spans())

    def to_dict(self) -> dict:
        """JSON-serialisable form (the JSONL sink writes one per root)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "wall_s": self.wall_s,
            "modelled_time_s": self.modelled_time_s,
            "modelled_energy_j": self.modelled_energy_j,
            "time_by_phase": self.time_by_phase(),
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }


def fold_trace_charges(root: SpanRecord) -> dict[str, dict[str, float]]:
    """Re-accumulate a trace's charges in global sequence order.

    Returns ``{"time": {phase: seconds}, "energy": {component: joules}}``.
    Because every charge event carries the stats object's accumulation
    order, the per-key sums here are *bit-identical* to the
    ``time_by_phase`` / ``energy_by_component`` dictionaries of the
    execution the trace covered — the trace-completeness contract.
    """
    events = sorted(
        (e for span in root.iter_spans() for e in span.charges),
        key=lambda e: e.seq,
    )
    folded: dict[str, dict[str, float]] = {
        "time": defaultdict(float),
        "energy": defaultdict(float),
    }
    for event in events:
        folded[event.kind][event.key] += event.value
    return {kind: dict(values) for kind, values in folded.items()}


class _NullSpan:
    """Shared no-op span: the entire cost of tracing-off inside a ``with``."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attributes) -> None:
        """Discard the attributes (disabled tracer)."""


NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager entering one :class:`SpanRecord` (enabled tracer)."""

    __slots__ = ("_tracer", "_record", "_token", "_start")

    def __init__(self, tracer: SpanTracer, record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record
        self._token: contextvars.Token | None = None
        self._start = 0.0

    def __enter__(self) -> SpanRecord:
        self._start = time.perf_counter()
        self._token = self._tracer._current.set(self._record)
        return self._record

    def __exit__(self, *exc_info) -> bool:
        record = self._record
        record.wall_s = time.perf_counter() - self._start
        self._tracer._current.reset(self._token)
        if record.parent_id is None:
            self._tracer._finish_root(record)
        return False


class SpanTracer:
    """Records hierarchical spans and attributes ``PimStats`` charges to them.

    One tracer is shared by a service, its engines and their stages; the
    ``enabled`` flag can be toggled between operations (``explain()`` flips
    it around a single execution).  Completed root spans accumulate on
    :attr:`traces` and, when :attr:`sink` names a path, are appended to it
    as JSON lines.
    """

    def __init__(self, enabled: bool = False, sink: str | os.PathLike | None = None):
        self.enabled = bool(enabled)
        self.sink = sink
        #: Completed root spans, in completion order.
        self.traces: list[SpanRecord] = []
        self._current: contextvars.ContextVar[SpanRecord | None] = (
            contextvars.ContextVar("repro_obs_span", default=None)
        )
        self._seq = itertools.count()
        self._ids = itertools.count(1)
        # Shard spans complete on pool worker threads; the lock covers the
        # root-trace list and the sink file (children append under their
        # parent from exactly one thread, so span trees need no lock).
        self._lock = threading.Lock()

    # ---------------------------------------------------------------- spans
    def span(self, name: str, parent: SpanRecord | None = None, **attributes):
        """Open a span (``with tracer.span("filter") as rec: ...``).

        Disabled tracers return the shared no-op span.  ``parent`` overrides
        the context-derived parent — required for spans opened on pool
        worker threads, whose context starts empty.
        """
        if not self.enabled:
            return NULL_SPAN
        if parent is None:
            parent = self._current.get()
        record = SpanRecord(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            attributes=attributes,
        )
        if parent is not None:
            parent.children.append(record)
        return _ActiveSpan(self, record)

    def current(self) -> SpanRecord | None:
        """The innermost active span of the calling thread (or ``None``)."""
        return self._current.get()

    # -------------------------------------------------------------- charges
    def on_charge(self, kind: str, key: str, value: float) -> None:
        """Record one stats charge against the innermost active span."""
        record = self._current.get()
        if record is not None:
            record.charges.append(ChargeEvent(next(self._seq), kind, key, value))

    def bind(self, stats) -> None:
        """Route a :class:`~repro.pim.stats.PimStats`'s charges to this tracer.

        Called wherever an execution creates or re-binds a fresh stats
        object.  With tracing disabled the hook stays ``None`` and the
        stats object charges at full speed.
        """
        stats.trace_hook = self.on_charge if self.enabled else None

    # ---------------------------------------------------------------- roots
    def _finish_root(self, record: SpanRecord) -> None:
        with self._lock:
            self.traces.append(record)
            if self.sink is not None:
                with open(self.sink, "a") as handle:
                    json.dump(record.to_dict(), handle)
                    handle.write("\n")

    def pop_trace(self) -> SpanRecord | None:
        """Remove and return the most recently completed root span."""
        with self._lock:
            return self.traces.pop() if self.traces else None

    def clear(self) -> None:
        """Drop every retained trace (the sink file is left alone)."""
        with self._lock:
            self.traces.clear()


class NullTracer(SpanTracer):
    """The shared always-disabled tracer standalone engines default to.

    It refuses to be enabled: the singleton is shared by every engine
    created without an explicit tracer, so enabling it would silently trace
    unrelated engines.  Create a private :class:`SpanTracer` (or construct
    the engine/service with tracing on) instead.
    """

    def __setattr__(self, name: str, value) -> None:
        if name == "enabled" and value and hasattr(self, "enabled"):
            raise ValueError(
                "NULL_TRACER is shared and stays disabled; pass a "
                "SpanTracer(enabled=True) to the engine or service instead"
            )
        super().__setattr__(name, value)


NULL_TRACER = NullTracer()
"""Module-wide disabled tracer; the default for standalone engines."""


def tracer_from_config(config) -> SpanTracer:
    """The tracer an engine/service resolves from its ``SystemConfig``.

    Returns the shared :data:`NULL_TRACER` when ``config.tracing`` is off
    (nothing to own, nothing to pay), and a fresh enabled tracer — with the
    ``REPRO_TRACE`` sink path, when one was given — otherwise.
    """
    from repro.config import default_trace_sink

    if not getattr(config, "tracing", False):
        return NULL_TRACER
    return SpanTracer(enabled=True, sink=default_trace_sink())
