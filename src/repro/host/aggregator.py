"""Host-side aggregation.

Two host responsibilities are modelled here:

* **host-gb** — records that were not assigned to PIM aggregation are read by
  the host and folded into a hash table keyed by the GROUP-BY attributes
  (:func:`host_group_aggregate`).
* **Combining partial aggregates** — after a PIM aggregation, every crossbar
  holds one partial result; the host reads them and combines them into the
  final value (:func:`combine_partials`).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.config import HostConfig
from repro.db.query import Aggregate
from repro.host.processor import cpu_time
from repro.pim.stats import PimStats

#: Aggregate operations the host can combine and merge.  An AVG never reaches
#: these functions directly — it is decomposed into its SUM and COUNT parts
#: upstream and re-assembled after the merge.
SUPPORTED_MERGE_OPS = ("sum", "count", "min", "max")


def _check_merge_op(operation: str) -> None:
    if operation not in SUPPORTED_MERGE_OPS:
        raise ValueError(
            f"unsupported aggregation {operation!r}; mergeable operations are "
            f"{SUPPORTED_MERGE_OPS} (decompose an avg into sum and count)"
        )


def host_group_aggregate(
    group_columns: Mapping[str, np.ndarray],
    value_columns: Mapping[str, np.ndarray],
    aggregates: Sequence[Aggregate],
    config: HostConfig,
    stats: PimStats | None = None,
    threads: int = 1,
    phase: str = "host-agg",
    workload_scale: float = 1.0,
) -> dict[tuple[int, ...], dict[str, int]]:
    """Hash-aggregate records at the host.

    ``group_columns`` holds one array per GROUP-BY attribute and
    ``value_columns`` one array per aggregated attribute (all of equal
    length).  Returns ``{group_key: {aggregate_name: value}}`` and charges
    the per-record CPU work to ``stats`` (scaled by ``workload_scale`` when
    the timing model extrapolates to a larger relation).
    """
    group_names = list(group_columns)
    arrays = [np.asarray(group_columns[name], dtype=np.uint64) for name in group_names]
    lengths = {len(a) for a in arrays} | {
        len(np.asarray(v)) for v in value_columns.values()
    }
    if len(lengths) > 1:
        raise ValueError("group and value columns have different lengths")
    count = lengths.pop() if lengths else 0
    for aggregate in aggregates:
        _check_merge_op(aggregate.op)
        if aggregate.op != "count" and aggregate.attribute not in value_columns:
            raise ValueError(
                f"aggregate {aggregate.name!r} needs value column "
                f"{aggregate.attribute!r}, which was not supplied"
            )

    results: dict[tuple[int, ...], dict[str, int]] = {}
    if count:
        if arrays:
            keys = np.stack(arrays, axis=1)
        else:
            keys = np.zeros((count, 0), dtype=np.uint64)
        unique_keys, inverse = np.unique(keys, axis=0, return_inverse=True)
        inverse = inverse.reshape(-1)
        # Sorted-segment reductions: one reduceat per aggregate instead of one
        # boolean selector per (group, aggregate) pair.  ``inverse`` indexes the
        # sorted unique keys, so after the stable argsort segment ``g`` holds
        # exactly the rows of unique key ``g`` and every segment is non-empty.
        order = np.argsort(inverse, kind="stable")
        sorted_groups = inverse[order]
        starts = np.nonzero(np.r_[True, sorted_groups[1:] != sorted_groups[:-1]])[0]
        columns: dict[str, np.ndarray] = {}
        for aggregate in aggregates:
            if aggregate.op == "count":
                columns[aggregate.name] = np.diff(np.r_[starts, count])
                continue
            values = np.asarray(value_columns[aggregate.attribute], dtype=np.uint64)[
                order
            ]
            if aggregate.op == "sum":
                columns[aggregate.name] = np.add.reduceat(values, starts)
            elif aggregate.op == "min":
                columns[aggregate.name] = np.minimum.reduceat(values, starts)
            else:
                columns[aggregate.name] = np.maximum.reduceat(values, starts)
        for key_index, key in enumerate(unique_keys):
            results[tuple(int(v) for v in key)] = {
                name: int(values[key_index]) for name, values in columns.items()
            }

    if stats is not None:
        stats.add_time(
            phase,
            cpu_time(
                config,
                count * workload_scale,
                config.host_agg_cycles_per_record,
                threads,
            ),
        )
    return results


def combine_partials(
    partials: Iterable[np.ndarray],
    operation: str,
    config: HostConfig,
    stats: PimStats | None = None,
    phase: str = "host-combine",
) -> int | None:
    """Combine per-crossbar partial aggregates into a single value.

    An empty ``min``/``max`` has no defined value: no crossbar contributed a
    partial (every one held the identity), so the combination returns ``None``
    rather than a spurious ``0`` that would poison later min/max merging.
    Empty sums and counts are genuinely ``0``.  The same identities apply when
    ``partials`` itself is empty (no crossbar produced anything at all, e.g. a
    fully compacted-away allocation).
    """
    _check_merge_op(operation)
    arrays = [np.asarray(p, dtype=np.uint64).reshape(-1) for p in partials]
    if arrays:
        values = np.concatenate(arrays)
    else:
        values = np.zeros(0, dtype=np.uint64)
    if operation in ("sum", "count"):
        result: int | None = int(values.sum())
    elif operation == "min":
        result = int(values.min()) if values.size else None
    else:  # max
        result = int(values.max()) if values.size else None
    if stats is not None:
        stats.add_time(phase, cpu_time(config, len(values), 4.0, threads=1))
    return result


def merge_shard_rows(
    shard_rows: Sequence[dict[tuple[int, ...], dict[str, int]]],
    aggregates: Sequence[Aggregate],
    config: HostConfig | None = None,
    stats: PimStats | None = None,
    phase: str = "shard-merge",
) -> dict[tuple[int, ...], dict[str, int]]:
    """Gather per-shard result rows into the global result (scatter-gather).

    Each element of ``shard_rows`` is the full result dictionary one
    horizontal shard produced for the same query; folding them through
    :func:`merge_group_results` yields exactly the rows the unsharded engine
    computes, because SUM/COUNT distribute over the shards and MIN/MAX
    commute with the shard partition (an AVG is merged through its SUM and
    COUNT parts).  A shard whose selection was empty contributes an empty
    dictionary and drops out of the fold, which preserves the engine's
    "no selected record, no result row" convention.

    When ``config`` and ``stats`` are given, the host CPU work of the merge
    (a hash-table fold over every partial row) is charged to ``stats`` — this
    is the gather term of the sharded latency model.
    """
    merged: dict[tuple[int, ...], dict[str, int]] = {}
    for rows in shard_rows:
        merged = merge_group_results(merged, rows, aggregates)
    if stats is not None and config is not None:
        partial_values = sum(len(rows) for rows in shard_rows) * max(1, len(aggregates))
        stats.add_time(phase, cpu_time(config, partial_values, 4.0, threads=1))
    return merged


def merge_group_results(
    first: dict[tuple[int, ...], dict[str, int]],
    second: dict[tuple[int, ...], dict[str, int]],
    aggregates: Sequence[Aggregate],
) -> dict[tuple[int, ...], dict[str, int]]:
    """Merge two GROUP-BY result dictionaries (e.g. pim-gb and host-gb parts).

    An aggregate that is absent (or ``None``) on one side — a min/max whose
    selection on that side was empty — does not constrain the merge: the other
    side's value is kept as-is instead of being min/max-ed against a
    placeholder.

    Only ``sum``/``count``/``min``/``max`` merge; anything else (a raw
    ``avg``, a typo) raises :class:`ValueError` instead of being silently
    folded as a ``max`` and corrupting the result.
    """
    for aggregate in aggregates:
        _check_merge_op(aggregate.op)
    merged = {key: dict(value) for key, value in first.items()}
    for key, entry in second.items():
        if key not in merged:
            merged[key] = dict(entry)
            continue
        target = merged[key]
        for aggregate in aggregates:
            name = aggregate.name
            if entry.get(name) is None:
                continue
            if target.get(name) is None:
                target[name] = entry[name]
            elif aggregate.op in ("sum", "count"):
                target[name] += entry[name]
            elif aggregate.op == "min":
                target[name] = min(target[name], entry[name])
            else:  # max — the only remaining validated operation
                target[name] = max(target[name], entry[name])
    return merged
