"""Host-side models: read path, DRAM timing, CPU work and hash aggregation.

The host in the paper is a six-core out-of-order x86 machine whose main
memory contains the PIM module as one rank (Table I).  The host participates
in query execution in three ways, each modelled here:

* it reads filter-result bit-vectors and selected records from the PIM rank
  (:mod:`repro.host.readpath`), paying the read amplification of Section V-B
  (a 64 B line spans the same 16-bit slice of 32 crossbars),
* it performs the hash aggregation of host-gb and the final combination of
  per-crossbar partial aggregates (:mod:`repro.host.aggregator`),
* it splits the relation's pages across four worker threads
  (:mod:`repro.host.processor`).
"""

from repro.host.readpath import HostReadModel
from repro.host.aggregator import combine_partials, host_group_aggregate
from repro.host.processor import cpu_time, split_evenly

__all__ = [
    "HostReadModel",
    "combine_partials",
    "host_group_aggregate",
    "cpu_time",
    "split_evenly",
]
