"""Host CPU work and thread partitioning.

Query execution in the paper splits the relation's pages into four equal
groups, one per worker thread (Section V-A).  The helpers here encapsulate
that split and the conversion of per-record CPU work into time.
"""

from __future__ import annotations


from repro.config import HostConfig


def split_evenly(total: int, parts: int) -> list[int]:
    """Split ``total`` items into ``parts`` nearly equal counts."""
    parts = max(1, int(parts))
    base = total // parts
    remainder = total % parts
    return [base + (1 if i < remainder else 0) for i in range(parts)]


def cpu_time(
    config: HostConfig,
    operations: float,
    cycles_per_operation: float,
    threads: int = 1,
) -> float:
    """Time for ``operations`` units of CPU work spread over ``threads``."""
    if operations <= 0:
        return 0.0
    threads = min(max(1, int(threads)), config.cores)
    cycles = operations * cycles_per_operation / threads
    return cycles / config.frequency_hz
