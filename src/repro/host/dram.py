"""Simple DRAM-channel timing helpers.

Two access regimes matter for the paper's workloads:

* **Streaming** — long sequential reads (the packed filter bit-vector, the
  columnar engine's scans).  These are bandwidth-bound.
* **Scattered** — dependent reads of individual cache lines whose addresses
  are only known after inspecting the filter bit-vector (host-gb record
  reads).  These are latency-bound, with a small amount of memory-level
  parallelism per thread.
"""

from __future__ import annotations

from repro.config import HostConfig

CACHE_LINE_BYTES = 64


def stream_read_time(config: HostConfig, num_bytes: float) -> float:
    """Time to stream ``num_bytes`` from memory (bandwidth-bound)."""
    if num_bytes <= 0:
        return 0.0
    return max(num_bytes / config.dram_bw_bytes_per_s, config.dram_access_latency_s)


def scattered_read_time(
    config: HostConfig, lines: float, threads: int = 1
) -> float:
    """Time for ``lines`` dependent line reads spread over ``threads`` threads.

    Each thread sustains ``pim_random_read_mlp`` outstanding reads; threads
    operate on disjoint page groups so their latencies overlap.  The result
    is never lower than the equivalent bandwidth-bound streaming time (the
    channel itself is still a shared resource).
    """
    if lines <= 0:
        return 0.0
    threads = max(1, int(threads))
    latency_bound = (
        lines * config.dram_access_latency_s / (threads * config.pim_random_read_mlp)
    )
    bandwidth_bound = lines * CACHE_LINE_BYTES / config.dram_bw_bytes_per_s
    return max(latency_bound, bandwidth_bound)


def write_time(config: HostConfig, num_bytes: float, threads: int = 1) -> float:
    """Time for the host to write ``num_bytes`` back into the PIM rank."""
    if num_bytes <= 0:
        return 0.0
    lines = max(1.0, num_bytes / CACHE_LINE_BYTES)
    return scattered_read_time(config, lines, threads)
