"""The host's read path into the PIM rank, with read amplification.

Reads from the PIM module use the normal load path: a 64-byte cache line.
Because a huge page interleaves its 32 crossbars across the line (2 bytes,
i.e. one 16-bit read-port word, per crossbar) and a record occupies one row
of a *single* crossbar, reading one word of one record drags in the same
word of the 31 records stored at the same row of the page's other crossbars
(Section V-B).  The cost of host reads is therefore governed by the number of
**distinct (page, row, word) lines** touched, not by the number of records —
which is exactly why host-gb's latency grows sub-linearly with the selected
record ratio ``r`` (Fig. 4b) and why high-selectivity queries lose the PIM
advantage.

:class:`HostReadModel` provides the three read patterns the executor needs
(filter bit-vector, selected records, per-crossbar aggregation results),
returning functional values while charging latency to the supplied
:class:`~repro.pim.stats.PimStats` and crossbar read energy to the PIM
module.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.config import SystemConfig
from repro.host import dram
from repro.host.dram import CACHE_LINE_BYTES
from repro.db.storage import StoredRelation
from repro.pim.stats import PimStats


class HostReadModel:
    """Models host loads (and stores) targeting PIM-resident data."""

    def __init__(
        self,
        config: SystemConfig,
        stats: PimStats,
        threads: int | None = None,
        traffic_scale: float = 1.0,
    ) -> None:
        self.config = config
        self.stats = stats
        self.threads = threads if threads is not None else config.host.query_threads
        # Linear extrapolation factor for the charged traffic.  The functional
        # simulation can run on a scaled-down relation while latency, energy
        # and power are reported for a relation ``traffic_scale`` times larger
        # (all host-read costs are linear in the relation size).
        self.traffic_scale = float(traffic_scale)

    # ------------------------------------------------------------ bit-vector
    def read_filter_bitvector(
        self,
        stored: StoredRelation,
        partition: int = 0,
        column: int | None = None,
        phase: str = "host-read-bitvector",
    ) -> np.ndarray:
        """Read the packed filter-result bit-vector of a partition.

        The PIM controllers gather the per-record result bits into a compact
        region (one bit per record), so the host streams
        ``records / 8`` bytes.  Returns the boolean mask over records.
        """
        layout = stored.layouts[partition]
        if column is None:
            column = layout.filter_column
        mask = stored.column_bit(partition, column)
        num_bytes = math.ceil(stored.num_records / 8) * self.traffic_scale
        time_s = dram.stream_read_time(self.config.host, num_bytes)
        lines = math.ceil(num_bytes / CACHE_LINE_BYTES)
        self._charge(phase, time_s, lines)
        return mask

    # ---------------------------------------------------------------- records
    def count_record_lines(
        self,
        stored: StoredRelation,
        partition: int,
        record_indices: np.ndarray,
        attributes: Sequence[str],
    ) -> int:
        """Distinct cache lines needed to read ``attributes`` of the records."""
        if len(record_indices) == 0:
            return 0
        layout = stored.layouts[partition]
        words = layout.words_for_fields(attributes)
        rows = stored.rows_per_crossbar
        records_per_page = stored.records_per_page
        record_indices = np.asarray(record_indices, dtype=np.int64)
        pages = record_indices // records_per_page
        row_in_crossbar = record_indices % rows
        pairs = np.unique(pages * rows + row_in_crossbar)
        return int(len(pairs) * len(words))

    def read_records(
        self,
        stored: StoredRelation,
        partition: int,
        record_indices: np.ndarray,
        attributes: Sequence[str],
        phase: str = "host-read-records",
    ) -> dict[str, np.ndarray]:
        """Read ``attributes`` of the given records through the load path.

        Returns the decoded values (functional) and charges the scattered
        line reads, spread across the worker threads, to the stats object.
        """
        record_indices = np.asarray(record_indices, dtype=np.int64)
        values = {
            name: stored.decode_column(name)[record_indices] for name in attributes
        }
        lines = self.count_record_lines(stored, partition, record_indices, attributes)
        lines = int(round(lines * self.traffic_scale))
        time_s = dram.scattered_read_time(self.config.host, lines, self.threads)
        self._charge(phase, time_s, lines)
        return values

    def reads_per_record(
        self, stored: StoredRelation, partition: int, attributes: Sequence[str]
    ) -> int:
        """The paper's ``s``: 16-bit reads needed per record for ``attributes``."""
        return len(stored.layouts[partition].words_for_fields(attributes))

    # ------------------------------------------------------------- streaming
    def charge_stream_lines(self, lines: float, phase: str) -> None:
        """Charge a bandwidth-bound stream of ``lines`` cache lines.

        Used by the planner's host-scan route, which reads whole columns
        sequentially instead of chasing the filter bit-vector.
        """
        lines = int(round(lines * self.traffic_scale))
        time_s = dram.stream_read_time(
            self.config.host, lines * CACHE_LINE_BYTES
        )
        self._charge(phase, time_s, lines)

    # ----------------------------------------------------- aggregation results
    def read_aggregation_results(
        self,
        stored: StoredRelation,
        partition: int,
        phase: str = "host-read-agg",
        pages_fraction: float = 1.0,
    ) -> int:
        """Charge the reads of the per-crossbar aggregation results.

        The results of all 32 crossbars of a page share cache lines (one line
        per 16-bit result word), so the host reads
        ``pages x result_words`` lines.  ``pages_fraction`` scales the page
        count when a pruned aggregation only wrote results into candidate
        crossbars.  The decoded values themselves are returned by the executor
        that triggered the aggregation; this method only accounts for the
        traffic and returns the line count.
        """
        layout = stored.layouts[partition]
        words = len(layout.result_word_indexes)
        lines = int(round(
            stored.allocations[partition].pages * pages_fraction
            * words * self.traffic_scale
        ))
        time_s = dram.scattered_read_time(self.config.host, lines, self.threads)
        self._charge(phase, time_s, lines)
        return lines

    # ------------------------------------------------------ partition transfer
    def transfer_bit_column(
        self,
        stored: StoredRelation,
        source_partition: int,
        source_column: int,
        target_partition: int,
        target_column: int,
        phase: str = "host-transfer-bits",
    ) -> np.ndarray:
        """Move a bit column between vertical partitions through the host.

        This is the intermediate-result transfer that makes the two-xb
        configuration slower (Section V-A): the host reads the packed bit
        vector from one partition and writes it into the aligned rows of the
        other partition.
        """
        bits = stored.column_bit(source_partition, source_column)
        stored.write_bit_column(target_partition, target_column, bits)
        num_bytes = math.ceil(stored.num_records / 8) * self.traffic_scale
        read_time = dram.stream_read_time(self.config.host, num_bytes)
        write_time = dram.write_time(self.config.host, num_bytes, self.threads)
        lines = math.ceil(num_bytes / CACHE_LINE_BYTES)
        self._charge(phase, read_time + write_time, lines)
        self.stats.host_lines_written += lines
        xbar = self.config.pim.crossbar
        written_bits = int(round(stored.num_records * self.traffic_scale))
        self.stats.add_energy("write", written_bits * xbar.write_energy_per_bit_j)
        self.stats.bits_written += written_bits
        return bits

    # -------------------------------------------------------------- internals
    def _charge(self, phase: str, time_s: float, lines: int) -> None:
        self.stats.add_time(phase, time_s)
        self.stats.host_lines_read += lines
        xbar = self.config.pim.crossbar
        bits = lines * CACHE_LINE_BYTES * 8
        self.stats.bits_read += bits
        self.stats.add_energy("read", bits * xbar.read_energy_per_bit_j)
        if time_s > 0:
            # Reads drain energy from the PIM arrays at a modest rate; they
            # still contribute a power sample so read-dominated phases show
            # up in the peak-power accounting.
            power = bits * xbar.read_energy_per_bit_j / time_s / self.config.pim.chips
            self.stats.add_power_sample(phase, time_s, power)
