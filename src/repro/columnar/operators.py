"""Vectorised relational operators with cost accounting.

Each operator performs its work functionally on NumPy columns and records the
memory traffic and scalar work it caused in a
:class:`~repro.columnar.cost.ColumnarCost` object.  The counting follows how
a column-at-a-time engine such as MonetDB touches data: only the referenced
columns are scanned, selections materialise candidate lists, joins probe hash
tables built over the (small) dimension relations, and GROUP-BY updates a
hash table once per selected record.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

from repro.columnar.cost import ColumnarCost
from repro.db.query import (
    Aggregate,
    Predicate,
    attributes_referenced,
    evaluate_predicate,
)
from repro.db.relation import Relation
from repro.db.schema import Attribute


def column_element_bytes(attribute: Attribute) -> int:
    """Storage bytes per value in a typed column (1, 2, 4 or 8)."""
    raw = math.ceil(attribute.width / 8)
    for size in (1, 2, 4, 8):
        if raw <= size:
            return size
    return 8


def scan_cost(relation: Relation, attributes: Iterable[str], cost: ColumnarCost) -> None:
    """Charge a full scan of the named columns."""
    for name in attributes:
        attribute = relation.schema.attribute(name)
        cost.bytes_scanned += len(relation) * column_element_bytes(attribute)
        cost.values_touched += len(relation)


def select(relation: Relation, predicate: Predicate, cost: ColumnarCost) -> np.ndarray:
    """Evaluate a predicate over a relation, charging the column scans."""
    if predicate is None:
        return np.ones(len(relation), dtype=bool)
    scan_cost(relation, attributes_referenced(predicate), cost)
    return evaluate_predicate(predicate, relation)


def dimension_semijoin(
    dimension: Relation,
    key_attribute: str,
    predicate: Predicate,
    cost: ColumnarCost,
) -> np.ndarray:
    """Keys of the dimension records satisfying the predicate.

    Also charges the hash-table build over the qualifying keys (the build
    side of the subsequent fact-relation probe).
    """
    mask = select(dimension, predicate, cost)
    keys = dimension.column(key_attribute)[mask]
    cost.hash_builds += len(keys)
    return keys


def fact_membership(
    fact: Relation,
    foreign_key: str,
    passing_keys: np.ndarray,
    cost: ColumnarCost,
) -> np.ndarray:
    """Mask of fact records whose foreign key is in ``passing_keys``."""
    column = fact.column(foreign_key)
    attribute = fact.schema.attribute(foreign_key)
    cost.bytes_scanned += len(fact) * column_element_bytes(attribute)
    cost.hash_probes += len(fact)
    return np.isin(column, passing_keys)


def join_lookup(
    dimension: Relation,
    key_attribute: str,
    value_attribute: str,
    fact_keys: np.ndarray,
    cost: ColumnarCost,
) -> np.ndarray:
    """Fetch a dimension attribute for the given fact foreign-key values."""
    keys = dimension.column(key_attribute)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    positions = np.searchsorted(sorted_keys, fact_keys)
    if positions.size and (
        positions.max(initial=0) >= len(sorted_keys)
        or not np.array_equal(sorted_keys[positions], fact_keys)
    ):
        raise ValueError("fact record references a missing dimension key")
    attribute = dimension.schema.attribute(value_attribute)
    cost.hash_probes += len(fact_keys)
    cost.bytes_scanned += len(fact_keys) * column_element_bytes(attribute)
    return dimension.column(value_attribute)[order[positions]]


def gather_column(
    relation: Relation, attribute: str, indices: np.ndarray, cost: ColumnarCost
) -> np.ndarray:
    """Materialise a column for the selected record indices."""
    attr = relation.schema.attribute(attribute)
    cost.bytes_scanned += len(indices) * column_element_bytes(attr)
    cost.values_touched += len(indices)
    return relation.column(attribute)[indices]


def group_aggregate(
    group_columns: dict[str, np.ndarray],
    value_columns: dict[str, np.ndarray],
    aggregates: Sequence[Aggregate],
    cost: ColumnarCost,
) -> dict[tuple[int, ...], dict[str, int]]:
    """Hash GROUP-BY aggregation over materialised columns."""
    names = list(group_columns)
    arrays = [np.asarray(group_columns[n], dtype=np.uint64) for n in names]
    count = len(arrays[0]) if arrays else (
        len(next(iter(value_columns.values()))) if value_columns else 0
    )
    cost.group_updates += count * max(1, len(aggregates))
    results: dict[tuple[int, ...], dict[str, int]] = {}
    if count == 0:
        return results
    keys = np.stack(arrays, axis=1) if arrays else np.zeros((count, 0), dtype=np.uint64)
    unique_keys, inverse = np.unique(keys, axis=0, return_inverse=True)
    for index, key in enumerate(unique_keys):
        selector = inverse == index
        entry: dict[str, int] = {}
        for aggregate in aggregates:
            if aggregate.op == "count":
                entry[aggregate.name] = int(selector.sum())
                continue
            values = np.asarray(value_columns[aggregate.attribute], dtype=np.uint64)[selector]
            if aggregate.op == "sum":
                entry[aggregate.name] = int(values.sum())
            elif aggregate.op == "min":
                entry[aggregate.name] = int(values.min())
            else:
                entry[aggregate.name] = int(values.max())
        results[tuple(int(v) for v in key)] = entry
    return results
