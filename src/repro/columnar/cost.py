"""Analytical cost model of the columnar baseline.

The engine counts, while it executes a query functionally, how many column
bytes it streamed from memory, how many values it touched with scalar work,
how many hash-join probes it performed and how many group-table updates it
made.  :class:`ColumnarCost` converts those counters into a latency estimate
for the paper's MonetDB server (Section V-A): memory traffic over the
achievable multi-channel bandwidth, CPU work over the 32 cores at 2.1 GHz
with an imperfect parallel efficiency, and the larger of the two (memory and
compute overlap in a column-at-a-time engine).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ColumnarServerConfig


@dataclass
class ColumnarCost:
    """Operation counters accumulated during a columnar execution."""

    bytes_scanned: float = 0.0
    values_touched: float = 0.0
    hash_probes: float = 0.0
    hash_builds: float = 0.0
    group_updates: float = 0.0
    materialized_bytes: float = 0.0

    def scaled(self, factor: float) -> ColumnarCost:
        """Return a copy with every counter multiplied by ``factor``.

        Used to extrapolate a functionally executed small-scale run to the
        paper's SF=10 relation size (every counter is linear in the relation
        size).
        """
        return ColumnarCost(
            bytes_scanned=self.bytes_scanned * factor,
            values_touched=self.values_touched * factor,
            hash_probes=self.hash_probes * factor,
            hash_builds=self.hash_builds * factor,
            group_updates=self.group_updates * factor,
            materialized_bytes=self.materialized_bytes * factor,
        )

    def add(self, other: ColumnarCost) -> ColumnarCost:
        """Accumulate another cost object into this one (in place)."""
        self.bytes_scanned += other.bytes_scanned
        self.values_touched += other.values_touched
        self.hash_probes += other.hash_probes
        self.hash_builds += other.hash_builds
        self.group_updates += other.group_updates
        self.materialized_bytes += other.materialized_bytes
        return self

    # -------------------------------------------------------------- latency
    def memory_time_s(self, config: ColumnarServerConfig) -> float:
        """Time spent moving data, bandwidth-bound."""
        total_bytes = self.bytes_scanned + self.materialized_bytes
        return total_bytes / config.dram_bw_bytes_per_s

    def cpu_time_s(self, config: ColumnarServerConfig) -> float:
        """Time spent on scalar work across all cores."""
        cycles = (
            self.values_touched * config.cycles_per_value
            + (self.hash_probes + self.hash_builds) * config.cycles_per_hash_probe
            + self.group_updates * config.cycles_per_group_update
        )
        effective_hz = (
            config.total_cores * config.frequency_hz * config.parallel_efficiency
        )
        return cycles / effective_hz

    def time_s(self, config: ColumnarServerConfig) -> float:
        """Estimated query latency: memory and compute overlap."""
        return max(self.memory_time_s(config), self.cpu_time_s(config))

    def breakdown(self, config: ColumnarServerConfig) -> dict[str, float]:
        """Reporting helper with both components and the counters."""
        return {
            "memory_time_s": self.memory_time_s(config),
            "cpu_time_s": self.cpu_time_s(config),
            "time_s": self.time_s(config),
            "bytes_scanned": self.bytes_scanned,
            "values_touched": self.values_touched,
            "hash_probes": self.hash_probes,
            "group_updates": self.group_updates,
        }
