"""The columnar baseline engine (mnt-reg and mnt-join).

:class:`ColumnarEngine` executes the same query IR as the PIM engine, either
against the original star schema (``execute_star``, the paper's *mnt-reg*
configuration: per-dimension selections, hash joins on the foreign keys, then
aggregation) or against the pre-joined relation (``execute_prejoined``, the
paper's *mnt-join* configuration: a flat scan).  Answers are exact and keyed
identically to the PIM engine's results, so the two can be compared directly;
latency comes from the analytical :class:`~repro.columnar.cost.ColumnarCost`
model of the paper's MonetDB server.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.columnar import operators
from repro.columnar.cost import ColumnarCost
from repro.config import ColumnarServerConfig, SystemConfig
from repro.core.prejoin import DerivedAttribute
from repro.db.catalog import Database
from repro.db.query import And, Predicate, Query, attributes_referenced, conj
from repro.db.relation import Relation


@dataclass
class ColumnarExecution:
    """Result and cost of one columnar query execution."""

    query: Query
    label: str
    rows: dict[tuple[int, ...], dict[str, int]]
    cost: ColumnarCost
    time_s: float

    def scalar(self, aggregate_name: str | None = None) -> int:
        """Value of an aggregate for a query without GROUP-BY."""
        if not self.rows:
            raise ValueError(
                "query selected no records and produced no result row"
            )
        if len(self.rows) != 1 or () not in self.rows:
            raise ValueError("query produced grouped results; use .rows")
        entry = self.rows[()]
        if aggregate_name is None:
            if not entry:
                raise ValueError("query produced no aggregate values")
            aggregate_name = next(iter(entry))
        if aggregate_name not in entry:
            raise ValueError(
                f"query has no aggregate named {aggregate_name!r}; "
                f"available: {sorted(entry)}"
            )
        return entry[aggregate_name]


class ColumnarEngine:
    """Functional columnar executor with an analytical latency model."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        derived: Sequence[DerivedAttribute] = (),
        workload_scale: float = 1.0,
    ) -> None:
        """Create the engine.

        ``workload_scale`` linearly extrapolates the reported cost to a
        relation that many times larger (the functional answer is always for
        the relation actually supplied); it mirrors the ``timing_scale`` of
        the PIM engine so both baselines can be reported at the paper's
        SF=10 size while executing a laptop-sized instance.
        """
        from repro.config import DEFAULT_CONFIG

        system = config if config is not None else DEFAULT_CONFIG
        self.server: ColumnarServerConfig = system.columnar
        self.derived: dict[str, DerivedAttribute] = {d.name: d for d in derived}
        if workload_scale <= 0:
            raise ValueError("workload_scale must be positive")
        self.workload_scale = float(workload_scale)

    def _finalise(
        self, query: Query, label: str, rows, cost: ColumnarCost
    ) -> ColumnarExecution:
        scaled = cost.scaled(self.workload_scale)
        return ColumnarExecution(
            query=query, label=label, rows=rows, cost=scaled,
            time_s=scaled.time_s(self.server),
        )

    # -------------------------------------------------------------- mnt-join
    def execute_prejoined(
        self, query: Query, relation: Relation, label: str = "mnt_join"
    ) -> ColumnarExecution:
        """Execute the query against the pre-joined (flat) relation."""
        cost = ColumnarCost()
        mask = operators.select(relation, query.predicate, cost)
        indices = np.nonzero(mask)[0]

        group_columns = {
            name: operators.gather_column(relation, name, indices, cost)
            for name in query.group_by
        }
        value_columns = {}
        for aggregate in query.aggregates:
            if aggregate.attribute is None:
                continue
            value_columns[aggregate.attribute] = self._aggregate_input(
                relation, aggregate.attribute, indices, cost
            )
        rows = operators.group_aggregate(
            group_columns, value_columns, query.aggregates, cost
        )
        return self._finalise(query, label, rows, cost)

    # --------------------------------------------------------------- mnt-reg
    def execute_star(
        self, query: Query, database: Database, label: str = "mnt_reg"
    ) -> ColumnarExecution:
        """Execute the query against the original star schema (with joins)."""
        cost = ColumnarCost()
        fact = database.fact_relation
        conjuncts = self._split_conjuncts(query.predicate, database)

        # Selections pushed down to each dimension, then a semi-join into the
        # fact relation through the foreign key.
        mask = np.ones(len(fact), dtype=bool)
        for dimension_name, predicate in conjuncts.items():
            if dimension_name == database.fact:
                continue
            foreign_key = database.foreign_key_for(dimension_name)
            dimension = database.relation(dimension_name)
            keys = operators.dimension_semijoin(
                dimension, foreign_key.dimension_key, predicate, cost
            )
            mask &= operators.fact_membership(
                fact, foreign_key.fact_attribute, keys, cost
            )
        fact_predicate = conjuncts.get(database.fact)
        if fact_predicate is not None:
            mask &= operators.select(fact, fact_predicate, cost)
        indices = np.nonzero(mask)[0]

        # GROUP-BY attributes: fact attributes are gathered directly,
        # dimension attributes are fetched through the join.
        group_columns: dict[str, np.ndarray] = {}
        for name in query.group_by:
            group_columns[name] = self._resolve_attribute(
                database, fact, name, indices, cost
            )
        value_columns: dict[str, np.ndarray] = {}
        for aggregate in query.aggregates:
            if aggregate.attribute is None:
                continue
            value_columns[aggregate.attribute] = self._aggregate_input(
                fact, aggregate.attribute, indices, cost, database
            )
        rows = operators.group_aggregate(
            group_columns, value_columns, query.aggregates, cost
        )
        return self._finalise(query, label, rows, cost)

    # -------------------------------------------------------------- internals
    def _split_conjuncts(
        self, predicate: Predicate, database: Database
    ) -> dict[str, Predicate]:
        """Group top-level conjuncts by the relation that owns their attributes."""
        buckets: dict[str, list[Predicate]] = {}
        nodes = list(predicate.children) if isinstance(predicate, And) else (
            [predicate] if predicate is not None else []
        )
        for node in nodes:
            owners = {
                database.relation_of_attribute(name)
                for name in attributes_referenced(node)
            }
            if len(owners) != 1:
                raise ValueError(
                    "a conjunct referencing several relations needs an explicit join"
                )
            buckets.setdefault(owners.pop(), []).append(node)
        return {name: conj(*nodes) for name, nodes in buckets.items()}

    def _resolve_attribute(
        self,
        database: Database,
        fact: Relation,
        name: str,
        indices: np.ndarray,
        cost: ColumnarCost,
    ) -> np.ndarray:
        """Fetch an attribute for the selected fact records (join if needed)."""
        if name in fact.schema:
            return operators.gather_column(fact, name, indices, cost)
        owner = database.relation_of_attribute(name)
        foreign_key = database.foreign_key_for(owner)
        fact_keys = operators.gather_column(
            fact, foreign_key.fact_attribute, indices, cost
        )
        return operators.join_lookup(
            database.relation(owner), foreign_key.dimension_key, name, fact_keys, cost
        )

    def _aggregate_input(
        self,
        relation: Relation,
        attribute: str,
        indices: np.ndarray,
        cost: ColumnarCost,
        database: Database | None = None,
    ) -> np.ndarray:
        """Values to aggregate: a stored column or an on-the-fly derived one."""
        if attribute in relation.schema:
            return operators.gather_column(relation, attribute, indices, cost)
        spec = self.derived.get(attribute)
        if spec is None:
            if database is not None:
                fact = relation
                return self._resolve_attribute(database, fact, attribute, indices, cost)
            raise KeyError(f"unknown aggregate attribute {attribute!r}")
        left = operators.gather_column(relation, spec.left, indices, cost)
        right = operators.gather_column(relation, spec.right, indices, cost)
        cost.values_touched += len(indices)
        return spec.compute({spec.left: left, spec.right: right})
