"""A vectorised in-memory columnar engine (the MonetDB comparison baseline).

The paper compares its PIM system against MonetDB running on a two-socket
Xeon server, in two flavours: ``mnt-reg`` executes the original star schema
(with joins) and ``mnt-join`` executes the same pre-joined relation the PIM
system stores.  MonetDB itself (and the Xeon server) are not available here,
so this package provides a functional stand-in: a column-at-a-time engine
over NumPy arrays that produces exact query answers — used to cross-validate
the PIM engine — together with an analytical cost model expressing its
latency on the paper's server (memory traffic over the achievable bandwidth
and per-value CPU work over the 32 cores).
"""

from repro.columnar.engine import ColumnarEngine, ColumnarExecution
from repro.columnar.cost import ColumnarCost

__all__ = ["ColumnarEngine", "ColumnarExecution", "ColumnarCost"]
