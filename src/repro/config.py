"""System configuration for the bulk-bitwise PIM OLAP simulator.

The dataclasses in this module encode Table I of the paper ("Architecture and
system configuration"): the RRAM PIM module geometry and device parameters,
the host evaluation system, and the MonetDB comparison server.  Every other
module takes its parameters from these objects so that an experiment can
change a single field (for example the crossbar read width or the bulk-bitwise
logic cycle) and have the change propagate through timing, energy, and
endurance accounting consistently.

All times are seconds, energies are joules, and powers are watts unless a
field name says otherwise.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field

#: Functional simulation backends for the crossbar banks.  ``"packed"``
#: stores each column as row-packed uint64 words (64 rows per machine word,
#: see :mod:`repro.pim.packed`); ``"bool"`` is the byte-per-bit reference
#: implementation.  Both are bit-exact and report identical modelled stats.
BACKENDS = ("packed", "bool")


def validate_backend(backend: str, source: str = "backend=") -> str:
    """Validate a backend name, naming the ``source`` that supplied it.

    Every backend-accepting entry point (:func:`default_backend`,
    :class:`SystemConfig`, :func:`repro.pim.packed.make_bank`,
    :meth:`repro.service.service.QueryService.register_sharded`) validates
    through here, so a typo fails immediately with the same clear message
    instead of surfacing later inside allocation.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"{source}{backend!r} is not a backend; choose from {BACKENDS}"
        )
    return backend


def default_backend() -> str:
    """The simulation backend, overridable via ``REPRO_BACKEND``."""
    backend = os.environ.get("REPRO_BACKEND", "packed")
    return validate_backend(backend, source="REPRO_BACKEND=")


#: Program-execution strategies of the functional simulation.  ``"batched"``
#: additionally fuses all per-subgroup group-mask programs of a partition
#: into one multi-output DAG evaluated in a single pass (see
#: :func:`repro.pim.ir.lower_program_batch`); ``"fused"`` lowers each
#: compiled NOR program to an optimized DAG and evaluates it as whole-array
#: NumPy expressions (see :mod:`repro.pim.fused`); ``"dispatch"`` is the
#: op-by-op reference interpreter.  All three are bit-exact on the output
#: columns and charge identical modelled statistics.
EXECUTIONS = ("batched", "fused", "dispatch")


def validate_execution(execution: str, source: str = "execution=") -> str:
    """Validate an execution-strategy name, naming the ``source``."""
    if execution not in EXECUTIONS:
        raise ValueError(
            f"{source}{execution!r} is not an execution strategy; "
            f"choose from {EXECUTIONS}"
        )
    return execution


def default_execution() -> str:
    """The program-execution strategy, overridable via ``REPRO_EXECUTION``."""
    execution = os.environ.get("REPRO_EXECUTION", "batched")
    return validate_execution(execution, source="REPRO_EXECUTION=")


#: DML execution strategies.  ``"pruned"`` compiles the statement's predicate
#: once, consults the relation's zone maps/candidate cache and runs the
#: filter/clear/mux programs only on the candidate crossbars (with a
#: provably-empty early exit); ``"broadcast"`` is the reference that runs
#: every DML program on every crossbar.  Both tombstone/patch the exact same
#: rows; only the modelled cost differs.
DML_MODES = ("pruned", "broadcast")


def validate_dml_mode(mode: str, source: str = "dml=") -> str:
    """Validate a DML-mode name, naming the ``source``."""
    if mode not in DML_MODES:
        raise ValueError(
            f"{source}{mode!r} is not a DML mode; choose from {DML_MODES}"
        )
    return mode


def default_dml_mode() -> str:
    """The DML execution strategy, overridable via ``REPRO_DML``."""
    mode = os.environ.get("REPRO_DML", "pruned")
    return validate_dml_mode(mode, source="REPRO_DML=")


#: ``REPRO_TRACE`` values that keep tracing off.
_TRACE_OFF = ("", "0", "off", "false", "no")


def default_tracing() -> bool:
    """Whether span tracing is on, overridable via ``REPRO_TRACE``.

    Any value other than the off-words enables tracing; a value that looks
    like a path (contains a separator or ends in ``.jsonl``) additionally
    names the JSONL sink (see :func:`default_trace_sink`).
    """
    return os.environ.get("REPRO_TRACE", "").strip().lower() not in _TRACE_OFF


def default_trace_sink() -> str | None:
    """The JSONL sink path carried by ``REPRO_TRACE``, if it names one."""
    value = os.environ.get("REPRO_TRACE", "").strip()
    if value.lower() in _TRACE_OFF:
        return None
    if os.sep in value or value.endswith(".jsonl"):
        return value
    return None


@dataclass(frozen=True)
class CrossbarConfig:
    """Geometry and device parameters of a single memory crossbar array.

    The defaults follow Table I: 1024x512 crossbars, 16-bit fixed-length
    reads, a 30 ns bulk-bitwise logic cycle, 0.84 pJ/bit read energy,
    6.9 pJ/bit write energy and 81.6 fJ/bit for a bulk-bitwise logic
    operation.
    """

    rows: int = 1024
    columns: int = 512
    read_width_bits: int = 16
    logic_cycle_s: float = 30e-9
    read_latency_s: float = 30e-9
    write_latency_s: float = 60e-9
    read_energy_per_bit_j: float = 0.84e-12
    write_energy_per_bit_j: float = 6.9e-12
    logic_energy_per_bit_j: float = 81.6e-15

    @property
    def bits(self) -> int:
        """Total number of cells in the crossbar."""
        return self.rows * self.columns

    @property
    def row_bytes(self) -> int:
        """Number of bytes stored in one crossbar row."""
        return self.columns // 8


@dataclass(frozen=True)
class AggregationCircuitConfig:
    """Per-crossbar CMOS aggregation circuit (Section IV, Fig. 3).

    The circuit streams 16-bit words read from the crossbar through a small
    ALU supporting SUM, MIN and MAX, and writes the final value back into the
    crossbar.  Power and the area share are the synthesis results reported in
    the paper (25.4 uW per circuit, 13.9% of the chip area).
    """

    enabled: bool = True
    operations: tuple = ("sum", "min", "max")
    power_w: float = 25.4e-6
    alu_width_bits: int = 64
    cycle_s: float = 30e-9
    area_share: float = 0.139


@dataclass(frozen=True)
class PimModuleConfig:
    """A bulk-bitwise PIM module configured as one memory rank (Table I)."""

    total_capacity_bytes: int = 32 * 1024 ** 3
    huge_page_bytes: int = 2 * 1024 ** 2
    ranks: int = 1
    chips: int = 8
    crossbar: CrossbarConfig = field(default_factory=CrossbarConfig)
    aggregation_circuit: AggregationCircuitConfig = field(
        default_factory=AggregationCircuitConfig
    )
    pim_controller_power_w: float = 126e-6
    chip_area_mm2: float = 346.0
    # Latency for delivering a PIM request from the host to the module and
    # returning the acknowledgement, per request.
    request_latency_s: float = 100e-9
    # Minimum gap between successive PIM requests on the memory command bus.
    # A long-running request on one page overlaps with requests issued to
    # other pages, so this gap bounds how many pages are concurrently active
    # (which is what determines the peak chip power of Fig. 8).
    request_issue_gap_s: float = 20e-9

    @property
    def crossbars_per_page(self) -> int:
        """Number of crossbars making up one huge page."""
        xbar_bytes = self.crossbar.bits // 8
        return self.huge_page_bytes // xbar_bytes

    @property
    def records_per_page(self) -> int:
        """Records stored in one huge page (one record per crossbar row)."""
        return self.crossbars_per_page * self.crossbar.rows

    @property
    def pages_total(self) -> int:
        """Number of huge pages in the module."""
        return self.total_capacity_bytes // self.huge_page_bytes


@dataclass(frozen=True)
class HostConfig:
    """Host processor and memory system of the evaluation platform (Table I)."""

    cores: int = 6
    frequency_hz: float = 3.6e9
    l1_bytes: int = 16 * 1024
    l1_assoc: int = 4
    l2_bytes: int = 2 * 1024 ** 2
    l2_assoc: int = 16
    cache_line_bytes: int = 64
    dram_bytes: int = 32 * 1024 ** 3
    # DDR4-2400, one channel: 19.2 GB/s theoretical peak; we use an achievable
    # fraction for streaming reads.
    dram_peak_bw_bytes_per_s: float = 19.2e9
    dram_efficiency: float = 0.7
    dram_access_latency_s: float = 80e-9
    query_threads: int = 4
    # Memory-level parallelism each worker thread sustains on the dependent,
    # scattered reads of host-gb (checking the filter bit-vector and then
    # loading the matching records).
    pim_random_read_mlp: float = 2.0
    # Host-side CPU work per record folded into a hash-aggregation table
    # (hashing the subgroup identifiers plus updating the aggregate).
    host_agg_cycles_per_record: float = 40.0

    @property
    def dram_bw_bytes_per_s(self) -> float:
        """Achievable DRAM bandwidth used by the timing model."""
        return self.dram_peak_bw_bytes_per_s * self.dram_efficiency


@dataclass(frozen=True)
class ColumnarServerConfig:
    """The MonetDB comparison server (Section V-A).

    Two Xeon sockets, 16 cores each at 2.1 GHz, 256 GB of DDR4-2400.  The
    columnar engine's analytical cost model uses these figures.
    """

    sockets: int = 2
    cores_per_socket: int = 16
    frequency_hz: float = 2.1e9
    dram_bytes: int = 256 * 1024 ** 3
    channels_per_socket: int = 6
    dram_peak_bw_bytes_per_s: float = 6 * 19.2e9 * 2
    dram_efficiency: float = 0.65
    # Effective scalar work per value touched by the engine (predicate
    # evaluation, hashing, aggregation), expressed in core cycles.
    cycles_per_value: float = 6.0
    cycles_per_hash_probe: float = 24.0
    cycles_per_group_update: float = 12.0
    parallel_efficiency: float = 0.75

    @property
    def total_cores(self) -> int:
        """Total cores across both sockets."""
        return self.sockets * self.cores_per_socket

    @property
    def dram_bw_bytes_per_s(self) -> float:
        """Achievable aggregate DRAM bandwidth."""
        return self.dram_peak_bw_bytes_per_s * self.dram_efficiency


@dataclass(frozen=True)
class SystemConfig:
    """Complete simulated system: PIM module + host + comparison server."""

    pim: PimModuleConfig = field(default_factory=PimModuleConfig)
    host: HostConfig = field(default_factory=HostConfig)
    columnar: ColumnarServerConfig = field(default_factory=ColumnarServerConfig)
    #: Functional crossbar-simulation backend used for every bank allocated
    #: under this configuration.  Purely a simulator-speed knob: both
    #: backends are bit-exact and charge identical modelled statistics.
    backend: str = field(default_factory=default_backend)
    #: Program-execution strategy: batched multi-output kernels, fused DAG
    #: kernels, or op-by-op dispatch.  Like ``backend`` this is purely a
    #: simulator-speed knob — all strategies are bit-exact and charge
    #: identical modelled statistics.
    execution: str = field(default_factory=default_execution)
    #: Span tracing (see :mod:`repro.obs.trace`): engines and services built
    #: under a tracing configuration record hierarchical spans with exact
    #: ``PimStats`` charge attribution.  Off by default — the disabled path
    #: costs one branch per charge and per stage.
    tracing: bool = field(default_factory=default_tracing)

    def __post_init__(self) -> None:
        validate_backend(self.backend)
        validate_execution(self.execution)

    def replace(self, **kwargs) -> SystemConfig:
        """Return a copy of this configuration with some fields replaced."""
        return dataclasses.replace(self, **kwargs)

    def with_backend(self, backend: str) -> SystemConfig:
        """Return a copy of this configuration using ``backend`` banks."""
        return dataclasses.replace(self, backend=backend)

    def with_execution(self, execution: str) -> SystemConfig:
        """Return a copy of this configuration using ``execution`` programs."""
        return dataclasses.replace(self, execution=execution)

    def without_aggregation_circuit(self) -> SystemConfig:
        """Return a configuration with the aggregation circuit disabled.

        This is the PIMDB baseline hardware: identical in every respect
        except that PIM aggregation must be carried out with pure
        bulk-bitwise logic.
        """
        agg = dataclasses.replace(self.pim.aggregation_circuit, enabled=False)
        pim = dataclasses.replace(self.pim, aggregation_circuit=agg)
        return dataclasses.replace(self, pim=pim)


DEFAULT_CONFIG = SystemConfig()
"""The Table I configuration used throughout the paper's evaluation."""


def table1_rows() -> list:
    """Return Table I as a list of ``(section, parameter, value)`` rows.

    Used by ``benchmarks/bench_table1_config.py`` to print the configuration
    in the same shape as the paper's Table I.
    """
    cfg = DEFAULT_CONFIG
    xbar = cfg.pim.crossbar
    rows = [
        ("Single RRAM PIM Module", "Total Capacity",
         f"{cfg.pim.total_capacity_bytes // 1024 ** 3}GB"),
        ("Single RRAM PIM Module", "Huge pages size",
         f"{cfg.pim.huge_page_bytes // 1024 ** 2}MB"),
        ("Single RRAM PIM Module", "Memory ranks", str(cfg.pim.ranks)),
        ("Single RRAM PIM Module", "PIM Chips", str(cfg.pim.chips)),
        ("Single RRAM PIM Module", "Crossbar rows", str(xbar.rows)),
        ("Single RRAM PIM Module", "Crossbar columns", str(xbar.columns)),
        ("Single RRAM PIM Module", "Crossbar read",
         f"{xbar.read_width_bits} bit"),
        ("Single RRAM PIM Module", "Bulk-bitwise logic cycle",
         f"{xbar.logic_cycle_s * 1e9:.0f} ns"),
        ("Single RRAM PIM Module", "Crossbar read/write energy",
         f"{xbar.read_energy_per_bit_j * 1e12:.2f}/"
         f"{xbar.write_energy_per_bit_j * 1e12:.1f} pJ/bit"),
        ("Single RRAM PIM Module", "Bulk-bitwise logic energy",
         f"{xbar.logic_energy_per_bit_j * 1e15:.1f} fJ/bit"),
        ("Single RRAM PIM Module", "Single agg. circuit power",
         f"{cfg.pim.aggregation_circuit.power_w * 1e6:.1f} uW"),
        ("Single RRAM PIM Module", "Single PIM controller power",
         f"{cfg.pim.pim_controller_power_w * 1e6:.0f} uW"),
        ("Evaluation System", "Processor cores",
         f"{cfg.host.cores} cores, X86, OoO, "
         f"{cfg.host.frequency_hz / 1e9:.1f}GHz"),
        ("Evaluation System", "Main memory",
         f"{cfg.host.dram_bytes // 1024 ** 3}GB DRAM, DDR4-2400"),
        ("Evaluation System", "L1 cache",
         f"Private, {cfg.host.l1_bytes // 1024}KB, "
         f"{cfg.host.cache_line_bytes}B block, {cfg.host.l1_assoc}-way"),
        ("Evaluation System", "L2 cache",
         f"Shared, {cfg.host.l2_bytes // 1024 ** 2}MB, "
         f"{cfg.host.cache_line_bytes}B block, {cfg.host.l2_assoc}-way"),
        ("Evaluation System", "Coherence protocol", "MESI"),
        ("Evaluation System", "RRAM PIM modules", str(cfg.pim.ranks)),
    ]
    return rows
