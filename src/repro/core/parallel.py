"""A persistent, shareable thread pool for scattering GIL-free kernels.

The fused/batched kernels evaluate whole-array NumPy expressions, which
release the GIL — so independent kernel runs (one per shard, or one per
vertical partition inside a shard) genuinely overlap on a multi-core host.
:class:`ScatterPool` wraps one lazily created ``ThreadPoolExecutor`` that
:class:`~repro.service.service.QueryService` owns and threads through the
sharded engines, so a batch of queries reuses warm worker threads instead
of re-spawning an executor per scatter.

On a single-core host (``os.cpu_count() == 1``) the pool stays inline:
``map`` degrades to a plain loop, so there is no thread overhead to pay
where no parallel win is possible.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from collections.abc import Callable, Iterable
from typing import TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_scatter_workers() -> int:
    """Worker count for kernel scatter: one per core, at least one."""
    return max(1, os.cpu_count() or 1)


class ScatterPool:
    """A lazily started thread pool shared across shards and batches.

    The underlying executor is created on first parallel use and kept for
    the lifetime of the pool, so repeated batches do not pay thread
    startup.  With ``max_workers <= 1`` (or fewer than two items) work runs
    inline on the calling thread — results and their order are identical
    either way, since the scattered functions only perform pure functional
    kernel work.
    """

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is None:
            max_workers = default_scatter_workers()
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = int(max_workers)
        self._executor: ThreadPoolExecutor | None = None
        # Marks this pool's own worker threads: one pool is shared across
        # nesting levels (shard scatter outside, per-partition kernels
        # inside), and a nested map must run inline on the worker — blocking
        # a worker on tasks that need a worker slot would deadlock the pool.
        self._local = threading.local()

    @property
    def parallel(self) -> bool:
        """Whether this pool can actually overlap work."""
        return self.max_workers > 1

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="scatter"
            )
        return self._executor

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item, in parallel when it can pay off.

        Returns results in input order.  Falls back to an inline loop when
        the pool is single-worker, there are fewer than two items, or the
        caller already runs on one of this pool's workers (nested scatter).
        """
        items = list(items)
        if (
            not self.parallel
            or len(items) < 2
            or getattr(self._local, "worker", False)
        ):
            return [fn(item) for item in items]

        def on_worker(item: T) -> R:
            self._local.worker = True
            return fn(item)

        return list(self._ensure_executor().map(on_worker, items))

    def close(self) -> None:
        """Shut the worker threads down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> ScatterPool:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        self.close()
