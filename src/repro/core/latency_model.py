"""Latency models for the hybrid GROUP-BY decision (Section IV, Eq. 1-3).

The GROUP-BY technique must decide, per query, how many subgroups ``k`` to
aggregate with PIM (pim-gb) and how many to leave to the host (host-gb).  The
decision needs latency models for both options:

* ``T_host-gb(M, s, r) = M * (a(s) * sqrt(r) + b(s))`` — Eq. (1): linear in
  the relation size ``M`` (2 MB pages), concave in the ratio ``r`` of records
  the host must read, with lookup tables over the discrete number of 16-bit
  reads per record ``s``.
* ``T_pim-gb(M, n) = M * dT/dM(n) + T0(n)`` — Eq. (2): linear in ``M`` with
  lookup tables over the number of reads ``n`` needed to retrieve the
  aggregated attribute, independent of subgroup sizes.
* ``T_gb`` — Eq. (3): ``k`` PIM aggregations plus, unless every subgroup is
  PIM-aggregated, one host-gb pass over the remaining records.

The models can be *fitted* from measurements (the paper's methodology,
reproduced by the Fig. 4 experiment, which measures this simulator on
synthetic databases) or *derived analytically* from the simulator's own cost
model; both routes produce the same functional form and agree closely, and
the query engine accepts either.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Sequence

import numpy as np

from repro.config import SystemConfig
from repro.host import dram
from repro.host.processor import cpu_time
from repro.pim.arithmetic import BulkAggregationPlan


# --------------------------------------------------------------------------
# Measurements
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class HostGbMeasurement:
    """One measured host-gb latency point."""

    pages: int
    reads_per_record: int
    read_ratio: float
    time_s: float


@dataclass(frozen=True)
class PimGbMeasurement:
    """One measured single-subgroup pim-gb latency point."""

    pages: int
    aggregation_reads: int
    time_s: float


# --------------------------------------------------------------------------
# Eq. (1): host-gb
# --------------------------------------------------------------------------

class HostGbLatencyModel:
    """``T_host-gb(M, s, r) = M * (a(s) * sqrt(r) + b(s))``."""

    def __init__(self, a: dict[int, float], b: dict[int, float]):
        if set(a) != set(b) or not a:
            raise ValueError("a and b must be non-empty lookup tables over the same s")
        self.a = dict(a)
        self.b = dict(b)

    def predict(self, pages: float, reads_per_record: int, read_ratio: float) -> float:
        """Predicted host-gb latency in seconds."""
        s = _nearest_key(self.a, reads_per_record)
        read_ratio = min(max(read_ratio, 0.0), 1.0)
        return pages * (self.a[s] * math.sqrt(read_ratio) + self.b[s])

    def slope(self, reads_per_record: int, read_ratio: float) -> float:
        """``dT/dM`` for the given ``s`` and ``r`` (the quantity of Fig. 4b)."""
        s = _nearest_key(self.a, reads_per_record)
        return self.a[s] * math.sqrt(min(max(read_ratio, 0.0), 1.0)) + self.b[s]

    @classmethod
    def fit(cls, measurements: Iterable[HostGbMeasurement]) -> HostGbLatencyModel:
        """Fit the lookup tables from measurements (least squares per ``s``)."""
        by_s: dict[int, list[HostGbMeasurement]] = {}
        for m in measurements:
            by_s.setdefault(m.reads_per_record, []).append(m)
        if not by_s:
            raise ValueError("no measurements")
        a: dict[int, float] = {}
        b: dict[int, float] = {}
        for s, points in by_s.items():
            slopes = np.array([p.time_s / max(p.pages, 1) for p in points])
            roots = np.array([math.sqrt(min(max(p.read_ratio, 0.0), 1.0)) for p in points])
            design = np.stack([roots, np.ones_like(roots)], axis=1)
            coeffs, *_ = np.linalg.lstsq(design, slopes, rcond=None)
            a[s] = float(max(coeffs[0], 0.0))
            b[s] = float(max(coeffs[1], 0.0))
        return cls(a, b)


# --------------------------------------------------------------------------
# Eq. (2): pim-gb
# --------------------------------------------------------------------------

class PimGbLatencyModel:
    """``T_pim-gb(M, n) = M * slope(n) + intercept(n)`` for one subgroup."""

    def __init__(self, slope: dict[int, float], intercept: dict[int, float]):
        if set(slope) != set(intercept) or not slope:
            raise ValueError("slope and intercept must cover the same n values")
        self.slope_table = dict(slope)
        self.intercept_table = dict(intercept)

    def predict(self, pages: float, aggregation_reads: int) -> float:
        """Predicted latency of PIM-aggregating one subgroup, in seconds."""
        n = _nearest_key(self.slope_table, aggregation_reads)
        return pages * self.slope_table[n] + self.intercept_table[n]

    @classmethod
    def fit(cls, measurements: Iterable[PimGbMeasurement]) -> PimGbLatencyModel:
        """Fit the per-``n`` linear models from measurements."""
        by_n: dict[int, list[PimGbMeasurement]] = {}
        for m in measurements:
            by_n.setdefault(m.aggregation_reads, []).append(m)
        if not by_n:
            raise ValueError("no measurements")
        slope: dict[int, float] = {}
        intercept: dict[int, float] = {}
        for n, points in by_n.items():
            pages = np.array([p.pages for p in points], dtype=float)
            times = np.array([p.time_s for p in points], dtype=float)
            if len(points) == 1:
                slope[n] = float(times[0] / max(pages[0], 1.0))
                intercept[n] = 0.0
                continue
            design = np.stack([pages, np.ones_like(pages)], axis=1)
            coeffs, *_ = np.linalg.lstsq(design, times, rcond=None)
            slope[n] = float(max(coeffs[0], 0.0))
            intercept[n] = float(max(coeffs[1], 0.0))
        return cls(slope, intercept)


def _nearest_key(table: dict[int, float], key: int) -> int:
    if key in table:
        return key
    return min(table, key=lambda k: abs(k - key))


# --------------------------------------------------------------------------
# Eq. (3): the combined GROUP-BY cost and the choice of k
# --------------------------------------------------------------------------

class GroupByCostModel:
    """Combines the host-gb and pim-gb models into the Eq. (3) total."""

    def __init__(self, host: HostGbLatencyModel, pim: PimGbLatencyModel):
        self.host = host
        self.pim = pim

    def total_latency(
        self,
        pages: float,
        aggregation_reads: int,
        reads_per_record: int,
        k: int,
        total_subgroups: int,
        remaining_ratio: Callable[[int], float],
    ) -> float:
        """Eq. (3): k PIM aggregations plus host-gb for the rest."""
        total = k * self.pim.predict(pages, aggregation_reads)
        if k < total_subgroups:
            total += self.host.predict(pages, reads_per_record, remaining_ratio(k))
        return total

    def choose_k(
        self,
        pages: float,
        aggregation_reads: int,
        reads_per_record: int,
        total_subgroups: int,
        remaining_ratio: Callable[[int], float],
        candidate_ks: Sequence[int] | None = None,
    ) -> tuple[int, float]:
        """Return the ``k`` minimising Eq. (3) and its predicted latency."""
        if candidate_ks is None:
            candidate_ks = range(total_subgroups + 1)
        best_k, best_time = 0, float("inf")
        for k in candidate_ks:
            time_s = self.total_latency(
                pages, aggregation_reads, reads_per_record, k,
                total_subgroups, remaining_ratio,
            )
            if time_s < best_time - 1e-15:
                best_k, best_time = k, time_s
        return best_k, best_time


# --------------------------------------------------------------------------
# Analytic predictors (closed-form evaluation of the simulator's cost model)
# --------------------------------------------------------------------------

def predict_host_gb(
    config: SystemConfig,
    pages: float,
    reads_per_record: int,
    read_ratio: float,
    extra_partitions: int = 0,
) -> float:
    """Analytic host-gb latency for a relation of ``pages`` 2 MB pages.

    Components: streaming the packed filter bit-vector, the scattered reads
    of the selected records (distinct (page,row) lines per 16-bit word, which
    is where the 32-record read amplification enters), and the host-side hash
    aggregation.  ``extra_partitions`` adds bit-vector streams for additional
    vertical partitions (two-xb).
    """
    pim = config.pim
    host = config.host
    records = pages * pim.records_per_page
    rows = pim.crossbar.rows
    threads = host.query_threads
    read_ratio = min(max(read_ratio, 0.0), 1.0)

    bitvector_bytes = records / 8 * (1 + extra_partitions)
    bitvector_time = dram.stream_read_time(host, bitvector_bytes)

    touched_rows = pages * rows * (1.0 - (1.0 - read_ratio) ** pim.crossbars_per_page)
    lines = touched_rows * max(1, reads_per_record)
    record_time = dram.scattered_read_time(host, lines, threads)

    cpu = cpu_time(host, records * read_ratio, host.host_agg_cycles_per_record, threads)
    return bitvector_time + record_time + cpu


def predict_pim_gb(
    config: SystemConfig,
    pages: float,
    aggregation_reads: int,
    use_aggregation_circuit: bool = True,
    group_filter_cycles: int = 60,
    result_words: int = 3,
    transfer_per_subgroup: bool = False,
) -> float:
    """Analytic latency of PIM-aggregating one subgroup.

    Components: the subgroup filter program, the aggregation itself (with the
    aggregation circuit or with the pure bulk-bitwise reduction of the PIMDB
    baseline), the host's read of the per-crossbar results and their final
    combination.  ``transfer_per_subgroup`` adds the host-mediated transfer
    of the subgroup filter between vertical partitions (the two-xb worst
    case of Section V-A).
    """
    pim = config.pim
    host = config.host
    xbar = pim.crossbar
    threads = host.query_threads
    records = pages * pim.records_per_page

    issue = pages * pim.request_issue_gap_s
    filter_time = issue + group_filter_cycles * xbar.logic_cycle_s

    if use_aggregation_circuit:
        agg_request = (
            xbar.rows * max(1, aggregation_reads) * pim.aggregation_circuit.cycle_s
        )
    else:
        field_width = max(1, aggregation_reads) * xbar.read_width_bits
        plan = BulkAggregationPlan(
            rows=xbar.rows,
            field_offset=0,
            field_width=min(field_width, 40),
            mask_column=0,
            acc_offset=0,
            operand_offset=0,
            scratch_columns=range(16),
            operation="sum",
        )
        agg_request = plan.cost().total_cycles * xbar.logic_cycle_s
    agg_time = issue + agg_request

    result_lines = pages * result_words
    result_time = dram.scattered_read_time(host, result_lines, threads)
    combine = cpu_time(host, pages * pim.crossbars_per_page, 4.0, threads)

    transfer = 0.0
    if transfer_per_subgroup:
        bitvector_bytes = records / 8
        transfer = dram.stream_read_time(host, bitvector_bytes) + dram.write_time(
            host, bitvector_bytes, threads
        )
    return filter_time + agg_time + result_time + combine + transfer


def build_analytic_cost_model(
    config: SystemConfig,
    use_aggregation_circuit: bool = True,
    transfer_per_subgroup: bool = False,
    s_values: Sequence[int] = (1, 2, 3, 4, 6, 8),
    n_values: Sequence[int] = (1, 2, 3, 4),
    r_values: Sequence[float] = (0.0005, 0.002, 0.01, 0.05, 0.2, 0.5, 0.8, 1.0),
    reference_pages: int = 64,
) -> GroupByCostModel:
    """Derive Eq. (1)/(2) lookup tables from the analytic predictors.

    This reproduces the paper's fitting procedure (Fig. 4) against the
    simulator's closed-form cost expressions instead of end-to-end runs; the
    Fig. 4 experiment performs the measured variant and the tests check the
    two agree.
    """
    host_points = [
        HostGbMeasurement(
            pages=reference_pages,
            reads_per_record=s,
            read_ratio=r,
            time_s=predict_host_gb(config, reference_pages, s, r),
        )
        for s in s_values
        for r in r_values
    ]
    pim_points = [
        PimGbMeasurement(
            pages=pages,
            aggregation_reads=n,
            time_s=predict_pim_gb(
                config, pages, n,
                use_aggregation_circuit=use_aggregation_circuit,
                transfer_per_subgroup=transfer_per_subgroup,
            ),
        )
        for n in n_values
        for pages in (max(1, reference_pages // 8), reference_pages, reference_pages * 4)
    ]
    return GroupByCostModel(
        host=HostGbLatencyModel.fit(host_points),
        pim=PimGbLatencyModel.fit(pim_points),
    )


# --------------------------------------------------------------------------
# Depth-tracked program latency (NOR-DAG refinement)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ProgramLatencyRefinement:
    """Cycle-accurate latency bounds of one compiled NOR program.

    The modelled latency charged to :class:`~repro.pim.stats.PimStats` is the
    sequential bound — one NOR primitive per logic cycle, exactly the
    program's op count, which is what the paper's controller issues.  The
    optimized :class:`~repro.pim.ir.NorDag` additionally exposes the critical
    path (the longest dependency chain after CSE and constant folding): a
    controller that issued independent NORs to disjoint columns in the same
    cycle could not finish faster than ``depth`` cycles.  This refinement is
    reporting-only; it never alters the charged statistics.
    """

    #: Sequential NOR issue — the charged model (``ops × logic_cycle``).
    cycles: int
    #: Critical path of the optimized NOR DAG (lower bound for any schedule).
    depth: int
    #: Live NOR gates after CSE, folding and dead-column elimination.
    nor_count: int
    #: Seconds per logic cycle used for the conversions below.
    logic_cycle_s: float

    @property
    def sequential_time_s(self) -> float:
        """Latency of the modelled one-NOR-per-cycle controller."""
        return self.cycles * self.logic_cycle_s

    @property
    def critical_path_time_s(self) -> float:
        """Lower bound under unlimited same-cycle NOR issue."""
        return self.depth * self.logic_cycle_s

    @property
    def parallelism(self) -> float:
        """Average exploitable NOR-level parallelism (``cycles / depth``)."""
        return self.cycles / self.depth if self.depth else 1.0


def refine_program_latency(
    program, config: SystemConfig
) -> ProgramLatencyRefinement:
    """Depth-refined latency bounds for a compiled NOR program.

    ``program`` is a :class:`~repro.pim.logic.Program`; its lazily lowered
    NOR DAG supplies the critical-path depth and live gate count.
    """
    dag = program.ir()
    return ProgramLatencyRefinement(
        cycles=program.cycles,
        depth=dag.depth,
        nor_count=dag.nor_count,
        logic_cycle_s=config.pim.crossbar.logic_cycle_s,
    )
