"""Batched multi-output execution of the pim-gb subgroup loop.

The reference GROUP-BY path (:meth:`PimQueryEngine._execute_group_by`)
makes one full Python round-trip per subgroup: build the subgroup mask,
run the aggregation circuit per aggregate, clear the subgroup from the
filter — with every :class:`~repro.pim.stats.PimStats` charge sitting
inside that inner loop.  After PR 6 fused the kernels, this orchestration
is what Amdahl's law leaves as the end-to-end bottleneck.

This module restructures the loop without changing a single modelled
number or stored bit:

* **One multi-output kernel per partition.**  All per-subgroup group-mask
  programs are lowered together (:func:`repro.pim.ir.lower_program_batch`)
  with cross-program CSE — the per-attribute equality subcircuits that
  recur across subgroups are interned once — and evaluated in one pass
  against the pre-group-by column state.  This is sound because distinct
  full group keys select *disjoint* row sets: subgroup ``k``'s mask
  computed against the pre-loop filter state equals the sequential
  result after ``k-1`` clears.  Each combine program's remote-transfer
  bits enter the batch as a *private* kernel input.

* **One field decode per aggregate.**  The aggregation circuit's
  functional result is ``aggregate_reference`` over a decoded field and
  the subgroup mask; the field does not change between subgroups, so it
  is decoded once and reused for every subgroup.

* **A cheap charging replay.**  Modelled statistics are *order-sensitive*
  (float accumulation, per-phase power samples, request rounding), so a
  single summed charge cannot be bit-identical.  Instead the loop below
  replays, per subgroup, the exact charging calls of the reference path in
  the exact order — through the same :func:`apply_program` /
  :func:`apply_program_pruned` contract, the same transfer model and the
  charge-only circuit twin — while all expensive functional work stays
  batched.  The stored bits, dirty marks, wear counters and ``PimStats``
  are identical to per-subgroup dispatch by construction; the lockstep
  property test asserts it.
"""

from __future__ import annotations

from functools import lru_cache
from collections.abc import Sequence

import numpy as np

from repro.core.sampling import GroupKey
from repro.core.stages import apply_program, apply_program_pruned, candidate_rows
from repro.db.query import Query
from repro.host.aggregator import combine_partials
from repro.host.readpath import HostReadModel
from repro.pim.arithmetic import aggregate_reference
from repro.pim.controller import PimExecutor
from repro.pim.fused import BatchKernel, compile_batch
from repro.pim.ir import lower_program_batch
from repro.pim.logic import Program, ProgramBuilder


@lru_cache(maxsize=256)
def _compile_group_batch(
    programs: tuple[Program, ...], private_columns: tuple[int, ...]
) -> BatchKernel:
    """Compile (and memoise) the multi-output kernel of a program batch.

    Programs hash by identity, which is exactly right: the service's
    :class:`~repro.service.cache.ProgramCache` hands back the *same*
    program objects on a warm replay, so repeated batches hit this cache
    without re-lowering, while fresh program objects recompile.
    """
    return compile_batch(lower_program_batch(programs, private_columns))


def batch_kernel_cache_info():
    """Cache statistics of the batch-kernel compiler (for benchmarks)."""
    return _compile_group_batch.cache_info()


def _candidate_idx(prune, partition: int) -> np.ndarray | None:
    if prune is None:
        return None
    return np.nonzero(np.asarray(prune.candidates[partition], dtype=bool))[0]


def _pad_rows(bits: np.ndarray, bank) -> np.ndarray:
    """Expand per-record bits to the bank's full ``(count, rows)`` shape."""
    full = np.zeros((bank.count, bank.rows), dtype=bool)
    full.reshape(-1)[: bits.size] = bits
    return full


def _run_partition_batch(
    stored,
    partition: int,
    programs: tuple[Program, ...],
    private_columns: tuple[int, ...],
    private: dict | None,
    prune,
) -> list[np.ndarray]:
    """Evaluate a batch of programs on one partition's bank, functionally.

    Returns one per-record boolean result (the program's result column)
    per program, against the partition's *pre-batch* state.  Under pruning
    the kernel runs on the candidate crossbars only and the skipped
    crossbars' bits are zero, matching pruned reference execution.
    """
    allocation = stored.allocations[partition]
    bank = allocation.bank
    num_records = stored.num_records
    xbars = _candidate_idx(prune, partition)
    if xbars is not None and xbars.size == 0:
        return [np.zeros(num_records, dtype=bool) for _ in programs]
    kernel = _compile_group_batch(programs, private_columns)
    outputs = kernel.run(bank, xbars, private)
    n = bank.count if xbars is None else int(xbars.size)
    results: list[np.ndarray] = []
    for program, bindings in zip(programs, outputs):
        value = dict(bindings).get(program.result_column)
        if value is None:
            raise RuntimeError(
                "batched group program does not produce its result column"
            )
        rows_bool = np.broadcast_to(
            bank.kernel_to_bool(value), (n, bank.rows)
        )
        if xbars is None:
            full = np.empty((bank.count, bank.rows), dtype=bool)
            full[:] = rows_bool
        else:
            full = np.zeros((bank.count, bank.rows), dtype=bool)
            full[xbars] = rows_bool
        results.append(full.reshape(-1)[:num_records])
    return results


def _build_fold_programs(layout, remote_count: int) -> list[tuple[Program, int]]:
    """The per-position remote-fold programs of the reference path.

    With two or more remote partitions every transfer lands in the same
    remote column, so the running product is parked in the group column
    and folded back after the last transfer (see
    :meth:`~repro.core.stages.GroupMaskStage.prepare`).  The programs are
    identical for every subgroup, so they are built once per query.
    """
    folds: list[tuple[Program, int]] = []
    if remote_count <= 1:
        return folds
    for position in range(remote_count):
        if position == 0:
            operands = [layout.remote_column]
        else:
            operands = [layout.group_column, layout.remote_column]
        destination = (
            layout.remote_column
            if position == remote_count - 1
            else layout.group_column
        )
        builder = ProgramBuilder(layout.scratch_columns)
        if len(operands) == 1:
            folded = builder.copy(operands[0])
        else:
            folded = builder.and_(operands[0], operands[1])
        builder.store(folded, destination)
        builder.free(folded)
        folds.append((builder.build(result_column=destination), destination))
    return folds


def _build_clear_program(layout) -> Program:
    """The subgroup-clear program (filter &= ~group), built once."""
    builder = ProgramBuilder(layout.scratch_columns)
    remaining = builder.and_not(layout.filter_column, layout.group_column)
    builder.store(remaining, layout.filter_column)
    builder.free(remaining)
    return builder.build(result_column=layout.filter_column)


def run_group_by_batched(
    engine,
    query: Query,
    primary: int,
    mask: np.ndarray,
    keys: Sequence[GroupKey],
    executor: PimExecutor,
    read_model: HostReadModel,
    prune=None,
) -> dict[GroupKey, dict[str, int]]:
    """pim-gb over ``keys`` with batched kernels and a charging replay.

    Bit-identical with the per-subgroup reference loop of
    :meth:`PimQueryEngine._execute_group_by` — result rows, stored bits,
    dirty marks, wear and ``PimStats`` — requires the aggregation circuit
    (the bulk-bitwise fallback needs the stored mask column per subgroup).
    """
    stored = engine.stored
    compiler = engine.compiler
    group_attributes = list(query.group_by)
    primary_layout = stored.layouts[primary]
    primary_allocation = stored.allocations[primary]
    bank = primary_allocation.bank

    def pages_for(partition: int) -> float:
        return stored.allocations[partition].pages * engine.timing_scale

    # The reference builds its per-partition split by iterating the key's
    # group values in attribute order; reproduce the same partition order.
    by_partition: dict[int, list[str]] = {}
    for name in group_attributes:
        by_partition.setdefault(stored.partition_of(name), []).append(name)
    remote_partitions = [p for p in by_partition if p != primary]
    include_remote = bool(remote_partitions)

    def values_for(key: GroupKey, names: Sequence[str]) -> dict[str, int]:
        mapping = dict(zip(group_attributes, key))
        return {name: mapping[name] for name in names}

    # ---------------------------------------------- batched mask computation
    # All of this runs against the pre-group-by column state, before the
    # charging replay performs any writes.
    remote_programs: dict[int, tuple[Program, ...]] = {}

    def remote_batch(partition: int) -> list[np.ndarray]:
        return _run_partition_batch(
            stored, partition, remote_programs[partition], (), None, prune
        )

    for partition in remote_partitions:
        layout = stored.layouts[partition]
        remote_programs[partition] = tuple(
            compiler.group_program(values_for(key, by_partition[partition]), layout)
            for key in keys
        )
    pool = getattr(engine, "scatter_pool", None)
    if pool is not None and len(remote_partitions) > 1:
        batches = pool.map(remote_batch, remote_partitions)
    else:
        batches = [remote_batch(partition) for partition in remote_partitions]
    remote_group_bits: dict[int, list[np.ndarray]] = dict(
        zip(remote_partitions, batches)
    )

    remote_bits: list[np.ndarray] | None = None
    if include_remote:
        remote_bits = []
        for index in range(len(keys)):
            accumulated: np.ndarray | None = None
            for partition in remote_partitions:
                bits = remote_group_bits[partition][index]
                accumulated = bits if accumulated is None else accumulated & bits
            remote_bits.append(accumulated)

    combine_programs = tuple(
        compiler.combine_program(
            values_for(key, by_partition.get(primary, [])),
            primary_layout,
            include_remote,
        )
        for key in keys
    )
    private_columns: tuple[int, ...] = ()
    private: dict | None = None
    primary_idx = _candidate_idx(prune, primary)
    if include_remote:
        private_columns = (primary_layout.remote_column,)
        private = {}
        for index in range(len(keys)):
            padded = _pad_rows(remote_bits[index], bank)
            if primary_idx is not None:
                padded = padded[primary_idx]
            private[(index, primary_layout.remote_column)] = bank.kernel_from_bool(
                padded
            )
    mask_bits = _run_partition_batch(
        stored, primary, combine_programs, private_columns, private, prune
    )

    # ------------------------------------------------- batched bookkeeping
    # Field decodes are shared across subgroups (the data fields do not
    # change during the group-by), and subgroup membership of the selected
    # rows is derived in one gather instead of one column sweep per key.
    field_cache: dict[tuple[int, int], np.ndarray] = {}
    selected = np.nonzero(mask)[0]
    if selected.size:
        columns = [
            stored.relation.column(name)[selected].tolist()
            for name in group_attributes
        ]
        present_keys = set(zip(*columns))
    else:
        present_keys = set()

    fold_programs = _build_fold_programs(primary_layout, len(remote_partitions))
    clear_program = _build_clear_program(primary_layout)
    accumulator_width = primary_layout.accumulator_width
    min_identity = engine.aggregation_stage.min_identity(primary)
    primary_candidates = prune.candidates[primary] if prune is not None else None
    fraction = 1.0
    if prune is not None:
        fraction = (
            float(np.count_nonzero(primary_candidates))
            / primary_allocation.crossbars
        )

    def replay_apply(partition, program, bits, phase="pim-gb-filter"):
        """One reference-ordered program charge with known result bits."""
        if prune is not None:
            apply_program_pruned(
                stored, partition, program, executor, phase,
                pages=pages_for(partition),
                candidates=prune.candidates[partition],
                result_bits=bits,
            )
        else:
            apply_program(
                stored, partition, program, executor, phase,
                pages=pages_for(partition), result_bits=bits,
            )

    # --------------------------------------------------- per-subgroup replay
    rows: dict[GroupKey, dict[str, int]] = {}
    filter_bits = np.asarray(mask, dtype=bool).copy()
    for index, key in enumerate(keys):
        # Remote subgroup programs, transfers and folds, in reference order.
        running: np.ndarray | None = None
        for position, partition in enumerate(remote_partitions):
            layout = stored.layouts[partition]
            replay_apply(
                partition,
                remote_programs[partition][index],
                remote_group_bits[partition][index],
            )
            transferred = read_model.transfer_bit_column(
                stored,
                partition, layout.group_column,
                primary, primary_layout.remote_column,
                phase="pim-gb-transfer",
            )
            running = transferred if running is None else running & transferred
            if fold_programs:
                fold_program, destination = fold_programs[position]
                fold_bits = running
                if prune is not None:
                    fold_bits = fold_bits & candidate_rows(
                        stored, primary, primary_candidates
                    )
                # The final fold into the remote column stays a broadcast
                # in the reference; only group-column folds run pruned.
                if prune is not None and destination == primary_layout.group_column:
                    replay_apply(primary, fold_program, fold_bits)
                else:
                    apply_program(
                        stored, primary, fold_program, executor,
                        "pim-gb-filter", pages=pages_for(primary),
                        result_bits=fold_bits,
                    )

        # Subgroup mask (combine program) on the primary partition.
        subgroup_bits = mask_bits[index]
        replay_apply(primary, combine_programs[index], subgroup_bits)
        mask_rows = _pad_rows(subgroup_bits, bank)

        # Aggregates from the cached field decodes, charged per invocation.
        entry: dict[str, int | None] = {}
        for aggregate in query.aggregates:
            if aggregate.op == "count":
                field_values = mask_rows.astype(np.uint64)
                field_width, operation = 1, "sum"
            else:
                field_offset = primary_layout.field_offset(aggregate.attribute)
                field_width = primary_layout.field_width(aggregate.attribute)
                operation = aggregate.op
                cache_key = (field_offset, field_width)
                field_values = field_cache.get(cache_key)
                if field_values is None:
                    field_values = bank.read_field_all(field_offset, field_width)
                    field_cache[cache_key] = field_values
            partials = aggregate_reference(
                field_values, mask_rows, operation, accumulator_width
            )
            if primary_idx is not None:
                partials = partials[primary_idx]
            if primary_idx is None or primary_idx.size:
                bank.write_field_row(
                    0, primary_layout.result_offset, accumulator_width,
                    partials, xbars=primary_idx,
                )
                executor.charge_aggregation_circuit(
                    bank, field_width,
                    pages=pages_for(primary),
                    result_width=accumulator_width,
                    crossbars=primary_candidates,
                    add_wear=False,
                )
            read_model.read_aggregation_results(
                stored, primary, pages_fraction=fraction
            )
            if aggregate.op == "min":
                partials = partials[partials != min_identity]
            entry[aggregate.name] = combine_partials(
                [partials], operation, engine.config.host, executor.stats
            )

        if key in present_keys:
            rows[key] = engine._finalize_entry(entry, primary)

        # Clear the subgroup from the filter column.
        filter_bits = filter_bits & ~subgroup_bits
        replay_apply(primary, clear_program, filter_bits)
    return rows
