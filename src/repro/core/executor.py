"""The end-to-end PIM query engine.

:class:`PimQueryEngine` executes select-from-where-group-by queries against a
relation stored in bulk-bitwise PIM memory (normally the pre-joined star
schema), combining every mechanism of the paper:

1. the WHERE clause is compiled into NOR programs and evaluated inside the
   memory, one result bit per record;
2. queries without GROUP-BY aggregate that bit-vector-selected attribute with
   the per-crossbar aggregation circuit (or, for the PIMDB baseline
   configuration, with the pure bulk-bitwise reduction), after which the host
   reads one partial result per crossbar and combines them;
3. GROUP-BY queries first sample one 2 MB page to estimate subgroup sizes,
   let the :class:`~repro.core.groupby.GroupByPlanner` minimise Eq. (3), then
   PIM-aggregate the ``k`` chosen subgroups and hand the remaining records to
   a host-side hash aggregation (host-gb);
4. vertically partitioned relations (two-xb) move intermediate bit-vectors
   between the partitions through the host, including once per PIM-aggregated
   subgroup — the worst-case placement evaluated in Section V-A.

Every execution returns a :class:`QueryExecution` carrying the functional
result rows (bit-exact with the reference engines), the accumulated
latency/energy/power statistics and the planning metadata reported in
Table II.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.config import SystemConfig
from repro.core.groupby import GroupByPlan, GroupByPlanner
from repro.core.latency_model import GroupByCostModel, build_analytic_cost_model
from repro.core.sampling import GroupKey, SubgroupEstimate, estimate_subgroups
from repro.db.compiler import compile_group_predicate, compile_predicate, partition_conjuncts
from repro.db.query import (
    Aggregate,
    Predicate,
    Query,
    And,
    attributes_referenced,
    conj,
    evaluate_predicate,
)
from repro.db.storage import StoredRelation
from repro.host.aggregator import combine_partials, host_group_aggregate, merge_group_results
from repro.host.readpath import HostReadModel
from repro.pim.arithmetic import BulkAggregationPlan
from repro.pim.controller import PimExecutor
from repro.pim.logic import ProgramBuilder
from repro.pim.stats import PimStats


@dataclass
class QueryExecution:
    """Result and measurements of one query execution."""

    query: Query
    label: str
    rows: Dict[GroupKey, Dict[str, int]]
    stats: PimStats
    selectivity: float
    total_subgroups: int
    subgroups_in_sample: int
    pim_subgroups: int
    max_writes_per_row: int
    plan: Optional[GroupByPlan] = None

    @property
    def time_s(self) -> float:
        """End-to-end execution latency (Fig. 6)."""
        return self.stats.total_time_s

    @property
    def energy_j(self) -> float:
        """PIM memory energy (Fig. 7)."""
        return self.stats.total_energy_j

    @property
    def peak_chip_power_w(self) -> float:
        """Peak power of a single PIM chip (Fig. 8)."""
        return self.stats.peak_chip_power_w

    def scalar(self, aggregate_name: Optional[str] = None) -> int:
        """Value of an aggregate for a query without GROUP-BY."""
        if len(self.rows) != 1 or () not in self.rows:
            raise ValueError("query produced grouped results; use .rows")
        entry = self.rows[()]
        if aggregate_name is None:
            aggregate_name = next(iter(entry))
        return entry[aggregate_name]

    def decoded_rows(self, schema) -> Dict[Tuple, Dict[str, int]]:
        """Result rows with the GROUP-BY key translated to raw values."""
        decoded = {}
        for key, entry in self.rows.items():
            decoded_key = tuple(
                schema.attribute(name).decode_value(code)
                for name, code in zip(self.query.group_by, key)
            )
            decoded[decoded_key] = dict(entry)
        return decoded


class PimQueryEngine:
    """Executes queries on a PIM-resident (pre-joined) relation."""

    def __init__(
        self,
        stored: StoredRelation,
        config: Optional[SystemConfig] = None,
        label: str = "one_xb",
        cost_model: Optional[GroupByCostModel] = None,
        sample_pages: int = 1,
        timing_scale: float = 1.0,
    ) -> None:
        """Create an engine over a stored relation.

        Args:
            stored: The PIM-resident relation (usually the pre-joined SSB
                relation).
            config: System configuration; defaults to the module's.
            label: Name used in reports (``one_xb``, ``two_xb``, ``pimdb``).
            cost_model: GROUP-BY cost model; derived analytically if omitted.
            sample_pages: Pages sampled for subgroup-size estimation.
            timing_scale: Linear extrapolation factor for the timing, energy
                and power accounting.  The functional execution always runs
                on the stored relation as-is; with ``timing_scale > 1`` the
                reported costs (and the planner's decisions) correspond to a
                relation that many times larger — e.g. a laptop-sized SSB
                instance with ``timing_scale`` chosen so the modelled size is
                the paper's SF=10.  Per-row wear is unaffected (it does not
                depend on the number of pages).
        """
        if timing_scale <= 0:
            raise ValueError("timing_scale must be positive")
        self.stored = stored
        self.config = config if config is not None else stored.module.system_config
        self.label = label
        self.sample_pages = sample_pages
        self.timing_scale = float(timing_scale)
        self.use_aggregation_circuit = self.config.pim.aggregation_circuit.enabled
        self.transfer_per_subgroup = stored.partitions > 1
        if cost_model is None:
            cost_model = build_analytic_cost_model(
                self.config,
                use_aggregation_circuit=self.use_aggregation_circuit,
                transfer_per_subgroup=self.transfer_per_subgroup,
            )
        self.cost_model = cost_model
        self.planner = GroupByPlanner(cost_model)

    def _timing_pages(self, partition: int) -> float:
        """Page count used for timing purposes (scaled)."""
        return self.stored.allocations[partition].pages * self.timing_scale

    # ------------------------------------------------------------------ main
    def execute(self, query: Query) -> QueryExecution:
        """Execute one query and return its results and measurements."""
        stats = PimStats()
        executor = PimExecutor(self.config, stats)
        read_model = HostReadModel(
            self.config, stats, traffic_scale=self.timing_scale
        )
        wear_before = self.stored.wear_snapshot()

        primary = self._primary_partition(query)
        self._run_filter(query, primary, executor, read_model)
        mask = self.stored.filter_mask(primary)
        selectivity = float(mask.mean()) if len(mask) else 0.0

        plan: Optional[GroupByPlan] = None
        if not query.group_by:
            rows = {(): self._aggregate_all(query, primary, executor, read_model)}
            total_subgroups, in_sample, pim_subgroups = 1, 0, 1
        else:
            rows, plan = self._execute_group_by(
                query, primary, mask, executor, read_model
            )
            total_subgroups = plan.total_subgroups
            in_sample = plan.estimate.observed_subgroups
            pim_subgroups = plan.k

        max_writes = self.stored.max_writes_since(wear_before)
        stats.observe_writes_per_row(max_writes)
        return QueryExecution(
            query=query,
            label=self.label,
            rows=rows,
            stats=stats,
            selectivity=selectivity,
            total_subgroups=total_subgroups,
            subgroups_in_sample=in_sample,
            pim_subgroups=pim_subgroups,
            max_writes_per_row=max_writes,
            plan=plan,
        )

    # ---------------------------------------------------------------- filter
    def _primary_partition(self, query: Query) -> int:
        """Partition holding the aggregated attributes (and the final filter)."""
        partitions = {
            self.stored.partition_of(a.attribute)
            for a in query.aggregates
            if a.attribute is not None
        }
        if len(partitions) > 1:
            raise NotImplementedError(
                "aggregated attributes must share a vertical partition"
            )
        return partitions.pop() if partitions else 0

    def _run_filter(
        self,
        query: Query,
        primary: int,
        executor: PimExecutor,
        read_model: HostReadModel,
    ) -> None:
        """Evaluate the WHERE clause; the combined result lands in ``primary``."""
        schema = self.stored.relation.schema
        per_partition = partition_conjuncts(
            query.predicate, self.stored.partition_attributes
        )
        for index, predicate in enumerate(per_partition):
            layout = self.stored.layouts[index]
            allocation = self.stored.allocations[index]
            program = compile_predicate(predicate, schema, layout)
            executor.run_program(
                allocation.bank, program,
                pages=self._timing_pages(index), phase="filter",
            )
        # Fold the other partitions' filter bits into the primary partition.
        for index, predicate in enumerate(per_partition):
            if index == primary or predicate is None:
                continue
            self._transfer_and_combine(
                executor, read_model,
                source_partition=index,
                source_column=self.stored.layouts[index].filter_column,
                target_partition=primary,
                target_column=self.stored.layouts[primary].filter_column,
                phase="filter-combine",
            )

    def _transfer_and_combine(
        self,
        executor: PimExecutor,
        read_model: HostReadModel,
        source_partition: int,
        source_column: int,
        target_partition: int,
        target_column: int,
        phase: str,
    ) -> None:
        """Move a bit column between partitions and AND it into the target."""
        target_layout = self.stored.layouts[target_partition]
        read_model.transfer_bit_column(
            self.stored,
            source_partition, source_column,
            target_partition, target_layout.remote_column,
            phase=phase,
        )
        builder = ProgramBuilder(target_layout.scratch_columns)
        combined = builder.and_(target_column, target_layout.remote_column)
        builder.store(combined, target_column)
        builder.free(combined)
        executor.run_program(
            self.stored.allocations[target_partition].bank,
            builder.build(),
            pages=self._timing_pages(target_partition),
            phase=phase,
        )

    # ----------------------------------------------------------- aggregation
    def _aggregate_all(
        self,
        query: Query,
        primary: int,
        executor: PimExecutor,
        read_model: HostReadModel,
    ) -> Dict[str, int]:
        """Aggregate the filtered records of the whole relation with PIM."""
        layout = self.stored.layouts[primary]
        return {
            aggregate.name: self._pim_aggregate(
                aggregate, primary, layout.filter_column, executor, read_model
            )
            for aggregate in query.aggregates
        }

    def _pim_aggregate(
        self,
        aggregate: Aggregate,
        partition: int,
        mask_column: int,
        executor: PimExecutor,
        read_model: HostReadModel,
    ) -> int:
        """One PIM aggregation (circuit or bulk-bitwise) plus host combination."""
        layout = self.stored.layouts[partition]
        allocation = self.stored.allocations[partition]
        if aggregate.op == "count":
            field_offset, field_width, operation = mask_column, 1, "sum"
        else:
            field_offset = layout.field_offset(aggregate.attribute)
            field_width = layout.field_width(aggregate.attribute)
            operation = aggregate.op

        if self.use_aggregation_circuit:
            partials = executor.aggregate_with_circuit(
                allocation.bank,
                field_offset, field_width, mask_column,
                layout.result_offset,
                pages=self._timing_pages(partition),
                operation=operation,
                result_width=layout.accumulator_width,
            )
        else:
            if layout.operand_offset is None:
                raise RuntimeError(
                    "bulk-bitwise aggregation needs an operand area; store the "
                    "relation with reserve_bulk_aggregation=True"
                )
            plan = BulkAggregationPlan(
                rows=allocation.rows_per_crossbar,
                field_offset=field_offset,
                field_width=field_width,
                mask_column=mask_column,
                acc_offset=layout.accumulator_offset,
                operand_offset=layout.operand_offset,
                scratch_columns=layout.scratch_columns,
                operation=operation,
            )
            partials = executor.aggregate_bulk_bitwise(
                allocation.bank, plan, pages=self._timing_pages(partition)
            )
        read_model.read_aggregation_results(self.stored, partition)
        if aggregate.op == "min":
            # Crossbars with no selected record hold the identity (all ones);
            # they do not contribute to the final minimum.
            identity = (1 << layout.accumulator_width) - 1
            partials = partials[partials != identity]
            if partials.size == 0:
                return 0
        return combine_partials(
            [partials], operation, self.config.host, executor.stats
        )

    # ------------------------------------------------------------- GROUP-BY
    def _execute_group_by(
        self,
        query: Query,
        primary: int,
        mask: np.ndarray,
        executor: PimExecutor,
        read_model: HostReadModel,
    ) -> Tuple[Dict[GroupKey, Dict[str, int]], GroupByPlan]:
        group_attributes = list(query.group_by)
        candidates = self._candidate_groups(query)
        estimate = estimate_subgroups(
            self.stored, group_attributes, candidates,
            read_model=read_model,
            sample_pages=self.sample_pages,
            filter_partition=primary,
        )
        aggregation_reads = self._aggregation_reads(query, primary)
        reads_per_record = self._reads_per_record(query)
        plan = self.planner.plan(
            estimate,
            pages=self.stored.pages * self.timing_scale,
            aggregation_reads=aggregation_reads,
            reads_per_record=reads_per_record,
            total_subgroups=len(candidates),
        )

        rows: Dict[GroupKey, Dict[str, int]] = {}
        for key in plan.pim_groups:
            entry = self._pim_aggregate_group(
                query, primary, group_attributes, key, executor, read_model
            )
            if self._group_selected(mask, group_attributes, key):
                rows[key] = entry
            self._clear_group_from_filter(primary, executor)

        if plan.host_pass_needed:
            host_rows = self._host_group_by(
                query, primary, group_attributes, executor, read_model
            )
            rows = merge_group_results(rows, host_rows, query.aggregates)
        return rows, plan

    def _pim_aggregate_group(
        self,
        query: Query,
        primary: int,
        group_attributes: Sequence[str],
        key: GroupKey,
        executor: PimExecutor,
        read_model: HostReadModel,
    ) -> Dict[str, int]:
        """pim-gb for one subgroup: subgroup filter, aggregate, combine."""
        group_values = dict(zip(group_attributes, key))
        mask_column = self._prepare_group_mask(
            group_values, primary, executor, read_model
        )
        return {
            aggregate.name: self._pim_aggregate(
                aggregate, primary, mask_column, executor, read_model
            )
            for aggregate in query.aggregates
        }

    def _prepare_group_mask(
        self,
        group_values: Dict[str, int],
        primary: int,
        executor: PimExecutor,
        read_model: HostReadModel,
    ) -> int:
        """Build the subgroup mask in the primary partition's group column."""
        by_partition: Dict[int, Dict[str, int]] = {}
        for name, value in group_values.items():
            by_partition.setdefault(self.stored.partition_of(name), {})[name] = value

        primary_layout = self.stored.layouts[primary]
        # Remote partitions first: evaluate their equality conjunctions and
        # ship the resulting bit-vector to the primary partition.
        remote_ready = False
        for partition, values in by_partition.items():
            if partition == primary:
                continue
            layout = self.stored.layouts[partition]
            allocation = self.stored.allocations[partition]
            program = compile_group_predicate(
                values, layout, filter_column=layout.valid_column
            )
            executor.run_program(
                allocation.bank, program,
                pages=self._timing_pages(partition), phase="pim-gb-filter",
            )
            read_model.transfer_bit_column(
                self.stored,
                partition, layout.group_column,
                primary, primary_layout.remote_column,
                phase="pim-gb-transfer",
            )
            remote_ready = True

        builder = ProgramBuilder(primary_layout.scratch_columns)
        terms = []
        for name, value in by_partition.get(primary, {}).items():
            terms.append(
                builder.eq_const(primary_layout.field_columns(name), int(value))
            )
        if remote_ready:
            terms.append(builder.copy(primary_layout.remote_column))
        local = builder.and_reduce(terms, consume=True) if terms else builder.const(True)
        combined = builder.and_(local, primary_layout.filter_column)
        builder.free(local)
        builder.store(combined, primary_layout.group_column)
        builder.free(combined)
        executor.run_program(
            self.stored.allocations[primary].bank,
            builder.build(),
            pages=self._timing_pages(primary),
            phase="pim-gb-filter",
        )
        return primary_layout.group_column

    def _clear_group_from_filter(self, primary: int, executor: PimExecutor) -> None:
        """Remove a PIM-aggregated subgroup's records from the host filter."""
        layout = self.stored.layouts[primary]
        builder = ProgramBuilder(layout.scratch_columns)
        remaining = builder.and_not(layout.filter_column, layout.group_column)
        builder.store(remaining, layout.filter_column)
        builder.free(remaining)
        executor.run_program(
            self.stored.allocations[primary].bank,
            builder.build(),
            pages=self._timing_pages(primary),
            phase="pim-gb-filter",
        )

    def _host_group_by(
        self,
        query: Query,
        primary: int,
        group_attributes: Sequence[str],
        executor: PimExecutor,
        read_model: HostReadModel,
    ) -> Dict[GroupKey, Dict[str, int]]:
        """host-gb: read the remaining selected records and hash-aggregate."""
        mask = read_model.read_filter_bitvector(self.stored, primary)
        indices = np.nonzero(mask)[0]
        needed = list(group_attributes) + [
            a.attribute for a in query.aggregates if a.attribute is not None
        ]
        by_partition: Dict[int, List[str]] = {}
        for name in dict.fromkeys(needed):
            by_partition.setdefault(self.stored.partition_of(name), []).append(name)
        values: Dict[str, np.ndarray] = {}
        for partition, names in by_partition.items():
            values.update(
                read_model.read_records(self.stored, partition, indices, names)
            )
        group_columns = {name: values[name] for name in group_attributes}
        value_columns = {
            a.attribute: values[a.attribute]
            for a in query.aggregates
            if a.attribute is not None
        }
        return host_group_aggregate(
            group_columns,
            value_columns,
            query.aggregates,
            self.config.host,
            stats=executor.stats,
            threads=self.config.host.query_threads,
            workload_scale=self.timing_scale,
        )

    # ------------------------------------------------------------- metadata
    def _aggregation_reads(self, query: Query, primary: int) -> int:
        """The paper's ``n``: 16-bit reads to fetch the aggregated attributes."""
        layout = self.stored.layouts[primary]
        read_width = layout.read_width_bits
        total = 0
        for aggregate in query.aggregates:
            if aggregate.attribute is None:
                total += 1
            else:
                total += int(math.ceil(layout.field_width(aggregate.attribute) / read_width))
        return max(1, total)

    def _reads_per_record(self, query: Query) -> int:
        """The paper's ``s``: 16-bit reads per record for host-gb."""
        needed = list(query.group_by) + [
            a.attribute for a in query.aggregates if a.attribute is not None
        ]
        by_partition: Dict[int, List[str]] = {}
        for name in dict.fromkeys(needed):
            by_partition.setdefault(self.stored.partition_of(name), []).append(name)
        total = 0
        for partition, names in by_partition.items():
            total += len(self.stored.layouts[partition].words_for_fields(names))
        return max(1, total)

    def _candidate_groups(self, query: Query) -> List[GroupKey]:
        """Enumerate the potential subgroups from query and catalog knowledge.

        Following the paper's "total number of potential subgroups according
        to query and database details" (Table II), the candidate set is the
        Cartesian product of the per-attribute domains of the GROUP-BY
        attributes, where each attribute's domain is restricted by the
        predicate conjuncts on attributes of the *same* source relation.
        This captures the functional dependencies inside a dimension — for
        example ``p_brand1`` is restricted to the 40 brands of the selected
        ``p_category`` — and is catalog information, not charged to the
        query's execution time.
        """
        import itertools

        relation = self.stored.relation
        schema = relation.schema
        predicate = query.predicate
        nodes = list(predicate.children) if isinstance(predicate, And) else (
            [predicate] if predicate is not None else []
        )

        domains: List[List[int]] = []
        for group_attribute in query.group_by:
            source = schema.attribute(group_attribute).source
            same_source_conjuncts = [
                node for node in nodes
                if attributes_referenced(node)
                and all(
                    schema.attribute(name).source == source
                    for name in attributes_referenced(node)
                )
            ]
            mask = evaluate_predicate(conj(*same_source_conjuncts), relation)
            values = np.unique(relation.column(group_attribute)[mask])
            if values.size == 0:
                values = np.unique(relation.column(group_attribute))
            domains.append([int(v) for v in values])

        if not domains:
            return []
        candidates = [tuple(combo) for combo in itertools.product(*domains)]
        return candidates

    def _group_selected(
        self, mask: np.ndarray, group_attributes: Sequence[str], key: GroupKey
    ) -> bool:
        """Whether any record selected by the query belongs to the subgroup."""
        member = mask.copy()
        for name, value in zip(group_attributes, key):
            member &= self.stored.relation.column(name) == np.uint64(value)
        return bool(member.any())
