"""The end-to-end PIM query engine.

:class:`PimQueryEngine` executes select-from-where-group-by queries against a
relation stored in bulk-bitwise PIM memory (normally the pre-joined star
schema), combining every mechanism of the paper:

1. the WHERE clause is compiled into NOR programs and evaluated inside the
   memory, one result bit per record;
2. queries without GROUP-BY aggregate that bit-vector-selected attribute with
   the per-crossbar aggregation circuit (or, for the PIMDB baseline
   configuration, with the pure bulk-bitwise reduction), after which the host
   reads one partial result per crossbar and combines them;
3. GROUP-BY queries first sample one 2 MB page to estimate subgroup sizes,
   let the :class:`~repro.core.groupby.GroupByPlanner` minimise Eq. (3), then
   PIM-aggregate the ``k`` chosen subgroups and hand the remaining records to
   a host-side hash aggregation (host-gb);
4. vertically partitioned relations (two-xb) move intermediate bit-vectors
   between the partitions through the host, including once per PIM-aggregated
   subgroup — the worst-case placement evaluated in Section V-A.

Every execution returns a :class:`QueryExecution` carrying the functional
result rows (bit-exact with the reference engines), the accumulated
latency/energy/power statistics and the planning metadata reported in
Table II.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.config import SystemConfig
from repro.core.groupby import GroupByPlan, GroupByPlanner
from repro.core.latency_model import GroupByCostModel, build_analytic_cost_model
from repro.core.sampling import GroupKey, estimate_subgroups
from repro.core.stages import (
    AggregationStage,
    FilterStage,
    GroupMaskStage,
    ProgramCompiler,
)
from repro.db.query import (
    Query,
    And,
    attributes_referenced,
    conj,
    evaluate_predicate,
)
from repro.db.storage import StoredRelation
from repro.host.aggregator import host_group_aggregate, merge_group_results
from repro.host.readpath import HostReadModel
from repro.obs.trace import tracer_from_config
from repro.pim.controller import PimExecutor
from repro.pim.stats import PimStats


@dataclass
class QueryExecution:
    """Result and measurements of one query execution."""

    query: Query
    label: str
    rows: dict[GroupKey, dict[str, int]]
    stats: PimStats
    selectivity: float
    total_subgroups: int
    subgroups_in_sample: int
    pim_subgroups: int
    max_writes_per_row: int
    plan: GroupByPlan | None = None
    #: Crossbars a full broadcast would touch (summed over the partitions).
    crossbars_total: int = 0
    #: Crossbars the filter actually scanned (== total without pruning).
    crossbars_scanned: int = 0
    #: Planner's selectivity estimate (``None`` when no planner consulted).
    estimated_selectivity: float | None = None

    @property
    def time_s(self) -> float:
        """End-to-end execution latency (Fig. 6)."""
        return self.stats.total_time_s

    @property
    def energy_j(self) -> float:
        """PIM memory energy (Fig. 7)."""
        return self.stats.total_energy_j

    @property
    def peak_chip_power_w(self) -> float:
        """Peak power of a single PIM chip (Fig. 8)."""
        return self.stats.peak_chip_power_w

    def scalar(self, aggregate_name: str | None = None) -> int:
        """Value of an aggregate for a query without GROUP-BY."""
        if not self.rows:
            raise ValueError(
                "query selected no records and produced no result row"
            )
        if len(self.rows) != 1 or () not in self.rows:
            raise ValueError("query produced grouped results; use .rows")
        entry = self.rows[()]
        if aggregate_name is None:
            if not entry:
                raise ValueError("query produced no aggregate values")
            aggregate_name = next(iter(entry))
        if aggregate_name not in entry:
            raise ValueError(
                f"query has no aggregate named {aggregate_name!r}; "
                f"available: {sorted(entry)}"
            )
        return entry[aggregate_name]

    def decoded_rows(self, schema) -> dict[tuple, dict[str, int]]:
        """Result rows with the GROUP-BY key translated to raw values."""
        decoded = {}
        for key, entry in self.rows.items():
            decoded_key = tuple(
                schema.attribute(name).decode_value(code)
                for name, code in zip(self.query.group_by, key)
            )
            decoded[decoded_key] = dict(entry)
        return decoded


class PimQueryEngine:
    """Executes queries on a PIM-resident (pre-joined) relation."""

    def __init__(
        self,
        stored: StoredRelation,
        config: SystemConfig | None = None,
        label: str = "one_xb",
        cost_model: GroupByCostModel | None = None,
        sample_pages: int = 1,
        timing_scale: float = 1.0,
        compiler: ProgramCompiler | None = None,
        vectorized: bool = False,
        pruning: bool = False,
        filter_stage: FilterStage | None = None,
        group_stage: GroupMaskStage | None = None,
        aggregation_stage: AggregationStage | None = None,
        scatter_pool=None,
        tracer=None,
    ) -> None:
        """Create an engine over a stored relation.

        Args:
            stored: The PIM-resident relation (usually the pre-joined SSB
                relation).
            config: System configuration; defaults to the module's.
            label: Name used in reports (``one_xb``, ``two_xb``, ``pimdb``).
            cost_model: GROUP-BY cost model; derived analytically if omitted.
            sample_pages: Pages sampled for subgroup-size estimation.
            timing_scale: Linear extrapolation factor for the timing, energy
                and power accounting.  The functional execution always runs
                on the stored relation as-is; with ``timing_scale > 1`` the
                reported costs (and the planner's decisions) correspond to a
                relation that many times larger — e.g. a laptop-sized SSB
                instance with ``timing_scale`` chosen so the modelled size is
                the paper's SF=10.  Per-row wear is unaffected (it does not
                depend on the number of pages).
            compiler: Program compiler shared by the stages; inject a
                :class:`~repro.service.cache.ProgramCache` to reuse compiled
                NOR programs across queries.
            vectorized: Compute filter and group-mask bits with one NumPy
                pass instead of simulating every NOR primitive (identical
                results, wear and statistics; see :mod:`repro.core.stages`).
            pruning: Consult the relation's zone maps before every filter
                and broadcast the NOR program (and the aggregation-circuit
                pass) only to candidate crossbars — bit-exact with the full
                broadcast, charging :class:`~repro.pim.stats.PimStats` for
                exactly the crossbars touched plus the modelled zone-map
                check.  A query whose predicate matches no crossbar at all
                skips execution entirely.
            filter_stage / group_stage / aggregation_stage: Fully custom
                stage objects; built from the arguments above when omitted.
            scatter_pool: A :class:`~repro.core.parallel.ScatterPool` the
                batched group-by path uses to evaluate independent
                per-partition batch kernels concurrently (the kernels are
                whole-array NumPy expressions, so they release the GIL).
                ``None`` keeps everything on the calling thread.
            tracer: A :class:`~repro.obs.trace.SpanTracer` the engine (and
                its stages) open hierarchical spans on.  Defaults to the
                tracer implied by ``config.tracing`` — the shared no-op
                tracer unless tracing is switched on.
        """
        if timing_scale <= 0:
            raise ValueError("timing_scale must be positive")
        self.stored = stored
        self.config = config if config is not None else stored.module.system_config
        self.label = label
        self.sample_pages = sample_pages
        self.timing_scale = float(timing_scale)
        self.use_aggregation_circuit = self.config.pim.aggregation_circuit.enabled
        self.transfer_per_subgroup = stored.partitions > 1
        if cost_model is None:
            cost_model = build_analytic_cost_model(
                self.config,
                use_aggregation_circuit=self.use_aggregation_circuit,
                transfer_per_subgroup=self.transfer_per_subgroup,
            )
        self.cost_model = cost_model
        self.planner = GroupByPlanner(cost_model)
        self.compiler = compiler if compiler is not None else ProgramCompiler()
        self.vectorized = bool(vectorized)
        self.pruning = bool(pruning)
        self.tracer = tracer if tracer is not None else tracer_from_config(self.config)
        self.filter_stage = filter_stage or FilterStage(
            stored, self.compiler, self.timing_scale, self.vectorized,
            tracer=self.tracer,
        )
        self.group_stage = group_stage or GroupMaskStage(
            stored, self.compiler, self.timing_scale, self.vectorized,
            tracer=self.tracer,
        )
        self.aggregation_stage = aggregation_stage or AggregationStage(
            stored, self.config, self.timing_scale, tracer=self.tracer
        )
        self.scatter_pool = scatter_pool

    # ------------------------------------------------------------------ main
    def execute(
        self, query: Query, executor: PimExecutor | None = None
    ) -> QueryExecution:
        """Execute one query and return its results and measurements.

        ``executor`` lets a batching service reuse one shared
        :class:`~repro.pim.controller.PimExecutor` across queries; a fresh
        per-query :class:`~repro.pim.stats.PimStats` is attached to it either
        way, so every execution reports its own measurements.
        """
        with self.tracer.span("execute", label=self.label) as span:
            execution = self._execute_traced(query, executor)
            if self.tracer.enabled:
                span.set(
                    selectivity=execution.selectivity,
                    crossbars_total=execution.crossbars_total,
                    crossbars_scanned=execution.crossbars_scanned,
                    pim_subgroups=execution.pim_subgroups,
                    result_rows=len(execution.rows),
                )
            return execution

    def _execute_traced(
        self, query: Query, executor: PimExecutor | None
    ) -> QueryExecution:
        stats = PimStats()
        self.tracer.bind(stats)
        if executor is None:
            executor = PimExecutor(self.config, stats)
        else:
            executor.stats = stats
        read_model = HostReadModel(
            self.config, stats, traffic_scale=self.timing_scale
        )
        wear_before = self.stored.wear_snapshot()

        primary = self._primary_partition(query)
        crossbars_total = sum(a.crossbars for a in self.stored.allocations)
        crossbars_scanned = crossbars_total
        estimated_selectivity: float | None = None
        prune = None
        if self.pruning:
            statistics = self.stored.statistics
            with self.tracer.span("prune") as prune_span:
                prune = statistics.plan(
                    query.predicate,
                    self.stored.partition_attributes,
                    self.config.pim.crossbars_per_page,
                )
                statistics.charge_check(
                    stats, self.config.host,
                    prune.entries_checked * self.timing_scale,
                )
                estimated_selectivity = statistics.estimate(query.predicate)
                crossbars_scanned = prune.crossbars_scanned
                if self.tracer.enabled:
                    prune_span.set(
                        crossbars_total=crossbars_total,
                        crossbars_scanned=crossbars_scanned,
                        crossbars_skipped=crossbars_total - crossbars_scanned,
                        entries_checked=prune.entries_checked,
                        estimated_selectivity=estimated_selectivity,
                        empty=prune.empty,
                    )
            if prune.empty:
                # Some partition's conjunction matches no crossbar: the
                # selection is provably empty, so no filter broadcast, no
                # aggregation and no result row — this is also how a sharded
                # engine skips entire shards.  An estimator insisting the
                # selection is non-empty is exactly the feedback the loop
                # wants, so the empty execution observes too.
                if query.predicate is not None:
                    with self.tracer.span("feedback", pruned_out=True):
                        statistics.observe_execution(
                            query.predicate, estimated_selectivity, 0.0,
                            crossbars_scanned=0, stored=self.stored,
                            stats=stats, host=self.config.host,
                            timing_scale=self.timing_scale,
                        )
                return self._pruned_out_execution(
                    query, stats, crossbars_total, estimated_selectivity
                )

        self.filter_stage.run(query, primary, executor, read_model, prune=prune)
        mask = self.stored.filter_mask(primary)
        # Live-row fraction: the filter bit is ANDed with the valid column,
        # so normalizing by all slots in use would dilute the figure with
        # tombstones and skew the estimated-vs-actual feedback.
        selectivity = (
            float(mask.sum() / self.stored.live_count)
            if self.stored.live_count
            else 0.0
        )
        if self.pruning and query.predicate is not None:
            # Close the feedback loop: fold (estimated, actual) and the scan
            # volume into the relation's adaptive accumulator; a triggered
            # equi-depth rebuild or pair-sketch build is applied (and
            # charged) right here.
            with self.tracer.span(
                "feedback",
                estimated=estimated_selectivity,
                actual=selectivity,
            ):
                self.stored.statistics.observe_execution(
                    query.predicate, estimated_selectivity, selectivity,
                    crossbars_scanned=crossbars_scanned, stored=self.stored,
                    stats=stats, host=self.config.host,
                    timing_scale=self.timing_scale,
                )
        candidates = prune.candidates[primary] if prune is not None else None

        plan: GroupByPlan | None = None
        if not query.group_by:
            entry = self.aggregation_stage.aggregate_all(
                query, primary, executor, read_model, candidates=candidates
            )
            # An empty selection yields no result row (matching the columnar
            # reference engines); otherwise an absent min collapses to the
            # accumulator identity, the only value consistent with a
            # non-empty selection whose partials were all ones.
            if mask.any():
                rows = {(): self._finalize_entry(entry, primary)}
            else:
                rows = {}
            total_subgroups, in_sample, pim_subgroups = 1, 0, 1
        elif self.stored.num_records == 0:
            # Every slot was deleted and compacted away: there is nothing to
            # sample or plan over, and no subgroup can produce a row.
            rows = {}
            total_subgroups, in_sample, pim_subgroups = 0, 0, 0
        else:
            rows, plan = self._execute_group_by(
                query, primary, mask, executor, read_model, prune=prune,
            )
            total_subgroups = plan.total_subgroups
            in_sample = plan.estimate.observed_subgroups
            pim_subgroups = plan.k

        max_writes = self.stored.max_writes_since(wear_before)
        stats.observe_writes_per_row(max_writes)
        return QueryExecution(
            query=query,
            label=self.label,
            rows=rows,
            stats=stats,
            selectivity=selectivity,
            total_subgroups=total_subgroups,
            subgroups_in_sample=in_sample,
            pim_subgroups=pim_subgroups,
            max_writes_per_row=max_writes,
            plan=plan,
            crossbars_total=crossbars_total,
            crossbars_scanned=crossbars_scanned,
            estimated_selectivity=estimated_selectivity,
        )

    def _pruned_out_execution(
        self,
        query: Query,
        stats: PimStats,
        crossbars_total: int,
        estimated_selectivity: float | None,
    ) -> QueryExecution:
        """The (empty) execution of a query the zone maps ruled out entirely."""
        if query.group_by:
            total_subgroups, in_sample, pim_subgroups = 0, 0, 0
        else:
            total_subgroups, in_sample, pim_subgroups = 1, 0, 1
        return QueryExecution(
            query=query,
            label=self.label,
            rows={},
            stats=stats,
            selectivity=0.0,
            total_subgroups=total_subgroups,
            subgroups_in_sample=in_sample,
            pim_subgroups=pim_subgroups,
            max_writes_per_row=0,
            plan=None,
            crossbars_total=crossbars_total,
            crossbars_scanned=0,
            estimated_selectivity=estimated_selectivity,
        )

    # ---------------------------------------------------------------- filter
    def _primary_partition(self, query: Query) -> int:
        """Partition holding the aggregated attributes (and the final filter)."""
        partitions = {
            self.stored.partition_of(a.attribute)
            for a in query.aggregates
            if a.attribute is not None
        }
        if len(partitions) > 1:
            raise NotImplementedError(
                "aggregated attributes must share a vertical partition"
            )
        return partitions.pop() if partitions else 0

    def _finalize_entry(
        self, entry: dict[str, int | None], primary: int
    ) -> dict[str, int]:
        """Resolve absent mins for a selection known to be non-empty.

        A ``None`` min means every crossbar partial equalled the all-ones
        identity; for a non-empty selection that can only happen when every
        selected value *is* the identity, so the identity is the minimum.
        """
        identity = self.aggregation_stage.min_identity(primary)
        return {
            name: identity if value is None else value
            for name, value in entry.items()
        }

    # ------------------------------------------------------------- GROUP-BY
    def _execute_group_by(
        self,
        query: Query,
        primary: int,
        mask: np.ndarray,
        executor: PimExecutor,
        read_model: HostReadModel,
        prune=None,
    ) -> tuple[dict[GroupKey, dict[str, int]], GroupByPlan]:
        group_attributes = list(query.group_by)
        with self.tracer.span("group-plan") as plan_span:
            candidates = self._candidate_groups(query)
            estimate = estimate_subgroups(
                self.stored, group_attributes, candidates,
                read_model=read_model,
                sample_pages=self.sample_pages,
                filter_partition=primary,
            )
            aggregation_reads = self._aggregation_reads(query, primary)
            reads_per_record = self._reads_per_record(query)
            plan = self.planner.plan(
                estimate,
                pages=self.stored.pages * self.timing_scale,
                aggregation_reads=aggregation_reads,
                reads_per_record=reads_per_record,
                total_subgroups=len(candidates),
            )
            if self.tracer.enabled:
                plan_span.set(
                    total_subgroups=plan.total_subgroups,
                    subgroups_in_sample=plan.estimate.observed_subgroups,
                    pim_subgroups=plan.k,
                    host_pass=plan.host_pass_needed,
                )

        rows: dict[GroupKey, dict[str, int]] = {}
        primary_candidates = (
            prune.candidates[primary] if prune is not None else None
        )
        batched = bool(
            plan.pim_groups and executor.batched and self.use_aggregation_circuit
        )
        with self.tracer.span(
            "pim-gb", batched=batched, subgroups=len(plan.pim_groups)
        ):
            if batched:
                # Batched execution: all subgroup mask programs of a partition
                # run as one multi-output kernel with cross-subgroup CSE, field
                # decodes are shared across subgroups, and the modelled charges
                # are replayed in reference order — bit-identical rows, bits,
                # wear and stats (see repro.core.batched).
                from repro.core.batched import run_group_by_batched

                rows = run_group_by_batched(
                    self, query, primary, mask, plan.pim_groups, executor,
                    read_model, prune=prune,
                )
            else:
                for key in plan.pim_groups:
                    entry = self._pim_aggregate_group(
                        query, primary, group_attributes, key, executor,
                        read_model, prune=prune,
                    )
                    if self._group_selected(mask, group_attributes, key):
                        rows[key] = self._finalize_entry(entry, primary)
                    self.group_stage.clear(
                        primary, executor, candidates=primary_candidates
                    )

        if plan.host_pass_needed:
            with self.tracer.span("host-gb"):
                host_rows = self._host_group_by(
                    query, primary, group_attributes, executor, read_model
                )
            rows = merge_group_results(rows, host_rows, query.aggregates)
        return rows, plan

    def _pim_aggregate_group(
        self,
        query: Query,
        primary: int,
        group_attributes: Sequence[str],
        key: GroupKey,
        executor: PimExecutor,
        read_model: HostReadModel,
        prune=None,
    ) -> dict[str, int | None]:
        """pim-gb for one subgroup: subgroup filter, aggregate, combine.

        The subgroup mask is a subset of the query filter, so the zone-map
        candidate crossbars of the filter bound the subgroup mask programs
        and the subgroup aggregation too.
        """
        group_values = dict(zip(group_attributes, key))
        mask_column = self.group_stage.prepare(
            group_values, primary, executor, read_model, prune=prune
        )
        candidates = prune.candidates[primary] if prune is not None else None
        return {
            aggregate.name: self.aggregation_stage.aggregate(
                aggregate, primary, mask_column, executor, read_model,
                candidates=candidates,
            )
            for aggregate in query.aggregates
        }

    def _host_group_by(
        self,
        query: Query,
        primary: int,
        group_attributes: Sequence[str],
        executor: PimExecutor,
        read_model: HostReadModel,
    ) -> dict[GroupKey, dict[str, int]]:
        """host-gb: read the remaining selected records and hash-aggregate."""
        mask = read_model.read_filter_bitvector(self.stored, primary)
        indices = np.nonzero(mask)[0]
        needed = list(group_attributes) + [
            a.attribute for a in query.aggregates if a.attribute is not None
        ]
        by_partition: dict[int, list[str]] = {}
        for name in dict.fromkeys(needed):
            by_partition.setdefault(self.stored.partition_of(name), []).append(name)
        values: dict[str, np.ndarray] = {}
        for partition, names in by_partition.items():
            values.update(
                read_model.read_records(self.stored, partition, indices, names)
            )
        group_columns = {name: values[name] for name in group_attributes}
        value_columns = {
            a.attribute: values[a.attribute]
            for a in query.aggregates
            if a.attribute is not None
        }
        return host_group_aggregate(
            group_columns,
            value_columns,
            query.aggregates,
            self.config.host,
            stats=executor.stats,
            threads=self.config.host.query_threads,
            workload_scale=self.timing_scale,
        )

    # ------------------------------------------------------------- metadata
    def _aggregation_reads(self, query: Query, primary: int) -> int:
        """The paper's ``n``: 16-bit reads to fetch the aggregated attributes."""
        layout = self.stored.layouts[primary]
        read_width = layout.read_width_bits
        total = 0
        for aggregate in query.aggregates:
            if aggregate.attribute is None:
                total += 1
            else:
                total += int(math.ceil(layout.field_width(aggregate.attribute) / read_width))
        return max(1, total)

    def _reads_per_record(self, query: Query) -> int:
        """The paper's ``s``: 16-bit reads per record for host-gb."""
        needed = list(query.group_by) + [
            a.attribute for a in query.aggregates if a.attribute is not None
        ]
        by_partition: dict[int, list[str]] = {}
        for name in dict.fromkeys(needed):
            by_partition.setdefault(self.stored.partition_of(name), []).append(name)
        total = 0
        for partition, names in by_partition.items():
            total += len(self.stored.layouts[partition].words_for_fields(names))
        return max(1, total)

    def _candidate_groups(self, query: Query) -> list[GroupKey]:
        """Enumerate the potential subgroups from query and catalog knowledge.

        Following the paper's "total number of potential subgroups according
        to query and database details" (Table II), the candidate set is the
        Cartesian product of the per-attribute domains of the GROUP-BY
        attributes, where each attribute's domain is restricted by the
        predicate conjuncts on attributes of the *same* source relation.
        This captures the functional dependencies inside a dimension — for
        example ``p_brand1`` is restricted to the 40 brands of the selected
        ``p_category`` — and is catalog information, not charged to the
        query's execution time.
        """
        import itertools

        relation = self.stored.relation
        schema = relation.schema
        predicate = query.predicate
        nodes = list(predicate.children) if isinstance(predicate, And) else (
            [predicate] if predicate is not None else []
        )

        domains: list[list[int]] = []
        for group_attribute in query.group_by:
            source = schema.attribute(group_attribute).source
            same_source_conjuncts = [
                node for node in nodes
                if attributes_referenced(node)
                and all(
                    schema.attribute(name).source == source
                    for name in attributes_referenced(node)
                )
            ]
            mask = evaluate_predicate(conj(*same_source_conjuncts), relation)
            values = np.unique(relation.column(group_attribute)[mask])
            if values.size == 0:
                values = np.unique(relation.column(group_attribute))
            domains.append([int(v) for v in values])

        if not domains:
            return []
        candidates = [tuple(combo) for combo in itertools.product(*domains)]
        return candidates

    def _group_selected(
        self, mask: np.ndarray, group_attributes: Sequence[str], key: GroupKey
    ) -> bool:
        """Whether any record selected by the query belongs to the subgroup."""
        member = mask.copy()
        for name, value in zip(group_attributes, key):
            member &= self.stored.relation.column(name) == np.uint64(value)
        return bool(member.any())
