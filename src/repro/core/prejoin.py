"""Pre-joined relations (Section III).

JOIN requires data-dependent movement between crossbars, which bulk-bitwise
PIM does not support, so the paper stores the result of the star-schema
equi-join — every fact record extended with the attributes of the dimension
records it references — and runs whole queries on that single relation.

:func:`build_prejoined_relation` performs the equi-join on the foreign keys
declared in the :class:`~repro.db.catalog.Database`, optionally excludes long
textual attributes (the paper drops NAME and ADDRESS), and materialises
*derived attributes* such as ``lo_extendedprice * lo_discount`` so that every
SSB aggregation is a plain SUM over one stored field.  Because keys are
unique, the pre-joined relation has exactly as many records as the fact
relation, which is why it fits in the crossbar rows the fact relation would
occupy anyway (:func:`storage_overhead` quantifies this argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from repro.db.catalog import Database
from repro.db.relation import Relation
from repro.db.schema import Attribute, Schema


@dataclass(frozen=True)
class DerivedAttribute:
    """A materialised arithmetic combination of two stored attributes.

    ``op`` is one of ``"mul"``, ``"add"`` or ``"sub"``.  Derived attributes
    can equivalently be produced inside the memory with the NOR
    multiplier/adder of :mod:`repro.pim.arithmetic`; materialising them at
    load time keeps every query aggregation a single-field SUM/MIN/MAX, which
    is what the aggregation circuit supports.
    """

    name: str
    op: str
    left: str
    right: str
    width: int

    def compute(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        left = columns[self.left].astype(np.int64)
        right = columns[self.right].astype(np.int64)
        if self.op == "mul":
            values = left * right
        elif self.op == "add":
            values = left + right
        elif self.op == "sub":
            values = left - right
        else:
            raise ValueError(f"unknown derived-attribute op {self.op!r}")
        if values.size and values.min() < 0:
            raise ValueError(
                f"derived attribute {self.name!r} has negative values; "
                f"bulk-bitwise fields are unsigned"
            )
        if values.size and self.width < 64 and values.max() >= (1 << self.width):
            raise ValueError(
                f"derived attribute {self.name!r} overflows {self.width} bits"
            )
        return values.astype(np.uint64)


def build_prejoined_relation(
    database: Database,
    name: str = "prejoined",
    exclude: Iterable[str] = (),
    derived: Sequence[DerivedAttribute] = (),
) -> Relation:
    """Equi-join the fact relation with every dimension it references.

    The join is on the dimension keys, so each fact record matches exactly
    one record per dimension.  Dimension key columns themselves are not
    duplicated (the fact relation's foreign-key copy is kept).  ``exclude``
    names dimension attributes to drop (NAME/ADDRESS in the paper).
    """
    excluded = set(exclude)
    fact = database.fact_relation
    attributes: list[Attribute] = list(fact.schema.attributes)
    columns: dict[str, np.ndarray] = dict(fact.columns)

    for foreign_key in database.foreign_keys:
        dimension = database.relation(foreign_key.dimension)
        key_values = dimension.column(foreign_key.dimension_key)
        positions = _key_positions(key_values, fact.column(foreign_key.fact_attribute))
        for attribute in dimension.schema:
            if attribute.name == foreign_key.dimension_key:
                continue
            if attribute.name in excluded:
                continue
            if attribute.name in columns:
                raise ValueError(
                    f"attribute {attribute.name!r} appears in more than one relation"
                )
            attributes.append(attribute)
            columns[attribute.name] = dimension.column(attribute.name)[positions]

    for spec in derived:
        attributes.append(Attribute(name=spec.name, width=spec.width, kind="int",
                                    source=fact.schema.name))
        columns[spec.name] = spec.compute(columns)

    schema = Schema(name, attributes)
    return Relation(schema, columns)


def _key_positions(dimension_keys: np.ndarray, fact_keys: np.ndarray) -> np.ndarray:
    """Positions of each fact foreign key within the dimension key column."""
    order = np.argsort(dimension_keys, kind="stable")
    sorted_keys = dimension_keys[order]
    located = np.searchsorted(sorted_keys, fact_keys)
    if located.size and (
        located.max(initial=0) >= len(sorted_keys)
        or not np.array_equal(sorted_keys[located], fact_keys)
    ):
        raise ValueError("a fact record references a missing dimension key")
    return order[located]


@dataclass(frozen=True)
class StorageOverheadReport:
    """Storage accounting behind the Section III "no additional memory" claim."""

    fact_records: int
    fact_record_bits: int
    prejoined_record_bits: int
    crossbar_row_bits: int
    fact_pages: int
    prejoined_pages_one_xb: int
    prejoined_pages_two_xb: int
    fits_in_single_row: bool

    @property
    def extra_pages_one_xb(self) -> int:
        """Additional pages versus storing only the fact relation."""
        return self.prejoined_pages_one_xb - self.fact_pages

    @property
    def row_utilisation(self) -> float:
        """Fraction of the crossbar row used by the pre-joined record."""
        return self.prejoined_record_bits / self.crossbar_row_bits


def storage_overhead(
    database: Database,
    prejoined: Relation,
    crossbar_row_bits: int = 512,
    records_per_page: int = 32 * 1024,
    bookkeeping_bits: int = 4,
) -> StorageOverheadReport:
    """Quantify the PIM storage cost of the pre-joined relation.

    Because the join is on unique dimension keys, the pre-joined relation has
    the same number of records as the fact relation; if its record (plus the
    bookkeeping bits of the row layout) still fits in one crossbar row, the
    pre-join occupies exactly the pages the fact relation needed — the unused
    row bits are simply put to work.
    """
    fact = database.fact_relation
    fact_bits = fact.schema.record_width
    prejoined_bits = prejoined.schema.record_width
    def pages(records: int) -> int:
        return int(np.ceil(records / records_per_page))

    fits = prejoined_bits + bookkeeping_bits <= crossbar_row_bits
    return StorageOverheadReport(
        fact_records=len(fact),
        fact_record_bits=fact_bits,
        prejoined_record_bits=prejoined_bits,
        crossbar_row_bits=crossbar_row_bits,
        fact_pages=pages(len(fact)),
        prejoined_pages_one_xb=pages(len(prejoined)) * (1 if fits else 2),
        prejoined_pages_two_xb=pages(len(prejoined)) * 2,
        fits_in_single_row=fits,
    )
