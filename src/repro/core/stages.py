"""Reusable execution stages of the PIM query engine.

The engine's work decomposes into three stages that used to be private
monolith methods of :class:`~repro.core.executor.PimQueryEngine`:

* :class:`FilterStage` — compile and evaluate the WHERE clause across the
  vertical partitions, folding the per-partition filter bits into the primary
  partition;
* :class:`GroupMaskStage` — build (and later clear) the per-subgroup mask
  used by pim-gb;
* :class:`AggregationStage` — one PIM aggregation (circuit or bulk-bitwise)
  plus the host-side combination of the per-crossbar partials.

Each stage is an injectable object, so a batching service can share state
across queries: :class:`ProgramCompiler` is the compilation seam (the
service's :class:`~repro.service.cache.ProgramCache` subclasses it with an
LRU cache keyed by ``(predicate, layout)``), and every stage supports two
functionally identical execution modes:

* **gate-level** (``vectorized=False``, the default) executes every NOR
  primitive of the compiled program on the stored bits;
* **vectorized** (``vectorized=True``) computes the same result bits with
  one NumPy pass over the relation's columns and charges the *compiled
  program's* cycle count, energy and wear analytically through
  :meth:`~repro.pim.controller.PimExecutor.charge_program_cost` — the same
  device-accurate accounting, a fraction of the simulation wall-clock.

Both modes leave identical bits in the bookkeeping columns, identical wear
counters and identical statistics; ``tests/test_aggregate_edge_cases.py`` and
``tests/test_service.py`` assert exactly that.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.config import SystemConfig
from repro.db.compiler import (
    compile_group_combine,
    compile_predicate,
    compile_group_predicate,
    partition_conjuncts,
)
from repro.db.encoding import RowLayout
from repro.db.query import Aggregate, Predicate, Query, evaluate_predicate
from repro.db.schema import Schema
from repro.db.storage import StoredRelation
from repro.host.aggregator import combine_partials
from repro.host.readpath import HostReadModel
from repro.obs.trace import NULL_TRACER
from repro.pim.arithmetic import BulkAggregationPlan
from repro.pim.controller import PimExecutor
from repro.pim.logic import Program, ProgramBuilder


class ProgramCompiler:
    """Compiles the NOR programs the execution stages need.

    This is the injection point for program reuse: the default implementation
    compiles on every call, while :class:`repro.service.cache.ProgramCache`
    overrides the three methods with an LRU-cached lookup.
    """

    def filter_program(
        self, predicate: Predicate, schema: Schema, layout: RowLayout
    ) -> Program:
        """WHERE-clause program leaving its result in the filter column."""
        return compile_predicate(predicate, schema, layout)

    def group_program(self, group_values: dict[str, int], layout: RowLayout) -> Program:
        """Remote-partition subgroup equality program (pim-gb)."""
        return compile_group_predicate(
            group_values, layout, filter_column=layout.valid_column
        )

    def combine_program(
        self, group_values: dict[str, int], layout: RowLayout, include_remote: bool
    ) -> Program:
        """Primary-partition subgroup mask program (pim-gb)."""
        return compile_group_combine(
            group_values, layout, include_remote=include_remote
        )


def apply_program(
    stored: StoredRelation,
    partition: int,
    program: Program,
    executor: PimExecutor,
    phase: str,
    pages: float,
    result_bits: np.ndarray | None = None,
) -> None:
    """Run a program gate-level, or write its known result and charge it.

    This is the one definition of the two execution modes' contract, shared
    by the query stages and the DML subsystem: without ``result_bits`` the
    program's NOR primitives execute on the stored bits; with them (one bool
    per slot in use) the bits are written into the program's result column
    and the program's cycles and wear are charged analytically — identical
    stored bits, identical modelled cost.
    """
    allocation = stored.allocations[partition]
    if result_bits is None:
        executor.run_program(allocation.bank, program, pages=pages, phase=phase)
    else:
        stored.write_bit_column(
            partition, program.result_column, result_bits, count_wear=False
        )
        executor.charge_program_cost(
            allocation.bank,
            program.cycles,
            pages=pages,
            phase=phase,
            writes_per_row=program.writes_per_row,
            add_wear=True,
        )
    # A broadcast may leave ones in any crossbar; the pruned path consults
    # this to know what needs clearing.  Marked in both modes so the stale
    # sets (and their modelled clear cycles) stay identical.
    if program.result_column is not None:
        stored.mark_column_dirty(partition, program.result_column)


def candidate_rows(
    stored: StoredRelation, partition: int, candidates: np.ndarray
) -> np.ndarray:
    """Expand a per-crossbar candidate mask to one bool per record slot.

    Pruned execution leaves all-zero result bits on skipped crossbars; the
    vectorized mode reproduces that bit-exactly by masking its analytically
    computed result bits with this expansion before writing them.
    """
    allocation = stored.allocations[partition]
    expanded = np.repeat(
        np.asarray(candidates, dtype=bool), allocation.rows_per_crossbar
    )
    return expanded[: stored.relation.num_records]


def apply_program_pruned(
    stored: StoredRelation,
    partition: int,
    program: Program,
    executor: PimExecutor,
    phase: str,
    pages: float,
    candidates: np.ndarray,
    result_bits: np.ndarray | None = None,
) -> None:
    """Run a program on the zone-map candidate crossbars only.

    The same two-mode contract as :func:`apply_program`, restricted to the
    candidate crossbars: the program's cost, wear and requests are charged
    for exactly the crossbars touched.  Skipped crossbars provably hold no
    matching live row, so their correct result bits are all-zero — they are
    left untouched when already clean and receive a single-cycle clear when a
    previous broadcast left stale ones behind.  ``result_bits`` must already
    be zero outside the candidate crossbars (callers mask them through
    :func:`candidate_rows` when the analytic bits can extend further).
    """
    if program.result_column is None:
        raise ValueError("pruned execution needs a program result column")
    allocation = stored.allocations[partition]
    stale = stored.column_dirty_mask(partition, program.result_column) & ~candidates
    if result_bits is None:
        executor.run_program_pruned(
            allocation.bank, program, candidates, pages, phase,
            clear_crossbars=stale,
        )
    else:
        _check_pruned_bits(result_bits, candidates, allocation)
        stored.write_bit_column(
            partition, program.result_column, result_bits, count_wear=False
        )
        executor.charge_pruned_program_cost(
            allocation.bank, program, candidates, pages, phase,
            clear_crossbars=stale,
        )
    stored.mark_column_dirty(partition, program.result_column, candidates)


def apply_program_at(
    stored: StoredRelation,
    partition: int,
    program: Program,
    executor: PimExecutor,
    phase: str,
    pages: float,
    candidates: np.ndarray,
    result_bits: np.ndarray | None = None,
) -> None:
    """Run a program on candidate crossbars, leaving the rest *untouched*.

    The preserve-skipped twin of :func:`apply_program_pruned`, for programs
    whose result on a skipped crossbar equals the bits already stored there —
    pruned DML's ``valid &= ~doomed`` clear (the doomed bits are zero outside
    the candidates, so the AND is the identity) and the mux UPDATE (no row
    there matches the filter, so every field keeps its value).  Unlike the
    pruned filter path there is no all-zero invariant to restore, hence no
    stale-crossbar clearing and no zero-outside check; cost, requests and
    wear are charged for the candidate crossbars only.

    ``result_bits`` (vectorized mode) carries the full column's final value —
    by the caller's contract it is bit-identical to the current contents on
    every skipped crossbar.
    """
    allocation = stored.allocations[partition]
    if result_bits is None:
        executor.run_program_at(
            allocation.bank, program, candidates, pages, phase
        )
    else:
        stored.write_bit_column(
            partition, program.result_column, result_bits, count_wear=False
        )
        executor.charge_program_cost_at(
            allocation.bank, program, candidates, pages, phase
        )
    if program.result_column is not None and result_bits is None:
        # write_bit_column marked the exact dirtiness in vectorized mode; the
        # gate-level path reads the (bit-identical) stored column back so the
        # dirty masks — which feed later pruned stale-clear charges — agree.
        shaped = allocation.bank.read_column(program.result_column)
        stored.mark_column_dirty(
            partition, program.result_column, shaped.any(axis=1)
        )


def _check_pruned_bits(
    result_bits: np.ndarray, candidates: np.ndarray, allocation
) -> None:
    """Assert the conservative-statistics invariant on known result bits.

    Zone maps are maintained to only ever err on the wide side; a matching
    row inside a pruned crossbar means the maintenance contract was broken
    somewhere, which must fail loudly rather than silently drop rows.
    """
    padded = np.zeros(allocation.record_capacity, dtype=bool)
    padded[: len(result_bits)] = result_bits
    hits = padded.reshape(
        allocation.crossbars, allocation.rows_per_crossbar
    ).any(axis=1)
    if np.any(hits & ~np.asarray(candidates, dtype=bool)):
        raise RuntimeError(
            "zone maps pruned a crossbar holding matching rows; the "
            "conservative-maintenance invariant was violated"
        )


class _Stage:
    """Shared plumbing of the execution stages."""

    def __init__(
        self,
        stored: StoredRelation,
        compiler: ProgramCompiler | None = None,
        timing_scale: float = 1.0,
        vectorized: bool = False,
        tracer=None,
    ) -> None:
        self.stored = stored
        self.compiler = compiler if compiler is not None else ProgramCompiler()
        self.timing_scale = float(timing_scale)
        self.vectorized = bool(vectorized)
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def _pages(self, partition: int) -> float:
        """Page count used for timing purposes (scaled)."""
        return self.stored.allocations[partition].pages * self.timing_scale

    def _apply(
        self,
        program: Program,
        partition: int,
        executor: PimExecutor,
        phase: str,
        result_bits: np.ndarray | None = None,
    ) -> None:
        """Apply a program through :func:`apply_program`.

        In vectorized mode ``result_bits`` (one bool per record) is written
        into the program's result column and the program's cycles and wear are
        charged analytically — identical cost and identical stored bits, with
        the NOR-by-NOR simulation skipped.
        """
        apply_program(
            self.stored, partition, program, executor, phase,
            pages=self._pages(partition),
            result_bits=result_bits if self.vectorized else None,
        )

    def _apply_pruned(
        self,
        program: Program,
        partition: int,
        executor: PimExecutor,
        phase: str,
        candidates: np.ndarray,
        result_bits: np.ndarray | None = None,
    ) -> None:
        """Apply a program through :func:`apply_program_pruned`."""
        apply_program_pruned(
            self.stored, partition, program, executor, phase,
            pages=self._pages(partition),
            candidates=candidates,
            result_bits=result_bits if self.vectorized else None,
        )

    def _equality_mask(self, values: dict[str, int]) -> np.ndarray:
        """Conjunction of ``attribute == value`` over the relation's records."""
        mask = np.ones(self.stored.num_records, dtype=bool)
        for name, value in values.items():
            mask &= self.stored.relation.column(name) == np.uint64(value)
        return mask


class FilterStage(_Stage):
    """Stage 1: evaluate the WHERE clause inside the memory arrays."""

    def run(
        self,
        query: Query,
        primary: int,
        executor: PimExecutor,
        read_model: HostReadModel,
        prune=None,
    ) -> None:
        """Evaluate the predicate; the combined result lands in ``primary``.

        ``prune`` (a :class:`~repro.planner.zonemap.PruneDecision`) restricts
        each partition's filter broadcast to its zone-map candidate
        crossbars; without it the program is broadcast to every page.
        """
        with self.tracer.span("filter", pruned=prune is not None):
            schema = self.stored.relation.schema
            per_partition = partition_conjuncts(
                query.predicate, self.stored.partition_attributes
            )
            for index, predicate in enumerate(per_partition):
                layout = self.stored.layouts[index]
                program = self.compiler.filter_program(predicate, schema, layout)
                bits: np.ndarray | None = None
                if self.vectorized:
                    bits = evaluate_predicate(predicate, self.stored.relation)
                    bits = bits & self.stored.valid_mask(index)
                if prune is not None:
                    apply_program_pruned(
                        self.stored, index, program, executor,
                        phase="filter", pages=self._pages(index),
                        candidates=prune.candidates[index],
                        result_bits=bits if self.vectorized else None,
                    )
                else:
                    self._apply(
                        program, index, executor, phase="filter", result_bits=bits
                    )
            # Fold the other partitions' filter bits into the primary partition.
            for index, predicate in enumerate(per_partition):
                if index == primary or predicate is None:
                    continue
                self.combine_remote(
                    executor, read_model,
                    source_partition=index,
                    source_column=self.stored.layouts[index].filter_column,
                    target_partition=primary,
                    target_column=self.stored.layouts[primary].filter_column,
                    phase="filter-combine",
                )

    def combine_remote(
        self,
        executor: PimExecutor,
        read_model: HostReadModel,
        source_partition: int,
        source_column: int,
        target_partition: int,
        target_column: int,
        phase: str,
    ) -> None:
        """Move a bit column between partitions and AND it into the target."""
        target_layout = self.stored.layouts[target_partition]
        source_bits = read_model.transfer_bit_column(
            self.stored,
            source_partition, source_column,
            target_partition, target_layout.remote_column,
            phase=phase,
        )
        builder = ProgramBuilder(target_layout.scratch_columns)
        combined = builder.and_(target_column, target_layout.remote_column)
        builder.store(combined, target_column)
        builder.free(combined)
        program = builder.build(result_column=target_column)
        bits: np.ndarray | None = None
        if self.vectorized:
            bits = self.stored.column_bit(target_partition, target_column) & source_bits
        self._apply(program, target_partition, executor, phase=phase, result_bits=bits)


class GroupMaskStage(_Stage):
    """Stage 2 (pim-gb): build and clear the per-subgroup mask."""

    def prepare(
        self,
        group_values: dict[str, int],
        primary: int,
        executor: PimExecutor,
        read_model: HostReadModel,
        prune=None,
    ) -> int:
        """Build the subgroup mask in the primary partition's group column.

        ``prune`` (the query's :class:`~repro.planner.zonemap.PruneDecision`)
        restricts every subgroup program to each partition's zone-map
        candidate crossbars.  The subgroup mask is ANDed with the (already
        pruned) filter column, so rows on skipped crossbars can never reach
        it — pruning the mask programs is bit-exact for the final mask while
        charging only the candidate crossbars.
        """
        with self.tracer.span("group-mask", columns=len(group_values)):
            return self._prepare(group_values, primary, executor, read_model, prune)

    def _prepare(
        self,
        group_values: dict[str, int],
        primary: int,
        executor: PimExecutor,
        read_model: HostReadModel,
        prune,
    ) -> int:
        by_partition: dict[int, dict[str, int]] = {}
        for name, value in group_values.items():
            by_partition.setdefault(self.stored.partition_of(name), {})[name] = value

        primary_layout = self.stored.layouts[primary]
        # Remote partitions first: evaluate their equality conjunctions and
        # ship the resulting bit-vectors to the primary partition.  With two
        # or more remote partitions every transfer lands in the same remote
        # column, so the running product of the earlier bit-vectors is parked
        # in the group column and folded back after the last transfer.
        remote_parts = [
            (partition, values)
            for partition, values in by_partition.items()
            if partition != primary
        ]
        remote_bits: np.ndarray | None = None
        for position, (partition, values) in enumerate(remote_parts):
            layout = self.stored.layouts[partition]
            program = self.compiler.group_program(values, layout)
            bits: np.ndarray | None = None
            if self.vectorized:
                bits = self._equality_mask(values) & self.stored.valid_mask(partition)
                if prune is not None:
                    # Pruned execution leaves zeros on skipped crossbars even
                    # where the subgroup equality holds; those rows fail the
                    # partition's WHERE conjunct, so the final mask (which
                    # ANDs the filter bits) is unchanged.
                    bits &= candidate_rows(
                        self.stored, partition, prune.candidates[partition]
                    )
            if prune is not None:
                self._apply_pruned(
                    program, partition, executor, phase="pim-gb-filter",
                    candidates=prune.candidates[partition], result_bits=bits,
                )
            else:
                self._apply(
                    program, partition, executor, phase="pim-gb-filter",
                    result_bits=bits,
                )
            transferred = read_model.transfer_bit_column(
                self.stored,
                partition, layout.group_column,
                primary, primary_layout.remote_column,
                phase="pim-gb-transfer",
            )
            remote_bits = (
                transferred if remote_bits is None else remote_bits & transferred
            )
            if len(remote_parts) > 1:
                if position == 0:
                    # Park the first bit-vector before the next transfer
                    # overwrites the remote column.
                    operands = [primary_layout.remote_column]
                else:
                    operands = [
                        primary_layout.group_column, primary_layout.remote_column
                    ]
                destination = (
                    primary_layout.remote_column      # combine reads it here
                    if position == len(remote_parts) - 1
                    else primary_layout.group_column  # running product parks here
                )
                self._fold_remote(
                    primary, executor, operands, destination,
                    result_bits=remote_bits,
                    prune=prune,
                )

        local_values = by_partition.get(primary, {})
        program = self.compiler.combine_program(
            local_values, primary_layout, include_remote=remote_bits is not None
        )
        bits = None
        if self.vectorized:
            bits = self._equality_mask(local_values)
            if remote_bits is not None:
                bits &= remote_bits
            bits &= self.stored.column_bit(primary, primary_layout.filter_column)
        if prune is not None:
            self._apply_pruned(
                program, primary, executor, phase="pim-gb-filter",
                candidates=prune.candidates[primary], result_bits=bits,
            )
        else:
            self._apply(
                program, primary, executor, phase="pim-gb-filter", result_bits=bits
            )
        return primary_layout.group_column

    def _fold_remote(
        self,
        primary: int,
        executor: PimExecutor,
        operands: Sequence[int],
        destination: int,
        result_bits: np.ndarray | None,
        prune=None,
    ) -> None:
        """Accumulate remote bit-vectors when more than one partition ships one.

        Copies (one operand) or ANDs (two operands) the given bit columns
        into ``destination``; ``result_bits`` carries the expected result for
        the vectorized mode.

        Under pruning the running product parked in the group column is only
        maintained on the primary partition's candidate crossbars (it is
        zero elsewhere, like every pruned result).  The final fold into the
        remote column — which the combine program reads — stays a broadcast,
        but its group-column operand already zeroes the skipped crossbars,
        so its result is the candidate-masked product in both modes.
        """
        layout = self.stored.layouts[primary]
        builder = ProgramBuilder(layout.scratch_columns)
        if len(operands) == 1:
            folded = builder.copy(operands[0])
        else:
            folded = builder.and_(operands[0], operands[1])
        builder.store(folded, destination)
        builder.free(folded)
        program = builder.build(result_column=destination)
        bits = result_bits if self.vectorized else None
        if bits is not None and prune is not None:
            bits = bits & candidate_rows(
                self.stored, primary, prune.candidates[primary]
            )
        if prune is not None and destination == layout.group_column:
            self._apply_pruned(
                program, primary, executor, phase="pim-gb-filter",
                candidates=prune.candidates[primary], result_bits=bits,
            )
        else:
            self._apply(
                program, primary, executor, phase="pim-gb-filter",
                result_bits=bits,
            )

    def clear(
        self,
        primary: int,
        executor: PimExecutor,
        candidates: np.ndarray | None = None,
    ) -> None:
        """Remove a PIM-aggregated subgroup's records from the host filter.

        ``candidates`` (the primary partition's zone-map candidate crossbars)
        restricts the update to the crossbars whose filter column can hold
        ones at all — the others were pruned to zero by the filter stage.
        """
        layout = self.stored.layouts[primary]
        builder = ProgramBuilder(layout.scratch_columns)
        remaining = builder.and_not(layout.filter_column, layout.group_column)
        builder.store(remaining, layout.filter_column)
        builder.free(remaining)
        program = builder.build(result_column=layout.filter_column)
        bits: np.ndarray | None = None
        if self.vectorized:
            bits = self.stored.column_bit(primary, layout.filter_column) & ~self.stored.column_bit(primary, layout.group_column)
        if candidates is not None:
            self._apply_pruned(
                program, primary, executor, phase="pim-gb-filter",
                candidates=candidates, result_bits=bits,
            )
        else:
            self._apply(
                program, primary, executor, phase="pim-gb-filter", result_bits=bits
            )


class AggregationStage(_Stage):
    """Stage 3: PIM aggregation plus host combination of the partials."""

    def __init__(
        self,
        stored: StoredRelation,
        config: SystemConfig,
        timing_scale: float = 1.0,
        tracer=None,
    ) -> None:
        super().__init__(stored, timing_scale=timing_scale, tracer=tracer)
        self.config = config
        self.use_aggregation_circuit = config.pim.aggregation_circuit.enabled

    def min_identity(self, partition: int) -> int:
        """The all-ones accumulator value a min over no records produces."""
        return (1 << self.stored.layouts[partition].accumulator_width) - 1

    def aggregate_all(
        self,
        query: Query,
        primary: int,
        executor: PimExecutor,
        read_model: HostReadModel,
        candidates: np.ndarray | None = None,
    ) -> dict[str, int | None]:
        """Aggregate the filtered records of the whole relation with PIM."""
        layout = self.stored.layouts[primary]
        return {
            aggregate.name: self.aggregate(
                aggregate, primary, layout.filter_column, executor, read_model,
                candidates=candidates,
            )
            for aggregate in query.aggregates
        }

    def aggregate(
        self,
        aggregate: Aggregate,
        partition: int,
        mask_column: int,
        executor: PimExecutor,
        read_model: HostReadModel,
        candidates: np.ndarray | None = None,
    ) -> int | None:
        """One PIM aggregation (circuit or bulk-bitwise) plus host combination.

        Returns ``None`` for a ``min`` to which no crossbar contributed a
        partial (no record of the mask was selected, or every selected value
        equals the accumulator's all-ones identity — the two are
        indistinguishable in the partials the hardware exposes; the engine
        resolves the ambiguity from the selection mask it already holds).

        ``candidates`` (the zone-map candidate crossbars of the partition)
        restricts the aggregation-circuit pass to those crossbars: the others
        hold an all-zero mask column, so their partials would be the
        operation's identity and are not worth streaming.  The bulk-bitwise
        fallback (the PIMDB baseline) always runs unpruned.
        """
        with self.tracer.span("aggregate", op=aggregate.op, agg=aggregate.name):
            return self._aggregate(
                aggregate, partition, mask_column, executor, read_model, candidates
            )

    def _aggregate(
        self,
        aggregate: Aggregate,
        partition: int,
        mask_column: int,
        executor: PimExecutor,
        read_model: HostReadModel,
        candidates: np.ndarray | None,
    ) -> int | None:
        layout = self.stored.layouts[partition]
        allocation = self.stored.allocations[partition]
        if aggregate.op == "count":
            field_offset, field_width, operation = mask_column, 1, "sum"
        else:
            field_offset = layout.field_offset(aggregate.attribute)
            field_width = layout.field_width(aggregate.attribute)
            operation = aggregate.op

        if self.use_aggregation_circuit:
            partials = executor.aggregate_with_circuit(
                allocation.bank,
                field_offset, field_width, mask_column,
                layout.result_offset,
                pages=self._pages(partition),
                operation=operation,
                result_width=layout.accumulator_width,
                crossbars=candidates,
            )
        else:
            if layout.operand_offset is None:
                raise RuntimeError(
                    "bulk-bitwise aggregation needs an operand area; store the "
                    "relation with reserve_bulk_aggregation=True"
                )
            plan = BulkAggregationPlan(
                rows=allocation.rows_per_crossbar,
                field_offset=field_offset,
                field_width=field_width,
                mask_column=mask_column,
                acc_offset=layout.accumulator_offset,
                operand_offset=layout.operand_offset,
                scratch_columns=layout.scratch_columns,
                operation=operation,
            )
            partials = executor.aggregate_bulk_bitwise(
                allocation.bank, plan, pages=self._pages(partition)
            )
        fraction = 1.0
        if candidates is not None and self.use_aggregation_circuit:
            fraction = float(np.count_nonzero(candidates)) / allocation.crossbars
        read_model.read_aggregation_results(
            self.stored, partition, pages_fraction=fraction
        )
        if aggregate.op == "min":
            # Crossbars with no selected record hold the identity (all ones);
            # they do not contribute to the final minimum.
            partials = partials[partials != self.min_identity(partition)]
        return combine_partials(
            [partials], operation, self.config.host, executor.stats
        )
