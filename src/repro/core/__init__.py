"""The paper's contribution: pre-joined storage, hybrid GROUP-BY, executor.

This package layers the query-processing techniques of the paper on top of
the PIM, host and relational substrates:

* :mod:`repro.core.prejoin` — building (and sizing) the pre-joined relation
  that makes JOIN unnecessary at query time (Section III).
* :mod:`repro.core.latency_model` — the empirical latency models of
  Eq. (1)-(3) for host-gb and pim-gb, plus analytic predictors derived from
  the simulator's own cost model (Section IV, Fig. 4).
* :mod:`repro.core.sampling` — sampling-based estimation of subgroup sizes
  over one 2 MB page (Section IV).
* :mod:`repro.core.groupby` — the planner dividing subgroups between pim-gb
  and host-gb by minimising Eq. (3).
* :mod:`repro.core.executor` — the end-to-end PIM query engine used for the
  one-xb, two-xb and PIMDB configurations of the evaluation.
"""

from repro.core.prejoin import DerivedAttribute, build_prejoined_relation, storage_overhead
from repro.core.latency_model import (
    GroupByCostModel,
    HostGbLatencyModel,
    PimGbLatencyModel,
)
from repro.core.sampling import SubgroupEstimate, estimate_subgroups
from repro.core.groupby import GroupByPlan, GroupByPlanner
from repro.core.executor import PimQueryEngine, QueryExecution

__all__ = [
    "DerivedAttribute",
    "build_prejoined_relation",
    "storage_overhead",
    "GroupByCostModel",
    "HostGbLatencyModel",
    "PimGbLatencyModel",
    "SubgroupEstimate",
    "estimate_subgroups",
    "GroupByPlan",
    "GroupByPlanner",
    "PimQueryEngine",
    "QueryExecution",
]
