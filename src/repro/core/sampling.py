"""Sampling-based estimation of subgroup sizes (Section IV).

Before deciding how to split the GROUP-BY work, the host samples the records
selected by the query over a single 2 MB page (32 K records in the Table I
geometry) and estimates the size of every subgroup from that sample.  The
estimate supplies two things to the planner:

* an ordering of the candidate subgroups from (estimated) largest to
  smallest — the ``k`` chosen subgroups for pim-gb are taken in this order,
* the function ``r(k)``: the fraction of *all* relation records that the
  host still has to read if the ``k`` largest subgroups are removed, which
  is the ``r`` plugged into the host-gb latency model of Eq. (1).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.db.storage import StoredRelation
from repro.host.readpath import HostReadModel


GroupKey = tuple[int, ...]


@dataclass
class SubgroupEstimate:
    """Result of sampling one page of query-selected records."""

    #: Candidate subgroup keys (encoded values of the GROUP-BY attributes),
    #: ordered from the largest estimated size to the smallest.  Candidates
    #: never observed in the sample follow the observed ones, in stable
    #: (domain) order, with an estimated size of zero.
    ordered_groups: list[GroupKey]
    #: Estimated fraction of *selected* records belonging to each subgroup.
    group_fractions: dict[GroupKey, float]
    #: Estimated query selectivity (selected records / total records).
    selectivity: float
    #: Number of records inspected by the sample.
    sample_size: int
    #: Number of sampled records that passed the filter.
    sample_selected: int
    #: Number of distinct subgroups observed in the sample (Table II's
    #: "subgroups in sample" column).
    observed_subgroups: int

    def remaining_ratio(self, k: int) -> float:
        """``r(k)``: record fraction left for host-gb after the top-``k`` groups."""
        k = max(0, min(k, len(self.ordered_groups)))
        covered = sum(
            self.group_fractions.get(key, 0.0) for key in self.ordered_groups[:k]
        )
        covered = min(covered, 1.0)
        return self.selectivity * (1.0 - covered)


def estimate_subgroups(
    stored: StoredRelation,
    group_attributes: Sequence[str],
    candidate_groups: Sequence[GroupKey],
    read_model: HostReadModel | None = None,
    sample_pages: int = 1,
    filter_partition: int = 0,
) -> SubgroupEstimate:
    """Sample the first ``sample_pages`` pages and estimate subgroup sizes.

    The query's filter must already have been evaluated (the filter bits are
    in place).  When a :class:`HostReadModel` is supplied, the reads of the
    sample page's filter bits and of the selected records' GROUP-BY
    attributes are charged to it, exactly as the paper's runtime pays for the
    sampling before planning.
    """
    if not candidate_groups:
        raise ValueError("candidate_groups must not be empty")
    records_per_page = stored.records_per_page
    sample_size = min(stored.num_records, max(1, sample_pages) * records_per_page)
    sample_indices = np.arange(sample_size)

    filter_mask = stored.filter_mask(filter_partition)[:sample_size]
    selected = sample_indices[filter_mask]

    # Account for reading the sample: the filter bits of the sampled page and
    # the GROUP-BY attributes of the records that passed the filter.
    if read_model is not None:
        read_model.stats.add_time(
            "sampling",
            _sample_read_time(stored, read_model, selected, group_attributes),
        )

    group_columns = [
        _partition_column(stored, name)[selected] for name in group_attributes
    ]
    fractions: dict[GroupKey, float] = {}
    if len(selected):
        keys = np.stack(group_columns, axis=1) if group_columns else np.zeros((len(selected), 0))
        unique_keys, counts = np.unique(keys, axis=0, return_counts=True)
        for key, count in zip(unique_keys, counts):
            fractions[tuple(int(v) for v in key)] = float(count) / float(len(selected))

    observed = list(fractions)
    observed.sort(key=lambda key: fractions[key], reverse=True)
    observed_set = set(observed)
    unseen = [key for key in candidate_groups if key not in observed_set]
    ordered = observed + unseen

    # A relation whose every slot was compacted away has an empty sample.
    selectivity = float(len(selected)) / float(sample_size) if sample_size else 0.0
    return SubgroupEstimate(
        ordered_groups=ordered,
        group_fractions=fractions,
        selectivity=selectivity,
        sample_size=int(sample_size),
        sample_selected=int(len(selected)),
        observed_subgroups=len(observed),
    )


def _partition_column(stored: StoredRelation, attribute: str) -> np.ndarray:
    return stored.decode_column(attribute)


def _sample_read_time(
    stored: StoredRelation,
    read_model: HostReadModel,
    selected_indices: np.ndarray,
    group_attributes: Sequence[str],
) -> float:
    """Latency of reading the sample (bit-vector plus selected group ids)."""
    from repro.host import dram

    host = read_model.config.host
    bitvector_bytes = stored.records_per_page / 8
    time_s = dram.stream_read_time(host, bitvector_bytes)
    if len(selected_indices) and group_attributes:
        by_partition: dict[int, list[str]] = {}
        for name in group_attributes:
            by_partition.setdefault(stored.partition_of(name), []).append(name)
        for partition, names in by_partition.items():
            lines = read_model.count_record_lines(
                stored, partition, selected_indices, names
            )
            time_s += dram.scattered_read_time(host, lines, threads=1)
    return time_s
