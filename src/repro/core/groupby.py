"""The hybrid GROUP-BY planner (Section IV).

pim-gb's latency grows with the number of subgroups but is independent of
their sizes; host-gb's latency grows with the number of records it must read
but handles any number of subgroups at once.  Database data is skewed, so a
few subgroups hold most of the records: the planner therefore PIM-aggregates
the ``k`` (estimated) largest subgroups and leaves the long tail to the host,
choosing ``k`` by minimising the Eq. (3) cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.latency_model import GroupByCostModel
from repro.core.sampling import GroupKey, SubgroupEstimate


@dataclass
class GroupByPlan:
    """The planner's decision for one query."""

    #: Subgroups assigned to pim-gb, largest (estimated) first.
    pim_groups: list[GroupKey]
    #: Whether a host-gb pass over the remaining records is needed.
    host_pass_needed: bool
    #: Total number of potential subgroups (Table II's "total subgroups").
    total_subgroups: int
    #: The subgroup-size estimate the decision was based on.
    estimate: SubgroupEstimate
    #: Predicted Eq. (3) latency of the chosen plan.
    predicted_time_s: float
    #: Predicted latency had all subgroups been left to host-gb (k = 0).
    predicted_host_only_s: float
    #: Predicted latency had all subgroups been PIM-aggregated (k = k_max).
    predicted_pim_only_s: float

    @property
    def k(self) -> int:
        """Number of PIM-aggregated subgroups (Table II's last columns)."""
        return len(self.pim_groups)


class GroupByPlanner:
    """Chooses the pim-gb / host-gb split for a GROUP-BY query."""

    def __init__(self, cost_model: GroupByCostModel):
        self.cost_model = cost_model

    def plan(
        self,
        estimate: SubgroupEstimate,
        pages: float,
        aggregation_reads: int,
        reads_per_record: int,
        total_subgroups: int | None = None,
    ) -> GroupByPlan:
        """Pick ``k`` and the subgroups to PIM-aggregate.

        ``total_subgroups`` defaults to the number of candidate subgroups in
        the estimate (the domain enumerated from the query and database
        definitions); pim-gb may be assigned subgroups never seen in the
        sample — aggregating an empty subgroup is cheap and removes the need
        for a host pass when ``k`` reaches the total.
        """
        if total_subgroups is None:
            total_subgroups = len(estimate.ordered_groups)
        total_subgroups = max(total_subgroups, len(estimate.ordered_groups))

        k, predicted = self.cost_model.choose_k(
            pages=pages,
            aggregation_reads=aggregation_reads,
            reads_per_record=reads_per_record,
            total_subgroups=total_subgroups,
            remaining_ratio=estimate.remaining_ratio,
            candidate_ks=self._candidate_ks(estimate, total_subgroups),
        )
        host_only = self.cost_model.total_latency(
            pages, aggregation_reads, reads_per_record, 0,
            total_subgroups, estimate.remaining_ratio,
        )
        pim_only = self.cost_model.total_latency(
            pages, aggregation_reads, reads_per_record, total_subgroups,
            total_subgroups, estimate.remaining_ratio,
        )
        return GroupByPlan(
            pim_groups=list(estimate.ordered_groups[:k]),
            host_pass_needed=k < total_subgroups,
            total_subgroups=total_subgroups,
            estimate=estimate,
            predicted_time_s=predicted,
            predicted_host_only_s=host_only,
            predicted_pim_only_s=pim_only,
        )

    @staticmethod
    def _candidate_ks(estimate: SubgroupEstimate, total_subgroups: int) -> list[int]:
        """Values of ``k`` worth evaluating.

        Beyond the subgroups observed in the sample, ``r(k)`` no longer
        decreases, so intermediate ``k`` values only add pim-gb cost; the only
        additionally interesting point is ``k = total_subgroups`` (skip
        host-gb entirely).
        """
        observed = estimate.observed_subgroups
        candidates = list(range(0, observed + 1))
        if total_subgroups not in candidates:
            candidates.append(total_subgroups)
        return candidates
