"""The PIM module: a memory rank of PIM-enabled chips.

A :class:`PimModule` owns the capacity bookkeeping of the 32 GB RRAM rank of
Table I and hands out :class:`PimAllocation` objects — contiguous runs of
2 MB huge pages whose crossbars are modelled by one
:class:`~repro.pim.crossbar.CrossbarBank`.  A stored relation (or one
vertical partition of it) lives in exactly one allocation, which is also the
unit on which bulk-bitwise operations are broadcast.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import PimModuleConfig, SystemConfig
from repro.pim.packed import AnyCrossbarBank, make_bank


@dataclass
class PimAllocation:
    """A contiguous allocation of huge pages inside the PIM module."""

    label: str
    first_page: int
    pages: int
    bank: AnyCrossbarBank
    config: PimModuleConfig

    @property
    def crossbars(self) -> int:
        """Number of crossbars backing the allocation."""
        return self.bank.count

    @property
    def rows_per_crossbar(self) -> int:
        return self.bank.rows

    @property
    def record_capacity(self) -> int:
        """Records the allocation can hold at one record per crossbar row."""
        return self.crossbars * self.rows_per_crossbar

    @property
    def bytes(self) -> int:
        return self.pages * self.config.huge_page_bytes

    def crossbar_of_record(self, record_index: int) -> int:
        """Crossbar index holding a record (records fill crossbars in order)."""
        return record_index // self.rows_per_crossbar

    def row_of_record(self, record_index: int) -> int:
        """Row within its crossbar holding a record."""
        return record_index % self.rows_per_crossbar

    def page_of_record(self, record_index: int) -> int:
        """Page index (relative to the allocation) holding a record."""
        return self.crossbar_of_record(record_index) // self.config.crossbars_per_page


class OutOfPimMemoryError(RuntimeError):
    """Raised when an allocation does not fit in the PIM module."""


class PimModule:
    """Capacity manager for a single bulk-bitwise PIM memory rank."""

    def __init__(self, config: SystemConfig | None = None):
        from repro.config import DEFAULT_CONFIG

        self.system_config = config if config is not None else DEFAULT_CONFIG
        self.config = self.system_config.pim
        self._next_page = 0
        self._allocations: dict[str, PimAllocation] = {}

    # ------------------------------------------------------------ allocation
    def allocate_pages(self, pages: int, label: str) -> PimAllocation:
        """Allocate ``pages`` huge pages under ``label``."""
        if pages <= 0:
            raise ValueError("pages must be positive")
        if label in self._allocations:
            raise ValueError(f"allocation label {label!r} already in use")
        if self._next_page + pages > self.config.pages_total:
            raise OutOfPimMemoryError(
                f"allocation of {pages} pages exceeds module capacity "
                f"({self.config.pages_total} pages total, "
                f"{self.pages_free} free)"
            )
        xbar = self.config.crossbar
        bank = make_bank(
            self.system_config.backend,
            count=pages * self.config.crossbars_per_page,
            rows=xbar.rows,
            columns=xbar.columns,
        )
        allocation = PimAllocation(
            label=label,
            first_page=self._next_page,
            pages=pages,
            bank=bank,
            config=self.config,
        )
        self._next_page += pages
        self._allocations[label] = allocation
        return allocation

    def allocate_for_records(self, record_count: int, label: str) -> PimAllocation:
        """Allocate enough pages to store ``record_count`` records."""
        if record_count <= 0:
            raise ValueError("record_count must be positive")
        records_per_page = self.config.records_per_page
        pages = int(math.ceil(record_count / records_per_page))
        return self.allocate_pages(pages, label)

    def free(self, label: str) -> None:
        """Release an allocation (capacity is returned only for the last one)."""
        allocation = self._allocations.pop(label, None)
        if allocation is None:
            raise KeyError(f"no allocation named {label!r}")
        if allocation.first_page + allocation.pages == self._next_page:
            self._next_page = allocation.first_page

    # ------------------------------------------------------------- inspection
    def allocation(self, label: str) -> PimAllocation:
        """Return a previously created allocation."""
        return self._allocations[label]

    @property
    def allocations(self) -> list[PimAllocation]:
        return list(self._allocations.values())

    @property
    def pages_used(self) -> int:
        return self._next_page

    @property
    def pages_free(self) -> int:
        return self.config.pages_total - self._next_page

    @property
    def bytes_used(self) -> int:
        return self.pages_used * self.config.huge_page_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PimModule(pages_used={self.pages_used}, "
            f"pages_total={self.config.pages_total})"
        )
