"""NOR-DAG intermediate representation of compiled PIM programs.

A :class:`~repro.pim.logic.Program` is a flat list of ``NorOp``/``InitOp``
steps over physical columns.  That form is what the controller *dispatches*
(and what the cost model charges — one cycle per step), but it is a poor
shape for fast simulation: columns are mutable storage locations, so the
same logical value is recomputed, copied and re-negated many times.

:func:`lower_program` rewrites a program into a pure dataflow form — a DAG
whose nodes are

* ``INPUT``  — the value a physical column holds *before* the program runs
  (created lazily on first read-before-write),
* ``CONST``  — a boolean constant (from ``InitOp`` or constant folding),
* ``NOR``    — one NOR gate over earlier nodes,

with the column-level mutation story handled by a sequential walk: every
step rebinds its destination column to a new node, so in-place idioms
(ripple-carry accumulation, ``mux_update``) lower correctly by
construction.

While building the DAG we apply the classic local optimisations:

* operand deduplication          (``NOR(a, a)`` → ``NOR(a)``),
* constant folding               (a true operand forces the output low;
  false operands vanish; an operand-free NOR is the constant true),
* double-negation elimination    (``NOR(NOR(x))`` → ``x``, which collapses
  the builder's ``copy``/``store`` chains),
* hash-consing CSE               (structurally identical gates share one
  node).

Dead intermediate columns are eliminated by construction: the lowered DAG
retains only nodes reachable from the program's *output columns* (the
non-scratch columns it writes), so scratch traffic never reaches the fused
kernel.

Every node carries its combinational **depth** — ``INPUT`` is 0, ``CONST``
is 1 (one init cycle) and a ``NOR`` is one more than its deepest operand,
the ``(signal, depth)`` idiom of pyCircuit's primitive cells.  The DAG's
depth (max over outputs) is the critical-path cycle count of the program:
a lower bound on (and usually far below) the sequential op count, and the
basis of the refined latency term in
:mod:`repro.core.latency_model`.  Modelled costs are *never* charged from
the DAG — they come from the original program metadata, which is what
keeps fused execution bit-identical in :class:`~repro.pim.stats.PimStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable, Sequence

from repro.pim.logic import InitOp, NorOp, Program

#: Node kinds of the lowered DAG.
INPUT = "input"
CONST = "const"
NOR = "nor"


@dataclass(frozen=True)
class NorDag:
    """An optimized, topologically ordered NOR dataflow graph.

    ``kinds[i]`` / ``payloads[i]`` describe node ``i``: the payload is a
    column index for ``INPUT``, a ``bool`` for ``CONST`` and a tuple of
    earlier node indices for ``NOR``.  Operands always precede their gate,
    so a single forward pass evaluates the graph.  ``outputs`` maps each
    output column to the node holding its final value.
    """

    kinds: tuple[str, ...]
    payloads: tuple[Hashable, ...]
    depths: tuple[int, ...]
    outputs: tuple[tuple[int, int], ...]
    #: Op count of the source program — the basis of all modelled costs.
    cycles: int

    @property
    def num_nodes(self) -> int:
        return len(self.kinds)

    @property
    def nor_count(self) -> int:
        """Live NOR gates after CSE/folding/dead-code elimination."""
        return sum(1 for kind in self.kinds if kind == NOR)

    @property
    def depth(self) -> int:
        """Critical-path cycle depth over the output columns."""
        if not self.outputs:
            return 0
        return max(self.depths[node] for _, node in self.outputs)

    @property
    def input_columns(self) -> tuple[int, ...]:
        """Columns whose pre-program value the DAG reads."""
        return tuple(
            payload  # type: ignore[misc]
            for kind, payload in zip(self.kinds, self.payloads)
            if kind == INPUT
        )


@dataclass(frozen=True)
class BatchDag:
    """Many programs lowered into one multi-output NOR dataflow graph.

    The node pool is shared across programs, so structurally identical
    subcircuits (e.g. the per-attribute equality networks of group-mask
    programs that differ only in one attribute's constant) are built once
    and evaluated once.  ``INPUT`` payloads are either a plain column index
    (the column's shared pre-batch value) or a ``(program_index, column)``
    tuple for *private* columns whose value differs per program (the
    remote-transfer column of group-by combines) and is bound at run time.
    ``outputs[p]`` holds program ``p``'s ``(column, node)`` bindings.
    """

    kinds: tuple[str, ...]
    payloads: tuple[Hashable, ...]
    depths: tuple[int, ...]
    outputs: tuple[tuple[tuple[int, int], ...], ...]
    #: Summed op count of the source programs — metadata only; modelled
    #: costs are always charged per source program.
    cycles: int

    @property
    def num_nodes(self) -> int:
        return len(self.kinds)

    @property
    def nor_count(self) -> int:
        """Live NOR gates after cross-program CSE/folding/DCE."""
        return sum(1 for kind in self.kinds if kind == NOR)

    @property
    def depth(self) -> int:
        """Critical-path cycle depth over every program's outputs."""
        nodes = [node for bindings in self.outputs for _, node in bindings]
        if not nodes:
            return 0
        return max(self.depths[node] for node in nodes)


class _DagBuilder:
    """Hash-consing builder of the optimisation-time (pre-DCE) node pool."""

    def __init__(self) -> None:
        self.kinds: list[str] = []
        self.payloads: list[Hashable] = []
        self.depths: list[int] = []
        self._cse: dict[Hashable, int] = {}

    def _intern(self, key: Hashable, kind: str, payload: Hashable, depth: int) -> int:
        node = self._cse.get(key)
        if node is None:
            node = len(self.kinds)
            self.kinds.append(kind)
            self.payloads.append(payload)
            self.depths.append(depth)
            self._cse[key] = node
        return node

    def input_(self, column: int) -> int:
        return self._intern((INPUT, column), INPUT, column, 0)

    def private_input(self, program_index: int, column: int) -> int:
        # A per-program input: same physical column, different value per
        # program in a batch (bound by the caller at run time).
        key = (INPUT, program_index, column)
        return self._intern(key, INPUT, (program_index, column), 0)

    def const(self, value: bool) -> int:
        # An InitOp costs one cycle, so a materialised constant has depth 1.
        return self._intern((CONST, value), CONST, bool(value), 1)

    def nor(self, operands: Sequence[int]) -> int:
        live: list[int] = []
        for operand in sorted(set(operands)):
            if self.kinds[operand] == CONST:
                if self.payloads[operand]:
                    return self.const(False)  # a true operand forces 0
                continue  # false operands are NOR identities
            live.append(operand)
        if not live:
            return self.const(True)  # NOR of nothing-but-false is 1
        if len(live) == 1:
            only = live[0]
            # Double negation: NOR(NOR(x)) == x.
            if self.kinds[only] == NOR:
                inner = self.payloads[only]
                if isinstance(inner, tuple) and len(inner) == 1:
                    return inner[0]
        key = (NOR, tuple(live))
        depth = 1 + max(self.depths[operand] for operand in live)
        return self._intern(key, NOR, tuple(live), depth)


def lower_program(
    program: Program, output_columns: Sequence[int] | None = None
) -> NorDag:
    """Lower ``program`` into an optimized :class:`NorDag`.

    ``output_columns`` overrides the program's own notion of its outputs
    (by default the non-scratch columns it writes — see
    :meth:`~repro.pim.logic.ProgramBuilder.build`).  Output columns the
    program never writes are dropped: their value is the identity and needs
    no store.
    """
    builder = _DagBuilder()
    env: dict[int, int] = {}

    def read(column: int) -> int:
        node = env.get(column)
        if node is None:
            node = builder.input_(column)
            env[column] = node
        return node

    for op in program.ops:
        if isinstance(op, NorOp):
            operands = [read(source) for source in op.srcs]
            env[op.dest] = builder.nor(operands)
        elif isinstance(op, InitOp):
            env[op.dest] = builder.const(op.value)
        else:  # pragma: no cover - Program validates its ops
            raise TypeError(f"unsupported op {op!r}")

    columns = (
        tuple(output_columns)
        if output_columns is not None
        else program.output_columns
    )
    raw_outputs = [(column, env[column]) for column in columns if column in env]

    # Dead-code elimination: keep only nodes reachable from the outputs,
    # renumbered in (topological) construction order.
    reachable: set = set()
    stack = [node for _, node in raw_outputs]
    while stack:
        node = stack.pop()
        if node in reachable:
            continue
        reachable.add(node)
        if builder.kinds[node] == NOR:
            stack.extend(builder.payloads[node])  # type: ignore[arg-type]
    order = sorted(reachable)
    renumber = {node: index for index, node in enumerate(order)}

    kinds = tuple(builder.kinds[node] for node in order)
    payloads = tuple(
        tuple(renumber[operand] for operand in builder.payloads[node])
        if builder.kinds[node] == NOR
        else builder.payloads[node]
        for node in order
    )
    depths = tuple(builder.depths[node] for node in order)
    outputs = tuple((column, renumber[node]) for column, node in raw_outputs)
    return NorDag(
        kinds=kinds,
        payloads=payloads,
        depths=depths,
        outputs=outputs,
        cycles=program.cycles,
    )


def lower_program_batch(
    programs: Sequence[Program],
    private_columns: Sequence[int] = (),
) -> BatchDag:
    """Lower many programs into one shared-CSE :class:`BatchDag`.

    Every program is lowered against the *same* pre-batch column state: the
    first read of a column yields one shared ``INPUT`` node reused across
    all programs, so structurally identical subcircuits (per-attribute
    equality networks that recur across subgroup masks) are interned once.
    Columns in ``private_columns`` instead get one ``INPUT`` node per
    ``(program, column)`` pair, for values that differ per program (the
    remote-transfer column of group-by combine programs) and are bound by
    the kernel at run time.

    Batch evaluation deliberately has *pre-state* semantics, not sequential
    semantics: no program observes another program's writes.  Callers must
    only batch programs whose sequential result is independent of order —
    the group-by mask programs qualify because distinct full group keys
    select disjoint row sets.
    """
    builder = _DagBuilder()
    private = frozenset(private_columns)
    per_outputs: list[tuple[tuple[int, int], ...]] = []
    for index, program in enumerate(programs):
        env: dict[int, int] = {}
        for op in program.ops:
            if isinstance(op, NorOp):
                operands: list[int] = []
                for source in op.srcs:
                    node = env.get(source)
                    if node is None:
                        if source in private:
                            node = builder.private_input(index, source)
                        else:
                            node = builder.input_(source)
                        env[source] = node
                    operands.append(node)
                env[op.dest] = builder.nor(operands)
            elif isinstance(op, InitOp):
                env[op.dest] = builder.const(op.value)
            else:  # pragma: no cover - Program validates its ops
                raise TypeError(f"unsupported op {op!r}")
        per_outputs.append(
            tuple(
                (column, env[column])
                for column in program.output_columns
                if column in env
            )
        )

    # Dead-code elimination over the union of every program's outputs.
    reachable: set = set()
    stack = [node for bindings in per_outputs for _, node in bindings]
    while stack:
        node = stack.pop()
        if node in reachable:
            continue
        reachable.add(node)
        if builder.kinds[node] == NOR:
            stack.extend(builder.payloads[node])  # type: ignore[arg-type]
    order = sorted(reachable)
    renumber = {node: index for index, node in enumerate(order)}

    kinds = tuple(builder.kinds[node] for node in order)
    payloads = tuple(
        tuple(renumber[operand] for operand in builder.payloads[node])
        if builder.kinds[node] == NOR
        else builder.payloads[node]
        for node in order
    )
    depths = tuple(builder.depths[node] for node in order)
    outputs = tuple(
        tuple((column, renumber[node]) for column, node in bindings)
        for bindings in per_outputs
    )
    return BatchDag(
        kinds=kinds,
        payloads=payloads,
        depths=depths,
        outputs=outputs,
        cycles=sum(program.cycles for program in programs),
    )
