"""Functional model of a bank of memory crossbar arrays.

A :class:`CrossbarBank` holds the cell contents of ``count`` crossbars, each
``rows x columns`` single-bit cells, as one NumPy boolean array.  All
crossbars of a bank execute the same bulk-bitwise operation concurrently
(this is exactly how a relation stored across many crossbars behaves in the
paper: the host broadcasts the same PIM request to every page of the
relation), so the functional simulation applies each primitive to the whole
bank with one vectorised NumPy operation while the timing model charges the
cycle count of a single crossbar.

The bank also tracks *wear*: the number of cell writes experienced by every
crossbar row.  Fig. 9 of the paper reports the required cell endurance as the
maximum per-row write count divided by the cells of a row (assuming
wear-levelling inside the row), which :mod:`repro.memory.endurance` computes
from these counters.

Bit order convention: a ``width``-bit field stored at column ``offset`` keeps
its least-significant bit in column ``offset`` and its most-significant bit in
column ``offset + width - 1``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


class CrossbarBank:
    """A bank of identical memory crossbars operated in lock step.

    This is the byte-per-bit *reference* backend; the default simulation
    backend is the bit-packed :class:`~repro.pim.packed.PackedCrossbarBank`,
    which implements the identical surface (including the wear-counter side
    effects) on row-packed uint64 words.  Both are selected through
    :attr:`repro.config.SystemConfig.backend`.
    """

    backend = "bool"

    def __init__(self, count: int, rows: int, columns: int) -> None:
        if count <= 0 or rows <= 0 or columns <= 0:
            raise ValueError("count, rows and columns must all be positive")
        self.count = int(count)
        self.rows = int(rows)
        self.columns = int(columns)
        self.bits = np.zeros((self.count, self.rows, self.columns), dtype=bool)
        self.writes_per_row = np.zeros((self.count, self.rows), dtype=np.int64)

    # ------------------------------------------------------------------ misc
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CrossbarBank(count={self.count}, rows={self.rows}, "
            f"columns={self.columns})"
        )

    def _check_field(self, offset: int, width: int) -> None:
        if width <= 0 or width > 64:
            raise ValueError(f"field width must be in [1, 64], got {width}")
        if offset < 0 or offset + width > self.columns:
            raise ValueError(
                f"field [{offset}, {offset + width}) outside crossbar columns "
                f"0..{self.columns}"
            )

    def _check_rows(self, rows) -> None:
        rows = np.asarray(rows)
        if rows.size and (np.any(rows < 0) or np.any(rows >= self.rows)):
            raise ValueError(f"row index outside crossbar rows 0..{self.rows}")

    # -------------------------------------------------------------- load/read
    def write_field(self, xbar: int, row: int, offset: int, width: int, value: int) -> None:
        """Write an unsigned ``width``-bit ``value`` into one crossbar row."""
        self._check_field(offset, width)
        self._check_rows(row)
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        bits = (value >> np.arange(width)) & 1
        self.bits[xbar, row, offset:offset + width] = bits.astype(bool)
        self.writes_per_row[xbar, row] += width

    def read_field(self, xbar: int, row: int, offset: int, width: int) -> int:
        """Read an unsigned ``width``-bit value from one crossbar row."""
        self._check_field(offset, width)
        self._check_rows(row)
        bits = self.bits[xbar, row, offset:offset + width]
        weights = (1 << np.arange(width, dtype=np.uint64))
        return int(np.sum(bits.astype(np.uint64) * weights))

    def write_field_column(
        self, offset: int, width: int, values: np.ndarray, count_wear: bool = True
    ) -> None:
        """Write a field of every row of every crossbar in one shot.

        ``values`` must have shape ``(count, rows)``.  This is the bulk-load
        path used when a relation is first stored into the PIM module.
        """
        self._check_field(offset, width)
        values = np.asarray(values, dtype=np.uint64)
        if values.shape != (self.count, self.rows):
            raise ValueError(
                f"expected values of shape {(self.count, self.rows)}, "
                f"got {values.shape}"
            )
        if width < 64 and np.any(values >= np.uint64(1 << width)):
            raise ValueError(f"some values do not fit in {width} bits")
        # Fast path: explode the values into bits with one unpackbits call
        # (little-endian bytes, LSB-first bits — the row bit order).
        raw = np.ascontiguousarray(values, dtype="<u8").view(np.uint8)
        raw = raw.reshape(self.count, self.rows, 8)
        bits = np.unpackbits(raw, axis=-1, bitorder="little")[:, :, :width]
        self.bits[:, :, offset:offset + width] = bits.astype(bool)
        if count_wear:
            self.writes_per_row += width

    def read_field_all(self, offset: int, width: int) -> np.ndarray:
        """Decode a field from every row of every crossbar.

        Returns an array of shape ``(count, rows)`` with dtype ``uint64``.
        This is a *functional* helper (it does not model timing); callers in
        the host read path and the aggregation circuit account for the reads
        separately.
        """
        self._check_field(offset, width)
        # Fast path: pack the bit slab LSB-first into little-endian bytes and
        # reinterpret the (padded) bytes as one uint64 per row.
        packed = np.packbits(
            self.bits[:, :, offset:offset + width], axis=-1, bitorder="little"
        )
        out = np.zeros((self.count, self.rows, 8), dtype=np.uint8)
        out[:, :, :packed.shape[-1]] = packed
        return out.view("<u8")[:, :, 0]

    def read_column(self, column: int) -> np.ndarray:
        """Return one bit column of every crossbar, shape ``(count, rows)``."""
        if column < 0 or column >= self.columns:
            raise ValueError(f"column {column} out of range")
        return self.bits[:, :, column].copy()

    def write_bool_column(
        self, column: int, values: np.ndarray, count_wear: bool = True
    ) -> None:
        """Overwrite one bit column from booleans of shape ``(count, rows)``."""
        if column < 0 or column >= self.columns:
            raise ValueError(f"column {column} out of range")
        values = np.asarray(values, dtype=bool)
        if values.shape != (self.count, self.rows):
            raise ValueError(
                f"expected values of shape {(self.count, self.rows)}, "
                f"got {values.shape}"
            )
        self.bits[:, :, column] = values
        if count_wear:
            self.writes_per_row += 1

    def write_field_rows(
        self, rows: np.ndarray, offset: int, width: int, value: int
    ) -> None:
        """Write one immediate into a field of several (distinct) rows.

        A broadcast equivalent of calling :meth:`write_field` for every
        crossbar and every row of ``rows``, with identical wear accounting.
        """
        self._check_field(offset, width)
        self._check_rows(rows)
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return
        bits = ((value >> np.arange(width)) & 1).astype(bool)
        self.bits[:, rows, offset:offset + width] = bits
        self.writes_per_row[:, rows] += width

    def write_field_row(
        self,
        row: int,
        offset: int,
        width: int,
        values: np.ndarray,
        xbars: np.ndarray | None = None,
    ) -> None:
        """Write a per-crossbar value into a field of one row everywhere.

        A broadcast equivalent of ``write_field(xbar, row, ...)`` for every
        crossbar, with ``values`` of shape ``(count,)``.  With ``xbars`` the
        write (and its wear) is restricted to those crossbars — ``values``
        then carries one value per listed crossbar.
        """
        self._check_field(offset, width)
        self._check_rows(row)
        values = np.asarray(values, dtype=np.uint64)
        targets = self.count if xbars is None else len(np.asarray(xbars))
        if values.shape != (targets,):
            raise ValueError(f"expected values of shape {(targets,)}, got {values.shape}")
        if width < 64 and np.any(values >= np.uint64(1 << width)):
            raise ValueError(f"some values do not fit in {width} bits")
        shifts = np.arange(width, dtype=np.uint64)
        bits = ((values[:, None] >> shifts[None, :]) & np.uint64(1)).astype(bool)
        if xbars is None:
            self.bits[:, row, offset:offset + width] = bits
            self.writes_per_row[:, row] += width
        else:
            xbars = np.asarray(xbars, dtype=np.int64)
            self.bits[xbars, row, offset:offset + width] = bits
            self.writes_per_row[xbars, row] += width

    # ------------------------------------------------- masked bulk primitives
    def nor_columns_at(self, dest: int, srcs: Sequence[int], xbars: np.ndarray) -> None:
        """:meth:`nor_columns` restricted to the crossbars in ``xbars``.

        This is the functional side of crossbar skipping: the controller
        broadcasts the operation only to the pages holding candidate
        crossbars, so the other crossbars' cells (and wear counters) are
        untouched.
        """
        if not srcs:
            raise ValueError("NOR needs at least one source column")
        xbars = np.asarray(xbars, dtype=np.int64)
        if xbars.size == 0:
            return
        acc = self.bits[xbars, :, srcs[0]].copy()
        for src in srcs[1:]:
            acc |= self.bits[xbars, :, src]
        self.bits[xbars, :, dest] = ~acc
        self.writes_per_row[xbars] += 1

    def set_column_at(self, dest: int, value: bool, xbars: np.ndarray) -> None:
        """:meth:`set_column` restricted to the crossbars in ``xbars``."""
        xbars = np.asarray(xbars, dtype=np.int64)
        if xbars.size == 0:
            return
        self.bits[xbars, :, dest] = bool(value)
        self.writes_per_row[xbars] += 1

    # ---------------------------------------------------- fused kernel surface
    def kernel_read(self, column: int, xbars: np.ndarray | None = None) -> np.ndarray:
        """Native value of one column for fused evaluation, ``(count, rows)``.

        Without ``xbars`` this is a live view — the fused kernel snapshots
        any value it still needs before writing outputs back.
        """
        if column < 0 or column >= self.columns:
            raise ValueError(f"column {column} out of range")
        if xbars is None:
            return self.bits[:, :, column]
        return self.bits[xbars, :, column]

    def kernel_write(
        self, column: int, value, xbars: np.ndarray | None = None
    ) -> None:
        """Store a fused output value; wear is charged in bulk by the caller."""
        if column < 0 or column >= self.columns:
            raise ValueError(f"column {column} out of range")
        if xbars is None:
            self.bits[:, :, column] = value
        else:
            self.bits[xbars, :, column] = value

    def kernel_ones(self):
        """The all-true value in this backend's native representation."""
        return np.True_

    def kernel_to_bool(self, value) -> np.ndarray:
        """Decode a kernel value into booleans of shape ``(n, rows)``."""
        return np.asarray(value, dtype=bool)

    def kernel_from_bool(self, values: np.ndarray):
        """Encode booleans of shape ``(n, rows)`` as a kernel value."""
        return np.asarray(values, dtype=bool)

    def add_wear(self, writes: int, xbars: np.ndarray | None = None) -> None:
        """Charge ``writes`` cell writes to every row (of ``xbars`` if given)."""
        if xbars is None:
            self.writes_per_row += int(writes)
        else:
            self.writes_per_row[xbars] += int(writes)

    # ----------------------------------------------------- bulk primitives
    def nor_columns(self, dest: int, srcs: Sequence[int]) -> None:
        """Stateful NOR: ``dest`` column of every row becomes NOR of ``srcs``.

        This is the MAGIC-style primitive; it executes on every row of every
        crossbar of the bank concurrently and writes the destination cell of
        every row (one cell write per row).
        """
        if not srcs:
            raise ValueError("NOR needs at least one source column")
        acc = self.bits[:, :, srcs[0]].copy()
        for src in srcs[1:]:
            acc |= self.bits[:, :, src]
        self.bits[:, :, dest] = ~acc
        self.writes_per_row += 1

    def set_column(self, dest: int, value: bool) -> None:
        """Initialise a column of every row to a constant (a bulk write)."""
        self.bits[:, :, dest] = bool(value)
        self.writes_per_row += 1

    def copy_row_pairs(
        self,
        src_rows: np.ndarray,
        dst_rows: np.ndarray,
        src_offset: int,
        dst_offset: int,
        width: int,
    ) -> None:
        """Copy a field from ``src_rows`` to the same field area of ``dst_rows``.

        Used by the in-crossbar reduction tree of
        :mod:`repro.pim.arithmetic`: at every reduction level the accumulator
        of the source row of each pair is copied into the operand slot of the
        destination row.  All crossbars perform the copy concurrently; the
        hardware performs the pairs serially, which the controller accounts
        for separately.
        """
        self._check_field(src_offset, width)
        self._check_field(dst_offset, width)
        src_rows = np.asarray(src_rows, dtype=np.int64)
        dst_rows = np.asarray(dst_rows, dtype=np.int64)
        if src_rows.shape != dst_rows.shape:
            raise ValueError("src_rows and dst_rows must have the same shape")
        src_block = self.bits[:, src_rows, src_offset:src_offset + width]
        self.bits[:, dst_rows, dst_offset:dst_offset + width] = src_block
        self.writes_per_row[:, dst_rows] += width

    # ---------------------------------------------------------------- wear
    def wear_snapshot(self) -> np.ndarray:
        """Return a copy of the per-row write counters."""
        return self.writes_per_row.copy()

    def max_writes_since(self, snapshot: np.ndarray | None = None) -> int:
        """Maximum per-row write count, optionally relative to a snapshot."""
        if snapshot is None:
            return int(self.writes_per_row.max())
        delta = self.writes_per_row - snapshot
        return int(delta.max())

    def reset_wear(self) -> None:
        """Zero the wear counters (used after the initial data load)."""
        self.writes_per_row[:] = 0
