"""Execution and accounting of PIM operations.

:class:`PimExecutor` is the bridge between the functional crossbar model and
the analytical timing/energy/power model.  Every operation the query engine
performs on PIM-resident data goes through one of its methods, which

1. applies the operation functionally to the :class:`~repro.pim.crossbar.CrossbarBank`
   holding the targeted pages, and
2. charges latency, energy, average-power samples, wear and request counts to
   a :class:`~repro.pim.stats.PimStats` object using the Table I device
   parameters from :class:`~repro.config.SystemConfig`.

Timing model
------------

A PIM operation is broadcast to every page of the targeted relation: the host
issues one PIM request per page (Section II-B), separated by the command-bus
issue gap, and the per-page PIM controllers then sequence the bulk-bitwise
primitives on all crossbars of their page concurrently.  The phase latency is
therefore::

    T_phase = pages * issue_gap + T_request

where ``T_request`` is the duration of the operation on a single page
(program cycles x 30 ns for logic, serial row reads for the aggregation
circuit, ...).  The number of concurrently active pages is bounded by
``T_request / issue_gap``, which is what determines the average power of the
phase and hence the peak chip power reported in Fig. 8.
"""

from __future__ import annotations

import math

import numpy as np

from repro.config import SystemConfig
from repro.obs.trace import NULL_TRACER
from repro.pim.arithmetic import BulkAggregationPlan
from repro.pim.crossbar import CrossbarBank
from repro.pim.logic import Program
from repro.pim.stats import PimStats


class PimExecutor:
    """Executes PIM operations on a crossbar bank and accounts for them."""

    def __init__(
        self, config: SystemConfig, stats: PimStats | None = None, tracer=None
    ):
        self.config = config
        self.stats = stats if stats is not None else PimStats()
        #: Span tracer for low-frequency executor-level operations (MUX
        #: updates); per-request operations stay span-free — their charges
        #: attribute to the enclosing stage span through the stats hook.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Program-execution strategy, resolved once.  ``batched`` runs
        # individual programs fused and additionally batches the per-subgroup
        # group-mask programs into multi-output kernels (see
        # :meth:`repro.core.executor.PimQueryEngine._execute_group_by`).
        # All strategies are bit-exact on program outputs and all costs are
        # charged from program metadata either way.
        self._fused = config.execution in ("fused", "batched")
        self.batched = config.execution == "batched"

    def fork(self, stats: PimStats | None = None) -> PimExecutor:
        """A new executor sharing this one's configuration.

        Scatter-gather execution gives every horizontal shard its own
        executor (and hence its own stats object): an executor is not safe
        to share between concurrently running shards because each engine
        execution rebinds ``self.stats``.
        """
        return PimExecutor(self.config, stats, tracer=self.tracer)

    # ------------------------------------------------------------ properties
    @property
    def _xbar(self):
        return self.config.pim.crossbar

    @property
    def _pim(self):
        return self.config.pim

    def _crossbars_per_page(self) -> int:
        return self._pim.crossbars_per_page

    # ------------------------------------------------------------- internals
    def _phase_time(self, pages: int, request_time_s: float) -> float:
        """Total latency of broadcasting one operation to ``pages`` pages."""
        issue = pages * self._pim.request_issue_gap_s
        return issue + request_time_s

    def _concurrency(self, pages: int, request_time_s: float) -> float:
        """Average number of pages concurrently executing the operation."""
        if request_time_s <= 0:
            return 1.0
        gap = self._pim.request_issue_gap_s
        return float(min(pages, max(1.0, request_time_s / gap)))

    def _controller_energy(self, pages: int, duration_s: float) -> float:
        """Static energy of the active per-page PIM controllers."""
        controllers = pages * self._pim.chips
        return controllers * self._pim.pim_controller_power_w * duration_s

    def _record_phase(
        self,
        phase: str,
        pages: int,
        request_time_s: float,
        dynamic_energy_j: float,
        component: str,
    ) -> None:
        """Common bookkeeping for a broadcast phase."""
        duration = self._phase_time(pages, request_time_s)
        controller_energy = self._controller_energy(pages, duration)
        self.stats.add_time(phase, duration)
        self.stats.add_energy(component, dynamic_energy_j)
        self.stats.add_energy("controller", controller_energy)
        # Average power while the operation is in flight: the dynamic energy
        # is spread over the duration of a single request scaled by the number
        # of concurrently active pages.
        concurrency = self._concurrency(pages, request_time_s)
        if request_time_s > 0 and pages > 0:
            per_page_power = dynamic_energy_j / pages / request_time_s
            module_power = per_page_power * concurrency + controller_energy / max(duration, 1e-12)
            chip_power = module_power / self._pim.chips
            self.stats.add_power_sample(phase, duration, chip_power)
        self.stats.pim_requests += int(round(pages))

    # ------------------------------------------------------------- programs
    def run_program(
        self,
        bank: CrossbarBank,
        program: Program,
        pages: int,
        phase: str = "filter",
    ) -> None:
        """Execute a NOR program on every crossbar of ``pages`` pages."""
        if self._fused:
            program.run_fused(bank)
        else:
            program.execute(bank)
        self._charge_program(bank, program.cycles, pages, phase)

    def charge_program_cost(
        self,
        bank: CrossbarBank,
        cycles: int,
        pages: int,
        phase: str,
        writes_per_row: int | None = None,
        add_wear: bool = False,
    ) -> None:
        """Charge the cost of a program without executing it functionally.

        Used by the fast path of the bulk-bitwise aggregation, whose results
        are produced functionally but whose cost is known analytically.
        """
        self._charge_program(bank, cycles, pages, phase)
        if add_wear and writes_per_row:
            bank.writes_per_row += int(writes_per_row)

    def _charge_program(
        self, bank: CrossbarBank, cycles: int, pages: int, phase: str
    ) -> None:
        xbar = self._xbar
        request_time = cycles * xbar.logic_cycle_s
        crossbars = pages * self._crossbars_per_page()
        # One output cell per row per cycle on every active crossbar.
        energy = cycles * xbar.rows * crossbars * xbar.logic_energy_per_bit_j
        self.stats.logic_ops += cycles * crossbars
        self._record_phase(phase, pages, request_time, energy, "logic")

    # ------------------------------------------------------ crossbar skipping
    def run_program_pruned(
        self,
        bank: CrossbarBank,
        program: Program,
        candidates: np.ndarray,
        pages: float,
        phase: str,
        clear_crossbars: np.ndarray | None = None,
        clear_phase: str = "prune-clear",
    ) -> None:
        """Execute a program on the candidate crossbars only.

        ``candidates`` is a boolean mask over the bank's crossbars (from the
        zone maps); the program's latency, energy, wear and requests are
        charged for exactly that fraction of the broadcast.  ``clear_crossbars``
        marks skipped crossbars whose result column may hold stale ones from
        an earlier broadcast: they receive a single-cycle column clear instead
        of the full program (charged as ``clear_phase``), restoring the
        invariant that a skipped crossbar's result column reads all-zero.
        """
        if program.result_column is None:
            raise ValueError("pruned execution needs a program result column")
        candidate_idx = np.nonzero(np.asarray(candidates, dtype=bool))[0]
        if candidate_idx.size:
            if self._fused:
                program.run_fused(bank, candidate_idx)
            else:
                program.execute_at(bank, candidate_idx)
            self._charge_program(
                bank, program.cycles,
                pages * candidate_idx.size / bank.count, phase,
            )
        self._clear_stale(bank, program.result_column, clear_crossbars,
                          pages, clear_phase)

    def charge_pruned_program_cost(
        self,
        bank: CrossbarBank,
        program: Program,
        candidates: np.ndarray,
        pages: float,
        phase: str,
        clear_crossbars: np.ndarray | None = None,
        clear_phase: str = "prune-clear",
    ) -> None:
        """The vectorized twin of :meth:`run_program_pruned`.

        The caller has already written the known result bits into the result
        column; this charges the pruned program cost analytically and adds the
        per-row wear the masked gate-level execution would have caused —
        identical stored bits, identical modelled cost.
        """
        candidate_idx = np.nonzero(np.asarray(candidates, dtype=bool))[0]
        if candidate_idx.size:
            self._charge_program(
                bank, program.cycles,
                pages * candidate_idx.size / bank.count, phase,
            )
            bank.writes_per_row[candidate_idx] += int(program.writes_per_row)
        if clear_crossbars is not None and clear_crossbars.any():
            clear_idx = np.nonzero(clear_crossbars)[0]
            self._charge_program(
                bank, 1, pages * clear_idx.size / bank.count, clear_phase
            )
            bank.writes_per_row[clear_idx] += 1

    def run_program_at(
        self,
        bank: CrossbarBank,
        program: Program,
        candidates: np.ndarray,
        pages: float,
        phase: str,
    ) -> None:
        """Execute a program on candidate crossbars, preserving the rest.

        The preserve-skipped twin of :meth:`run_program_pruned`, for programs
        whose result on a skipped crossbar equals that crossbar's current
        contents (a DELETE's ``valid &= ~doomed`` with no doomed rows, an
        UPDATE mux where no row matches): skipped crossbars are simply left
        alone — no stale clear, no zero-outside invariant.  Unlike the pruned
        path the program needs no result column.
        """
        candidate_idx = np.nonzero(np.asarray(candidates, dtype=bool))[0]
        if not candidate_idx.size:
            return
        if self._fused:
            program.run_fused(bank, candidate_idx)
        else:
            program.execute_at(bank, candidate_idx)
        self._charge_program(
            bank, program.cycles,
            pages * candidate_idx.size / bank.count, phase,
        )

    def charge_program_cost_at(
        self,
        bank: CrossbarBank,
        program: Program,
        candidates: np.ndarray,
        pages: float,
        phase: str,
    ) -> None:
        """The vectorized twin of :meth:`run_program_at`.

        The caller has already written the full result columns; this charges
        the candidate-restricted program cost analytically and adds the
        per-row wear the masked gate-level execution would have caused.
        """
        candidate_idx = np.nonzero(np.asarray(candidates, dtype=bool))[0]
        if not candidate_idx.size:
            return
        self._charge_program(
            bank, program.cycles,
            pages * candidate_idx.size / bank.count, phase,
        )
        bank.writes_per_row[candidate_idx] += int(program.writes_per_row)

    def _clear_stale(
        self,
        bank: CrossbarBank,
        column: int,
        clear_crossbars: np.ndarray | None,
        pages: float,
        clear_phase: str,
    ) -> None:
        """Single-cycle column clear of skipped-but-stale crossbars."""
        if clear_crossbars is None or not clear_crossbars.any():
            return
        clear_idx = np.nonzero(clear_crossbars)[0]
        bank.set_column_at(column, False, clear_idx)
        self._charge_program(
            bank, 1, pages * clear_idx.size / bank.count, clear_phase
        )

    # ---------------------------------------------------- aggregation circuit
    def aggregate_with_circuit(
        self,
        bank: CrossbarBank,
        field_offset: int,
        field_width: int,
        mask_column: int,
        destination_offset: int,
        pages: int,
        operation: str = "sum",
        phase: str = "pim-agg",
        result_width: int | None = None,
        crossbars: np.ndarray | None = None,
    ) -> np.ndarray:
        """Aggregate a field with the per-crossbar aggregation circuit (Fig. 3).

        The circuit streams the masked attribute of every row through its
        16-bit read port, accumulates it in a CMOS ALU and writes the final
        value back into the crossbar at ``destination_offset``.  Returns the
        per-crossbar aggregates.

        ``crossbars`` restricts the aggregation to a candidate subset (a
        boolean mask over the bank's crossbars, from the zone maps): only
        those crossbars stream their rows, receive the write-back and are
        charged for — the skipped ones hold an all-zero mask column, so their
        partials would be the operation's identity and contribute nothing.
        """
        if not self._pim.aggregation_circuit.enabled:
            raise RuntimeError(
                "aggregation circuit is disabled in this configuration; "
                "use aggregate_bulk_bitwise instead"
            )
        xbar = self._xbar
        circuit = self._pim.aggregation_circuit
        if result_width is None:
            result_width = min(64, field_width + int(math.ceil(math.log2(xbar.rows))))
        values = bank.read_field_all(field_offset, field_width)
        mask = bank.read_column(mask_column)
        from repro.pim.arithmetic import aggregate_reference

        results = aggregate_reference(values, mask, operation, result_width)
        if crossbars is None:
            active = bank.count
            bank.write_field_row(0, destination_offset, result_width, results)
        else:
            candidate_idx = np.nonzero(np.asarray(crossbars, dtype=bool))[0]
            active = int(candidate_idx.size)
            results = results[candidate_idx]
            if active == 0:
                return results
            bank.write_field_row(
                0, destination_offset, result_width, results, xbars=candidate_idx
            )
            pages = pages * active / bank.count

        reads_per_row = int(math.ceil(field_width / xbar.read_width_bits))
        request_time = (
            xbar.rows * reads_per_row * circuit.cycle_s
            + result_width / xbar.read_width_bits * xbar.write_latency_s
        )
        active_crossbars = pages * self._crossbars_per_page()
        read_bits = xbar.rows * reads_per_row * xbar.read_width_bits * active_crossbars
        write_bits = result_width * active_crossbars
        energy = (
            read_bits * xbar.read_energy_per_bit_j
            + write_bits * xbar.write_energy_per_bit_j
            + circuit.power_w * request_time * active_crossbars
        )
        self.stats.bits_read += read_bits
        self.stats.bits_written += write_bits
        self._record_phase(phase, pages, request_time, energy, "agg_circuit")
        return results

    def charge_aggregation_circuit(
        self,
        bank: CrossbarBank,
        field_width: int,
        pages: float,
        phase: str = "pim-agg",
        result_width: int | None = None,
        crossbars: np.ndarray | None = None,
        add_wear: bool = True,
    ) -> None:
        """Charge-only twin of :meth:`aggregate_with_circuit`.

        The batched group-by path computes every subgroup's aggregates from
        one cached field decode, then replays the modelled cost of each
        circuit invocation through here — identical time, energy, power
        samples, request counts and (with ``add_wear``) the ``result_width``
        write-back wear on row 0 that the reference's ``write_field_row``
        causes.  Pass ``add_wear=False`` for the one invocation whose result
        is also written back functionally (the write itself charges wear).
        """
        if not self._pim.aggregation_circuit.enabled:
            raise RuntimeError(
                "aggregation circuit is disabled in this configuration; "
                "use aggregate_bulk_bitwise instead"
            )
        xbar = self._xbar
        circuit = self._pim.aggregation_circuit
        if result_width is None:
            result_width = min(64, field_width + int(math.ceil(math.log2(xbar.rows))))
        if crossbars is None:
            if add_wear:
                bank.writes_per_row[:, 0] += int(result_width)
        else:
            candidate_idx = np.nonzero(np.asarray(crossbars, dtype=bool))[0]
            active = int(candidate_idx.size)
            if active == 0:
                return
            if add_wear:
                bank.writes_per_row[candidate_idx, 0] += int(result_width)
            pages = pages * active / bank.count

        reads_per_row = int(math.ceil(field_width / xbar.read_width_bits))
        request_time = (
            xbar.rows * reads_per_row * circuit.cycle_s
            + result_width / xbar.read_width_bits * xbar.write_latency_s
        )
        active_crossbars = pages * self._crossbars_per_page()
        read_bits = xbar.rows * reads_per_row * xbar.read_width_bits * active_crossbars
        write_bits = result_width * active_crossbars
        energy = (
            read_bits * xbar.read_energy_per_bit_j
            + write_bits * xbar.write_energy_per_bit_j
            + circuit.power_w * request_time * active_crossbars
        )
        self.stats.bits_read += read_bits
        self.stats.bits_written += write_bits
        self._record_phase(phase, pages, request_time, energy, "agg_circuit")

    # --------------------------------------------------- bulk-bitwise (PIMDB)
    def aggregate_bulk_bitwise(
        self,
        bank: CrossbarBank,
        plan: BulkAggregationPlan,
        pages: int,
        phase: str = "pim-agg",
        gate_level: bool = False,
    ) -> np.ndarray:
        """Aggregate with pure bulk-bitwise logic (the PIMDB baseline).

        ``gate_level=True`` executes every NOR primitive and row copy on the
        stored bits (used by tests); the default functional mode produces
        identical results and charges an identical cost.
        """
        cost = plan.cost()
        if gate_level:
            results = plan.run_gate_level(bank, fused=self._fused)
        else:
            results = plan.run_functional(bank)
            bank.writes_per_row += cost.writes_per_row
        xbar = self._xbar
        request_time = cost.total_cycles * xbar.logic_cycle_s
        crossbars = pages * self._crossbars_per_page()
        logic_energy = (
            cost.program_cycles * xbar.rows * crossbars * xbar.logic_energy_per_bit_j
        )
        copy_energy = (
            cost.total_row_copies
            * cost.copied_bits_per_pair
            * crossbars
            * xbar.logic_energy_per_bit_j
        )
        self.stats.logic_ops += cost.total_cycles * crossbars
        self._record_phase(phase, pages, request_time, logic_energy + copy_energy, "logic")
        return results

    # ------------------------------------------------------------ mux update
    def run_mux_update(
        self,
        bank: CrossbarBank,
        program: Program,
        pages: int,
        phase: str = "update",
    ) -> None:
        """Execute an Algorithm 1 MUX update program."""
        with self.tracer.span("mux-update", cycles=program.cycles, pages=pages):
            self.run_program(bank, program, pages, phase=phase)

    # ------------------------------------------------------------ host writes
    def host_write_field(
        self,
        bank: CrossbarBank,
        xbar: int,
        row: int,
        offset: int,
        width: int,
        value: int,
        phase: str = "host-write",
    ) -> None:
        """A standard host store into PIM-resident data (no PIM request)."""
        bank.write_field(xbar, row, offset, width, value)
        xcfg = self._xbar
        self.stats.add_time(phase, xcfg.write_latency_s)
        self.stats.add_energy("write", width * xcfg.write_energy_per_bit_j)
        self.stats.bits_written += width

    def charge_pim_reads(self, bits: int, component: str = "read") -> None:
        """Charge crossbar read energy for bits leaving the PIM arrays."""
        self.stats.bits_read += bits
        self.stats.add_energy(component, bits * self._xbar.read_energy_per_bit_j)
