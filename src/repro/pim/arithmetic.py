"""Bulk-bitwise arithmetic: adders, multipliers and in-crossbar reductions.

This module provides two things:

* **Word-level arithmetic circuits built from NOR primitives** (ripple-carry
  addition/subtraction, shift-add multiplication, field comparison and
  field multiplexing).  These operate on fields *within* a crossbar row and
  execute concurrently on every row of every crossbar, which is how derived
  attributes (for example ``extendedprice * discount``) can be materialised
  in memory.

* **The pure bulk-bitwise aggregation** used by the PIMDB baseline
  (:class:`BulkAggregationPlan`): a masked reduction tree over the rows of a
  crossbar built from row-to-row copies and row-parallel ripple-carry adds.
  The paper's contribution (the per-crossbar aggregation circuit of Fig. 3)
  exists precisely because this reduction is expensive — thousands of logic
  cycles, each writing a cell in every row — and the plan exposes both a
  gate-level execution mode (used by the unit tests to prove functional
  correctness) and a fast functional mode that produces identical results
  and charges an identical, analytically derived cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.pim.crossbar import CrossbarBank
from repro.pim.logic import Program, ProgramBuilder


# --------------------------------------------------------------------------
# Word-level circuits (within-row, all rows concurrently)
# --------------------------------------------------------------------------

def build_masked_copy(
    builder: ProgramBuilder,
    src_columns: Sequence[int],
    mask_column: int,
    dest_columns: Sequence[int],
) -> None:
    """Emit ``dest = src AND mask`` bit by bit (zero-extending ``dest``)."""
    for i, dest in enumerate(dest_columns):
        if i < len(src_columns):
            term = builder.and_(src_columns[i], mask_column)
            builder.store(term, dest)
            builder.free(term)
        else:
            builder.store_const(dest, False)


def build_masked_select_const(
    builder: ProgramBuilder,
    src_columns: Sequence[int],
    mask_column: int,
    identity_value: int,
    dest_columns: Sequence[int],
) -> None:
    """Emit ``dest = mask ? src : identity_value`` (constant identity)."""
    for i, dest in enumerate(dest_columns):
        src = src_columns[i] if i < len(src_columns) else None
        ident_bit = (identity_value >> i) & 1
        if src is None:
            if ident_bit:
                # dest = NOT mask
                not_mask = builder.not_(mask_column)
                builder.store(not_mask, dest)
                builder.free(not_mask)
            else:
                builder.store_const(dest, False)
        elif ident_bit:
            # dest = src OR NOT mask
            not_mask = builder.not_(mask_column)
            term = builder.or_(src, not_mask)
            builder.store(term, dest)
            builder.free(not_mask)
            builder.free(term)
        else:
            # dest = src AND mask
            term = builder.and_(src, mask_column)
            builder.store(term, dest)
            builder.free(term)


def build_ripple_add(
    builder: ProgramBuilder,
    a_columns: Sequence[int],
    b_columns: Sequence[int],
    dest_columns: Sequence[int],
    carry_in: int | None = None,
    invert_b: bool = False,
) -> None:
    """Emit ``dest = a + b`` (or ``a + NOT b (+ carry)`` when ``invert_b``).

    ``dest`` may alias ``a`` (in-place accumulation); each destination bit is
    written only after its original value has been consumed.  Operands
    shorter than ``dest`` are zero-extended (one-extended for an inverted
    ``b``, which is what two's-complement subtraction requires).
    """
    carry = carry_in
    carry_owned = False
    for i, dest in enumerate(dest_columns):
        a_col = a_columns[i] if i < len(a_columns) else None
        b_col = b_columns[i] if i < len(b_columns) else None
        a_bit, a_owned = _operand_bit(builder, a_col, False)
        b_bit, b_owned = _operand_bit(builder, b_col, invert_b)
        sum_bit, new_carry = _full_adder(builder, a_bit, b_bit, carry)
        builder.store(sum_bit, dest)
        builder.free(sum_bit)
        if a_owned:
            builder.free(a_bit)
        if b_owned:
            builder.free(b_bit)
        if carry_owned:
            builder.free(carry)
        carry = new_carry
        carry_owned = True
    if carry_owned:
        builder.free(carry)


def _operand_bit(
    builder: ProgramBuilder, column: int | None, invert: bool
) -> tuple[int | None, bool]:
    """Return (column, owned) for an operand bit, honouring zero extension."""
    if column is None:
        if invert:
            return builder.const(True), True
        return None, False
    if invert:
        return builder.not_(column), True
    return column, False


def _full_adder(
    builder: ProgramBuilder,
    a: int | None,
    b: int | None,
    carry: int | None,
) -> tuple[int, int | None]:
    """One full-adder stage; ``None`` inputs are constant zero."""
    present = [c for c in (a, b, carry) if c is not None]
    if not present:
        return builder.const(False), None
    if len(present) == 1:
        return builder.copy(present[0]), None
    if len(present) == 2:
        x, y = present
        sum_bit = builder.xor(x, y)
        carry_out = builder.and_(x, y)
        return sum_bit, carry_out
    x, y, z = present
    xy = builder.xor(x, y)
    sum_bit = builder.xor(xy, z)
    and_xy = builder.and_(x, y)
    and_zxy = builder.and_(z, xy)
    carry_out = builder.or_(and_xy, and_zxy)
    builder.free(xy)
    builder.free(and_xy)
    builder.free(and_zxy)
    return sum_bit, carry_out


def build_subtract(
    builder: ProgramBuilder,
    a_columns: Sequence[int],
    b_columns: Sequence[int],
    dest_columns: Sequence[int],
) -> None:
    """Emit ``dest = a - b`` in two's complement (``a + NOT b + 1``)."""
    one = builder.const(True)
    build_ripple_add(
        builder, a_columns, b_columns, dest_columns, carry_in=one, invert_b=True
    )
    builder.free(one)


def build_multiply(
    builder: ProgramBuilder,
    a_columns: Sequence[int],
    b_columns: Sequence[int],
    dest_columns: Sequence[int],
    scratch_columns: Sequence[int],
) -> None:
    """Emit ``dest = a * b`` with a shift-add multiplier.

    ``scratch_columns`` must provide ``len(dest_columns)`` dedicated columns
    used to hold the masked, shifted addend of every iteration; they are in
    addition to the builder's gate scratch pool.  The destination must not
    alias the operands.
    """
    width = len(dest_columns)
    if len(scratch_columns) < width:
        raise ValueError("multiplier needs one scratch column per result bit")
    addend = list(scratch_columns[:width])
    for dest in dest_columns:
        builder.store_const(dest, False)
    for i, b_col in enumerate(b_columns):
        if i >= width:
            break
        # addend = (a << i) AND b_i, truncated to the result width.
        for j in range(width):
            src_index = j - i
            if 0 <= src_index < len(a_columns):
                term = builder.and_(a_columns[src_index], b_col)
                builder.store(term, addend[j])
                builder.free(term)
            else:
                builder.store_const(addend[j], False)
        build_ripple_add(builder, dest_columns, addend, dest_columns)


def build_lt_fields(
    builder: ProgramBuilder,
    a_columns: Sequence[int],
    b_columns: Sequence[int],
) -> int:
    """Return a column holding ``a < b`` (unsigned, equal widths)."""
    if len(a_columns) != len(b_columns):
        raise ValueError("operands must have equal widths")
    lt: int | None = None
    eq_prefix: int | None = None
    for i in reversed(range(len(a_columns))):
        a_col, b_col = a_columns[i], b_columns[i]
        not_a = builder.not_(a_col)
        bit_lt = builder.and_(not_a, b_col)
        builder.free(not_a)
        if eq_prefix is not None:
            term = builder.and_(eq_prefix, bit_lt)
            builder.free(bit_lt)
        else:
            term = bit_lt
        if lt is None:
            lt = term
        else:
            new_lt = builder.or_(lt, term)
            builder.free(lt)
            builder.free(term)
            lt = new_lt
        bit_eq = builder.xnor(a_col, b_col)
        if eq_prefix is None:
            eq_prefix = bit_eq
        else:
            new_prefix = builder.and_(eq_prefix, bit_eq)
            builder.free(eq_prefix)
            builder.free(bit_eq)
            eq_prefix = new_prefix
    builder.free(eq_prefix)
    assert lt is not None
    return lt


def build_mux_fields(
    builder: ProgramBuilder,
    select_column: int,
    when_true: Sequence[int],
    when_false: Sequence[int],
    dest_columns: Sequence[int],
) -> None:
    """Emit ``dest = select ? when_true : when_false`` bit by bit."""
    not_sel = builder.not_(select_column)
    for i, dest in enumerate(dest_columns):
        t_col = when_true[i] if i < len(when_true) else None
        f_col = when_false[i] if i < len(when_false) else None
        t_term = builder.and_(t_col, select_column) if t_col is not None else None
        f_term = builder.and_(f_col, not_sel) if f_col is not None else None
        if t_term is not None and f_term is not None:
            result = builder.or_(t_term, f_term)
            builder.store(result, dest)
            builder.free(result)
        elif t_term is not None:
            builder.store(t_term, dest)
        elif f_term is not None:
            builder.store(f_term, dest)
        else:
            builder.store_const(dest, False)
        builder.free(t_term)
        builder.free(f_term)
    builder.free(not_sel)


# --------------------------------------------------------------------------
# Pure bulk-bitwise aggregation (the PIMDB baseline mechanism)
# --------------------------------------------------------------------------

SUPPORTED_AGGREGATIONS = ("sum", "min", "max", "count")


@dataclass
class ReductionLevel:
    """One level of the in-crossbar reduction tree.

    ``unpaired_dst_rows`` are live destination rows whose partner row does
    not exist (the row count is not a power of two); their operand slot must
    be cleared before the level's combine program runs, otherwise a stale
    operand from a previous level would be folded in again.
    """

    src_rows: np.ndarray
    dst_rows: np.ndarray
    unpaired_dst_rows: np.ndarray

    @property
    def pair_count(self) -> int:
        return int(len(self.src_rows))

    @property
    def unpaired_count(self) -> int:
        return int(len(self.unpaired_dst_rows))


class BulkAggregationPlan:
    """Masked aggregation of a row field using only bulk-bitwise primitives.

    The algorithm (PIMDB-style, no aggregation circuit):

    1. *Init*: every row computes ``acc = mask ? field : identity`` into a
       dedicated accumulator area of the row (zero-extended for SUM so the
       running total cannot overflow).
    2. *Reduction tree*: ``log2(rows)`` levels.  At level ``d`` the
       accumulator of row ``r + 2^(d-1)`` is copied (a row-to-row copy, two
       cycles per pair and per copied bit burst) into the operand slot of row
       ``r``, after which a single row-parallel combine program
       (ripple-carry add for SUM/COUNT, compare-and-select for MIN/MAX)
       updates every accumulator concurrently.  Rows that are not
       destinations at a level are already dead and may be clobbered.
    3. The per-crossbar result ends up in the accumulator field of row 0,
       from which the host (or a subsequent PIM request) reads it.

    The plan can be executed gate-by-gate (``gate_level=True``) or
    functionally with identical cost accounting.
    """

    def __init__(
        self,
        rows: int,
        field_offset: int,
        field_width: int,
        mask_column: int,
        acc_offset: int,
        operand_offset: int,
        scratch_columns: Sequence[int],
        operation: str = "sum",
    ) -> None:
        if operation not in SUPPORTED_AGGREGATIONS:
            raise ValueError(f"unsupported aggregation {operation!r}")
        self.rows = int(rows)
        self.field_offset = int(field_offset)
        self.field_width = int(field_width)
        self.mask_column = int(mask_column)
        self.acc_offset = int(acc_offset)
        self.operand_offset = int(operand_offset)
        self.scratch_columns = tuple(scratch_columns)
        self.operation = operation
        self.num_levels = int(math.ceil(math.log2(self.rows))) if self.rows > 1 else 0

    # ------------------------------------------------------------ geometry
    @property
    def acc_width(self) -> int:
        """Accumulator width: grows by log2(rows) bits for SUM/COUNT."""
        if self.operation in ("sum", "count"):
            base = 1 if self.operation == "count" else self.field_width
            return base + self.num_levels
        return self.field_width

    @property
    def acc_columns(self) -> list[int]:
        return list(range(self.acc_offset, self.acc_offset + self.acc_width))

    @property
    def operand_columns(self) -> list[int]:
        return list(range(self.operand_offset, self.operand_offset + self.acc_width))

    @property
    def field_columns(self) -> list[int]:
        return list(range(self.field_offset, self.field_offset + self.field_width))

    def levels(self) -> list[ReductionLevel]:
        """Row pairs for every level of the reduction tree."""
        levels = []
        for d in range(1, self.num_levels + 1):
            stride = 1 << d
            half = stride >> 1
            dst = np.arange(0, self.rows, stride, dtype=np.int64)
            src = dst + half
            valid = src < self.rows
            levels.append(ReductionLevel(
                src_rows=src[valid],
                dst_rows=dst[valid],
                unpaired_dst_rows=dst[~valid],
            ))
        return levels

    @property
    def identity_value(self) -> int:
        """Identity element written to masked-out rows at init."""
        if self.operation == "min":
            return (1 << self.acc_width) - 1
        return 0

    # ------------------------------------------------------------ programs
    def init_program(self) -> Program:
        """Program computing ``acc = mask ? value : identity`` in every row."""
        builder = ProgramBuilder(self.scratch_columns)
        if self.operation == "count":
            src_columns: Sequence[int] = [self.mask_column]
        else:
            src_columns = self.field_columns
        build_masked_select_const(
            builder, src_columns, self.mask_column, self.identity_value,
            self.acc_columns,
        )
        return builder.build()

    def combine_program(self) -> Program:
        """Program combining the operand slot into the accumulator of every row."""
        builder = ProgramBuilder(self.scratch_columns)
        acc = self.acc_columns
        opd = self.operand_columns
        if self.operation in ("sum", "count"):
            build_ripple_add(builder, acc, opd, acc)
        elif self.operation == "min":
            sel = build_lt_fields(builder, opd, acc)
            build_mux_fields(builder, sel, opd, acc, acc)
            builder.free(sel)
        else:  # max
            sel = build_lt_fields(builder, acc, opd)
            build_mux_fields(builder, sel, opd, acc, acc)
            builder.free(sel)
        return builder.build()

    # ----------------------------------------------------------------- cost
    def cost(self) -> BulkAggregationCost:
        """Cycle / write / copy counts of the whole reduction."""
        init = self.init_program()
        combine = self.combine_program()
        levels = self.levels()
        total_pairs = sum(level.pair_count for level in levels)
        total_unpaired = sum(level.unpaired_count for level in levels)
        program_cycles = init.cycles + combine.cycles * len(levels)
        # A row-to-row copy moves the accumulator burst of one pair; the
        # controller performs pairs serially at two cycles per pair.  Live
        # destination rows without a partner need their operand slot cleared
        # (a reset write) before the combine, at the same per-row cost.
        copy_cycles = 2 * (total_pairs + total_unpaired)
        writes_per_row = init.writes_per_row + combine.writes_per_row * len(levels)
        copy_writes_per_dst_row = self.acc_width * len(levels)
        return BulkAggregationCost(
            program_cycles=program_cycles,
            copy_cycles=copy_cycles,
            writes_per_row=writes_per_row + copy_writes_per_dst_row,
            total_row_copies=total_pairs,
            copied_bits_per_pair=self.acc_width,
        )

    # ------------------------------------------------------------ execution
    def run_gate_level(self, bank: CrossbarBank, fused: bool = False) -> np.ndarray:
        """Execute the reduction with real NOR primitives and row copies.

        Returns the per-crossbar aggregate decoded from row 0.  Intended for
        verification on small banks; large executions use
        :meth:`run_functional`.  ``fused`` runs the init/combine programs
        through their fused kernels (bit-exact, identical wear) — the
        combine program in particular replays once per reduction level, so
        its one-off fusion cost amortises across the tree.
        """
        init = self.init_program()
        combine = self.combine_program()
        if fused:
            init.run_fused(bank)
        else:
            init.execute(bank)
        identity = self.identity_value if self.operation == "min" else 0
        for level in self.levels():
            bank.copy_row_pairs(
                level.src_rows, level.dst_rows,
                self.acc_offset, self.operand_offset, self.acc_width,
            )
            bank.write_field_rows(
                level.unpaired_dst_rows, self.operand_offset, self.acc_width,
                identity,
            )
            if fused:
                combine.run_fused(bank)
            else:
                combine.execute(bank)
        return bank.read_field_all(self.acc_offset, self.acc_width)[:, 0].copy()

    def run_functional(self, bank: CrossbarBank) -> np.ndarray:
        """Compute the same per-crossbar aggregates directly.

        The result bits are written back into the accumulator field of row 0
        of every crossbar (as the gate-level execution would leave them), and
        the returned values are identical to :meth:`run_gate_level`.  The
        caller is responsible for charging :meth:`cost`.
        """
        values = bank.read_field_all(self.field_offset, self.field_width)
        mask = bank.read_column(self.mask_column)
        results = aggregate_reference(
            values, mask, self.operation, self.acc_width
        )
        bank.write_field_row(0, self.acc_offset, self.acc_width, results)
        return results


@dataclass(frozen=True)
class BulkAggregationCost:
    """Cost summary of a :class:`BulkAggregationPlan` execution."""

    program_cycles: int
    copy_cycles: int
    writes_per_row: int
    total_row_copies: int
    copied_bits_per_pair: int

    @property
    def total_cycles(self) -> int:
        return self.program_cycles + self.copy_cycles


def aggregate_reference(
    values: np.ndarray, mask: np.ndarray, operation: str, result_width: int
) -> np.ndarray:
    """Reference (NumPy) masked aggregation per crossbar.

    ``values`` and ``mask`` have shape ``(count, rows)``.  Returns one value
    per crossbar, truncated to ``result_width`` bits (matching the in-memory
    accumulator behaviour).
    """
    values = np.asarray(values, dtype=np.uint64)
    mask = np.asarray(mask, dtype=bool)
    limit = np.uint64((1 << result_width) - 1) if result_width < 64 else np.uint64(2**64 - 1)
    if operation in ("sum", "count"):
        source = mask.astype(np.uint64) if operation == "count" else values * mask
        result = source.sum(axis=1, dtype=np.uint64)
        return result & limit
    if operation == "min":
        identity = limit
        masked = np.where(mask, values, identity)
        return masked.min(axis=1)
    if operation == "max":
        masked = np.where(mask, values, np.uint64(0))
        return masked.max(axis=1)
    raise ValueError(f"unsupported aggregation {operation!r}")
