"""Fused word-level execution of lowered NOR DAGs.

:class:`FusedKernel` compiles a :class:`~repro.pim.ir.NorDag` once into a
flat instruction list and evaluates it with whole-array NumPy bitwise
expressions.  One kernel serves both backends: it only touches a bank
through the four-method kernel surface (``kernel_read`` / ``kernel_write``
/ ``kernel_ones`` / ``add_wear``), which the packed bank implements over
``uint64`` words and the boolean reference bank over its bool cube.

The NOR itself is computed as ``(a | b | ...) ^ ones``: on the packed
backend every value in the dataflow keeps its padding bits zero (inputs by
bank invariant, constants and gate outputs by construction), so XOR with
the row mask is exactly the masked complement — one ufunc instead of an
invert-then-mask pair, and the whole evaluation runs inside NumPy with the
GIL released, which is what lets the sharded scatter pool scale.

Bit-exactness contract: a fused run leaves every *output column* (and the
wear counters) bit-identical to the op-by-op dispatch of the same program.
Scratch columns are not written — they are dead storage between programs
(no program reads scratch before writing it), exactly like the vectorized
host path that already skips them.  Modelled costs are charged by the
caller from the original program metadata, never from the kernel.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

from repro.pim.ir import INPUT, NOR, BatchDag, NorDag


class FusedKernel:
    """A compiled, backend-agnostic evaluator for one :class:`NorDag`."""

    __slots__ = ("instructions", "outputs", "depth", "nor_count")

    def __init__(self, dag: NorDag) -> None:
        self.instructions: tuple[tuple[str, Hashable], ...] = tuple(
            zip(dag.kinds, dag.payloads)
        )
        self.outputs: tuple[tuple[int, int], ...] = dag.outputs
        self.depth: int = dag.depth
        self.nor_count: int = dag.nor_count

    def run(self, bank, xbars: Sequence[int] | None = None) -> None:
        """Evaluate the kernel on ``bank`` (optionally on ``xbars`` only).

        Wear is *not* charged here — the caller adds the program's
        per-cycle wear in bulk so the counters match dispatch exactly.
        """
        if xbars is not None and len(xbars) == 0:
            return
        ones = bank.kernel_ones()
        values: list = [None] * len(self.instructions)
        for index, (kind, payload) in enumerate(self.instructions):
            if kind == NOR:
                slots = payload
                value = values[slots[0]]
                if len(slots) == 1:
                    value = np.bitwise_xor(value, ones)
                else:
                    value = np.bitwise_or(value, values[slots[1]])
                    for slot in slots[2:]:
                        np.bitwise_or(value, values[slot], out=value)
                    np.bitwise_xor(value, ones, out=value)
                values[index] = value
            elif kind == INPUT:
                values[index] = bank.kernel_read(payload, xbars)
            else:  # CONST — only ever an output (folding strips const operands)
                values[index] = ones if payload else np.bitwise_xor(ones, ones)
        # Snapshot output values before any write: an output whose value is
        # an INPUT node may be a live view into a column written below.
        pending = []
        for column, slot in self.outputs:
            value = values[slot]
            if self.instructions[slot][0] == INPUT:
                value = np.array(value, copy=True)
            pending.append((column, value))
        for column, value in pending:
            bank.kernel_write(column, value, xbars)


def compile_dag(dag: NorDag) -> FusedKernel:
    """Compile ``dag`` into a reusable :class:`FusedKernel`."""
    return FusedKernel(dag)


class BatchKernel:
    """A compiled evaluator for one multi-program :class:`BatchDag`.

    Unlike :class:`FusedKernel`, a batch kernel is *functional*: it returns
    every program's output values in the bank's native representation and
    writes nothing back.  The caller decides which values become stored
    column state (the group-by stage persists only the final-subgroup
    state, matching the sequential reference) and charges all modelled
    costs from the source programs' metadata.

    ``INPUT`` instructions with a ``(program_index, column)`` payload are
    *private*: their value is looked up in the ``private`` mapping passed
    to :meth:`run` instead of being read from the bank, which is how each
    combine program sees its own subgroup's remote-transfer bits while the
    shared equality subcircuits are still evaluated once.
    """

    __slots__ = ("instructions", "outputs", "depth", "nor_count")

    def __init__(self, dag: BatchDag) -> None:
        self.instructions: tuple[tuple[str, Hashable], ...] = tuple(
            zip(dag.kinds, dag.payloads)
        )
        self.outputs: tuple[tuple[tuple[int, int], ...], ...] = dag.outputs
        self.depth: int = dag.depth
        self.nor_count: int = dag.nor_count

    def run(
        self,
        bank,
        xbars: Sequence[int] | None = None,
        private=None,
    ) -> list[list[tuple[int, object]]]:
        """Evaluate the batch on ``bank`` and return per-program outputs.

        Returns one ``[(column, native_value), ...]`` list per program.
        Returned values may alias each other (CSE) or live bank storage
        (INPUT passthrough) — callers must treat them as read-only
        snapshots of the pre-batch state and copy before mutating the
        bank.  ``private`` maps ``(program_index, column)`` to the native
        value bound to that program's private input (shaped for ``xbars``
        when given).
        """
        if xbars is not None and len(xbars) == 0:
            return [[] for _ in self.outputs]
        ones = bank.kernel_ones()
        values: list = [None] * len(self.instructions)
        for index, (kind, payload) in enumerate(self.instructions):
            if kind == NOR:
                slots = payload
                value = values[slots[0]]
                if len(slots) == 1:
                    value = np.bitwise_xor(value, ones)
                else:
                    value = np.bitwise_or(value, values[slots[1]])
                    for slot in slots[2:]:
                        np.bitwise_or(value, values[slot], out=value)
                    np.bitwise_xor(value, ones, out=value)
                values[index] = value
            elif kind == INPUT:
                if isinstance(payload, tuple):
                    if private is None or payload not in private:
                        raise KeyError(
                            f"batch kernel private input {payload!r} not bound"
                        )
                    values[index] = private[payload]
                else:
                    values[index] = bank.kernel_read(payload, xbars)
            else:  # CONST — only ever an output (folding strips const operands)
                values[index] = ones if payload else np.bitwise_xor(ones, ones)
        return [
            [(column, values[slot]) for column, slot in bindings]
            for bindings in self.outputs
        ]


def compile_batch(dag: BatchDag) -> BatchKernel:
    """Compile ``dag`` into a reusable :class:`BatchKernel`."""
    return BatchKernel(dag)
