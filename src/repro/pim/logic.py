"""NOR-based bulk-bitwise logic programs.

Bulk-bitwise PIM performs computation with stateful logic primitives executed
inside the memory array.  Following the paper (and MAGIC-style RRAM logic),
the single primitive is a **column NOR**: the destination column of every row
receives the NOR of one or two source columns, concurrently in all rows of
all crossbars of the targeted pages.  Initialising a column to a constant is
a bulk write cycle.

:class:`ProgramBuilder` composes these primitives into the circuits the query
compiler needs:

* constant comparisons (``==``, ``!=``, ``<``, ``<=``, ``>``, ``>=``,
  ``BETWEEN``, ``IN``) on bit fields of the crossbar row,
* boolean combinations of intermediate results,
* the in-memory multiplexer of Algorithm 1 used by UPDATE statements.

Every helper returns the index of the column holding its result.  The number
of emitted operations is the cycle count charged by the timing model (one
bulk-bitwise logic cycle, 30 ns in Table I, per primitive).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence



@dataclass(frozen=True)
class NorOp:
    """Column-wise stateful NOR of ``srcs`` into ``dest``."""

    dest: int
    srcs: tuple[int, ...]


@dataclass(frozen=True)
class InitOp:
    """Initialise (bulk write) a column of every row to a constant."""

    dest: int
    value: bool


Operation = NorOp | InitOp


class Program:
    """An executable sequence of bulk-bitwise primitives.

    The program is purely functional with respect to a
    :class:`~repro.pim.crossbar.CrossbarBank`; timing, energy and power are
    accounted by :class:`repro.pim.controller.PimExecutor` from
    :attr:`cycles` and :attr:`writes_per_row`.
    """

    def __init__(
        self,
        ops: Sequence[Operation],
        result_column: int | None = None,
        output_columns: Sequence[int] | None = None,
    ):
        # Frozen: execute() dispatches the pre-split _steps, so a mutable op
        # list could silently desync the executed bits from the cycle/wear
        # accounting derived from len(self.ops).
        self.ops: tuple[Operation, ...] = tuple(ops)
        self.result_column = result_column
        # Pre-split the op stream into a flat typed dispatch list once, so
        # execute() does not re-discriminate op types on every invocation
        # (programs are compiled once and — with the service's program cache
        # — executed many times, on either backend).
        steps = []
        for op in self.ops:
            if isinstance(op, NorOp):
                steps.append((True, op.dest, op.srcs))
            elif isinstance(op, InitOp):
                steps.append((False, op.dest, op.value))
            else:
                raise TypeError(f"unknown operation {op!r}")
        self._steps: tuple[tuple[bool, int, object], ...] = tuple(steps)
        # Columns whose post-program value other code may observe.  A builder
        # program reports its non-scratch destinations; a raw program defaults
        # to every column it writes (fully conservative).  This is what the
        # fused path materialises — scratch destinations are dead storage.
        if output_columns is None:
            output_columns = sorted({op.dest for op in self.ops})
        self.output_columns: tuple[int, ...] = tuple(output_columns)
        # Lazily built fused artefacts (one DAG + kernel per program; the
        # program cache therefore caches fusion alongside compilation).
        self._dag = None
        self._kernel = None

    @property
    def cycles(self) -> int:
        """Number of bulk-bitwise cycles the program takes on a crossbar."""
        return len(self.ops)

    @property
    def writes_per_row(self) -> int:
        """Cell writes each row experiences (one per primitive)."""
        return len(self.ops)

    def _dispatch(self, nor_columns, set_column) -> None:
        """Drive the pre-split step table against a pair of primitives.

        The single integration point of op-by-op execution: the broadcast
        and masked variants only differ in the primitives they bind.
        """
        for is_nor, dest, payload in self._steps:
            if is_nor:
                nor_columns(dest, payload)
            else:
                set_column(dest, payload)

    def execute(self, bank: CrossbarBank) -> None:
        """Apply the program to every row of every crossbar of ``bank``.

        ``bank`` may be either functional backend
        (:class:`~repro.pim.crossbar.CrossbarBank` or
        :class:`~repro.pim.packed.PackedCrossbarBank`); the pre-split flat
        op stream is dispatched against pre-bound primitive methods.
        """
        self._dispatch(bank.nor_columns, bank.set_column)

    def execute_at(self, bank: CrossbarBank, xbars) -> None:
        """Apply the program to the listed crossbars of ``bank`` only.

        The functional side of crossbar skipping: every primitive operates
        column-wise and independently per crossbar, so running the program on
        a subset produces on that subset exactly the bits a full broadcast
        would — while the other crossbars' cells and wear stay untouched.
        """
        self._dispatch(
            lambda dest, srcs: bank.nor_columns_at(dest, srcs, xbars),
            lambda dest, value: bank.set_column_at(dest, value, xbars),
        )

    # ------------------------------------------------------------ fused path
    def ir(self):
        """The program lowered to its optimized NOR DAG (memoised)."""
        if self._dag is None:
            from repro.pim.ir import lower_program

            self._dag = lower_program(self)
        return self._dag

    def fused_kernel(self):
        """The compiled fused kernel of this program (memoised).

        Programs are immutable, so the kernel is built at most once per
        program object; with the service's LRU program cache this makes the
        fusion cost a per-template one-off, exactly like compilation.
        """
        if self._kernel is None:
            from repro.pim.fused import compile_dag

            self._kernel = compile_dag(self.ir())
        return self._kernel

    @property
    def depth(self) -> int:
        """Critical-path cycle depth of the optimized DAG (``<= cycles``)."""
        return self.ir().depth

    def run_fused(self, bank: CrossbarBank, xbars=None) -> None:
        """Execute the fused kernel — bit-exact with dispatch on the outputs.

        Leaves every output column and the wear counters exactly as
        :meth:`execute` (or :meth:`execute_at` for a crossbar subset) would;
        scratch columns are not touched.  Wear is charged in bulk from the
        program metadata: dispatch wears every row once per primitive, so
        the totals are identical by construction.
        """
        self.fused_kernel().run(bank, xbars)
        bank.add_wear(self.writes_per_row, xbars)

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Program(cycles={self.cycles}, result_column={self.result_column})"


class ScratchExhaustedError(RuntimeError):
    """Raised when a program needs more scratch columns than the row layout has."""


class ProgramBuilder:
    """Builds NOR programs over a fixed pool of scratch columns.

    Args:
        scratch_columns: Column indices the program may freely overwrite.
            Comparison helpers release their intermediates, so a pool of a
            dozen columns is enough for the SSB predicates.
    """

    def __init__(self, scratch_columns: Sequence[int]):
        self._free: list[int] = list(scratch_columns)
        self._all_scratch = tuple(scratch_columns)
        self._ops: list[Operation] = []

    # ------------------------------------------------------------- low level
    def alloc(self) -> int:
        """Allocate a scratch column."""
        if not self._free:
            raise ScratchExhaustedError(
                f"program needs more than {len(self._all_scratch)} scratch columns"
            )
        return self._free.pop()

    def free(self, column: int | None) -> None:
        """Return a scratch column to the pool (no-op for ``None``)."""
        if column is None:
            return
        if column in self._all_scratch and column not in self._free:
            self._free.append(column)

    def emit_nor(self, dest: int, srcs: Sequence[int]) -> None:
        """Emit a raw NOR primitive."""
        self._ops.append(NorOp(dest, tuple(srcs)))

    def emit_init(self, dest: int, value: bool) -> None:
        """Emit a raw column initialisation."""
        self._ops.append(InitOp(dest, bool(value)))

    def build(self, result_column: int | None = None) -> Program:
        """Return the accumulated program.

        The program's output columns are its non-scratch destinations —
        the builder knows its scratch pool, so the emitted program carries
        exactly the set of columns whose final value is observable.
        """
        scratch = set(self._all_scratch)
        outputs = {op.dest for op in self._ops} - scratch
        if result_column is not None:
            outputs.add(result_column)
        return Program(
            self._ops,
            result_column=result_column,
            output_columns=sorted(outputs),
        )

    @property
    def cycles(self) -> int:
        """Cycles emitted so far."""
        return len(self._ops)

    # ----------------------------------------------------------- basic gates
    def const(self, value: bool) -> int:
        """Materialise a constant bit in a scratch column."""
        dest = self.alloc()
        self.emit_init(dest, value)
        return dest

    def nor(self, a: int, b: int | None = None) -> int:
        """NOR of one or two columns into a fresh scratch column."""
        dest = self.alloc()
        srcs = (a,) if b is None else (a, b)
        self.emit_nor(dest, srcs)
        return dest

    def not_(self, a: int) -> int:
        """Logical NOT (single-input NOR)."""
        return self.nor(a)

    def or_(self, a: int, b: int) -> int:
        """Logical OR (NOR followed by NOT)."""
        t = self.nor(a, b)
        result = self.not_(t)
        self.free(t)
        return result

    def and_(self, a: int, b: int) -> int:
        """Logical AND via De Morgan (three NORs)."""
        na = self.not_(a)
        nb = self.not_(b)
        result = self.nor(na, nb)
        self.free(na)
        self.free(nb)
        return result

    def and_not(self, a: int, b: int) -> int:
        """``a AND NOT b`` (two NORs)."""
        na = self.not_(a)
        result = self.nor(na, b)
        self.free(na)
        return result

    def xnor(self, a: int, b: int) -> int:
        """Logical XNOR (four NORs)."""
        t1 = self.nor(a, b)
        t2 = self.nor(a, t1)
        t3 = self.nor(b, t1)
        result = self.nor(t2, t3)
        self.free(t1)
        self.free(t2)
        self.free(t3)
        return result

    def xor(self, a: int, b: int) -> int:
        """Logical XOR (five NORs)."""
        t = self.xnor(a, b)
        result = self.not_(t)
        self.free(t)
        return result

    def copy(self, src: int) -> int:
        """Copy a column into a fresh scratch column (double NOT)."""
        t = self.not_(src)
        result = self.not_(t)
        self.free(t)
        return result

    def store(self, src: int, dest: int) -> None:
        """Copy the value of ``src`` into a specific destination column."""
        t = self.not_(src)
        self.emit_nor(dest, (t,))
        self.free(t)

    def store_const(self, dest: int, value: bool) -> None:
        """Write a constant into a specific destination column."""
        self.emit_init(dest, value)

    # --------------------------------------------------------- reductions
    def and_reduce(self, columns: Sequence[int], consume: bool = False) -> int:
        """AND of several columns.  ``consume`` frees the inputs."""
        return self._reduce(columns, self.and_, consume, identity=True)

    def or_reduce(self, columns: Sequence[int], consume: bool = False) -> int:
        """OR of several columns.  ``consume`` frees the inputs."""
        return self._reduce(columns, self.or_, consume, identity=False)

    def _reduce(self, columns, gate, consume, identity: bool) -> int:
        # Pairwise-balanced tree: the same n-1 gates (hence identical cycle
        # and wear accounting) as a linear chain, but O(log n) combinational
        # depth, which is what the fused kernel's critical path — and the
        # refined latency term derived from it — actually executes.  Peak
        # scratch use matches the chain: each combine allocates one column
        # and releases its two owned operands.
        columns = list(columns)
        if not columns:
            return self.const(identity)
        if len(columns) == 1:
            return self._own(columns[0]) if consume else columns[0]
        level = [(col, consume) for col in columns]
        while len(level) > 1:
            next_level = []
            for i in range(0, len(level) - 1, 2):
                a, a_owned = level[i]
                b, b_owned = level[i + 1]
                out = gate(a, b)
                if a_owned:
                    self.free(a)
                if b_owned:
                    self.free(b)
                next_level.append((out, True))
            if len(level) % 2:
                next_level.append(level[-1])
            level = next_level
        return level[0][0]

    def _own(self, column: int) -> int:
        """Return a column the caller may free (copy if it is not scratch)."""
        if column in self._all_scratch:
            return column
        return self.copy(column)

    # ------------------------------------------------------ constant compare
    def eq_const(self, field_columns: Sequence[int], value: int) -> int:
        """``field == value`` for an unsigned field (LSB-first columns)."""
        self._check_const(field_columns, value)
        acc: int | None = None
        for i, col in enumerate(field_columns):
            bit = (value >> i) & 1
            term = self.copy(col) if bit else self.not_(col)
            if acc is None:
                acc = term
            else:
                new_acc = self.and_(acc, term)
                self.free(acc)
                self.free(term)
                acc = new_acc
        assert acc is not None
        return acc

    def ne_const(self, field_columns: Sequence[int], value: int) -> int:
        """``field != value``."""
        eq = self.eq_const(field_columns, value)
        result = self.not_(eq)
        self.free(eq)
        return result

    def lt_const(self, field_columns: Sequence[int], value: int) -> int:
        """``field < value`` for an unsigned field (LSB-first columns)."""
        width = len(field_columns)
        if value <= 0:
            return self.const(False)
        if value >= (1 << width):
            return self.const(True)
        lt: int | None = None
        eq_prefix: int | None = None
        for i in reversed(range(width)):
            col = field_columns[i]
            cbit = (value >> i) & 1
            if cbit:
                not_b = self.not_(col)
                if eq_prefix is None:
                    term = not_b
                else:
                    term = self.and_(eq_prefix, not_b)
                    self.free(not_b)
                if lt is None:
                    lt = term
                else:
                    new_lt = self.or_(lt, term)
                    self.free(lt)
                    self.free(term)
                    lt = new_lt
                eq_prefix = self._extend_prefix(eq_prefix, col, invert=False)
            else:
                eq_prefix = self._extend_prefix(eq_prefix, col, invert=True)
        self.free(eq_prefix)
        if lt is None:
            return self.const(False)
        return lt

    def _extend_prefix(self, eq_prefix: int | None, col: int, invert: bool) -> int:
        bit = self.not_(col) if invert else self.copy(col)
        if eq_prefix is None:
            return bit
        new_prefix = self.and_(eq_prefix, bit)
        self.free(eq_prefix)
        self.free(bit)
        return new_prefix

    def le_const(self, field_columns: Sequence[int], value: int) -> int:
        """``field <= value``."""
        width = len(field_columns)
        if value >= (1 << width) - 1:
            return self.const(True)
        return self.lt_const(field_columns, value + 1)

    def gt_const(self, field_columns: Sequence[int], value: int) -> int:
        """``field > value``."""
        le = self.le_const(field_columns, value)
        result = self.not_(le)
        self.free(le)
        return result

    def ge_const(self, field_columns: Sequence[int], value: int) -> int:
        """``field >= value``."""
        if value <= 0:
            return self.const(True)
        lt = self.lt_const(field_columns, value)
        result = self.not_(lt)
        self.free(lt)
        return result

    def between_const(self, field_columns: Sequence[int], low: int, high: int) -> int:
        """``low <= field <= high`` (both bounds inclusive)."""
        if low > high:
            return self.const(False)
        ge = self.ge_const(field_columns, low)
        le = self.le_const(field_columns, high)
        result = self.and_(ge, le)
        self.free(ge)
        self.free(le)
        return result

    def isin_const(self, field_columns: Sequence[int], values: Sequence[int]) -> int:
        """``field IN values``."""
        values = sorted(set(int(v) for v in values))
        if not values:
            return self.const(False)
        terms = [self.eq_const(field_columns, v) for v in values]
        return self.or_reduce(terms, consume=True)

    def _check_const(self, field_columns: Sequence[int], value: int) -> None:
        width = len(field_columns)
        if width == 0:
            raise ValueError("empty field")
        if value < 0 or value >= (1 << width):
            raise ValueError(f"constant {value} does not fit in {width} bits")

    # ------------------------------------------------------------ Algorithm 1
    def mux_update(
        self,
        value_columns: Sequence[int],
        update_value: int,
        select_column: int,
    ) -> None:
        """In-memory MUX between stored bits and an immediate (Algorithm 1).

        For every row: if the select bit is 1 the field becomes
        ``update_value``, otherwise it is unchanged.  Two primitives per
        field bit, exactly as in the paper's Algorithm 1 (an OR for constant
        bits that are 1, an AND-NOT for constant bits that are 0), plus the
        temporary column each in-place rewrite needs.
        """
        self._check_const(value_columns, update_value)
        for i, col in enumerate(value_columns):
            cbit = (update_value >> i) & 1
            if cbit:
                # v <- v OR s  ==  NOT(NOR(v, s))
                t = self.nor(col, select_column)
                self.emit_nor(col, (t,))
                self.free(t)
            else:
                # v <- v AND NOT s  ==  NOR(NOT v, s)
                t = self.not_(col)
                self.emit_nor(col, (t, select_column))
                self.free(t)
