"""Bulk-bitwise processing-in-memory substrate.

This package models the RRAM PIM module of the paper at two levels:

* **Functional** — crossbar contents are real bit arrays
  (:class:`repro.pim.crossbar.CrossbarBank`), and every filter, MUX update
  and in-crossbar arithmetic operation executes as a sequence of stateful
  NOR primitives (:mod:`repro.pim.logic`, :mod:`repro.pim.arithmetic`), so
  query answers produced through the PIM path are bit-exact.
* **Analytical timing/energy/wear** — every primitive is accounted against
  the Table I device parameters by :class:`repro.pim.controller.PimExecutor`
  into a :class:`repro.pim.stats.PimStats` object (latency, energy, peak
  power per chip, and per-row write counts for endurance).
"""

from repro.pim.crossbar import CrossbarBank
from repro.pim.logic import Program, ProgramBuilder
from repro.pim.module import PimAllocation, PimModule
from repro.pim.controller import PimExecutor
from repro.pim.stats import PimStats

__all__ = [
    "CrossbarBank",
    "Program",
    "ProgramBuilder",
    "PimAllocation",
    "PimModule",
    "PimExecutor",
    "PimStats",
]
