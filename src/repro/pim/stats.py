"""Accounting of time, energy, power and wear for PIM executions.

A :class:`PimStats` object is filled in by :class:`repro.pim.controller.PimExecutor`
and by the host read-path model while a query executes.  It is the single
source for the numbers behind Figs. 6-9 of the paper:

* ``time_s`` per phase -> execution latency (Fig. 6),
* energy per component -> PIM memory energy (Fig. 7),
* power samples -> peak power of a single PIM chip (Fig. 8),
* ``max_writes_per_row`` -> required cell endurance (Fig. 9).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable


@dataclass
class PowerSample:
    """Average power drawn during one execution phase.

    Attributes:
        phase: Free-form label of the phase (``"filter"``, ``"pim-agg"`` ...).
        duration_s: Length of the phase.
        chip_power_w: Average power drawn by a single PIM chip during the
            phase (the module power divided by the number of chips).
    """

    phase: str
    duration_s: float
    chip_power_w: float


@dataclass
class PimStats:
    """Mutable accumulator of PIM-side execution statistics."""

    #: Wall-clock time attributed to each phase, seconds.
    time_by_phase: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    #: Energy attributed to each component, joules.  Components used by the
    #: simulator: ``logic``, ``read``, ``write``, ``agg_circuit``,
    #: ``controller``, ``host_read``.
    energy_by_component: dict[str, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    #: Counts of primitive events.
    logic_ops: int = 0
    bits_read: int = 0
    bits_written: int = 0
    pim_requests: int = 0
    host_lines_read: int = 0
    host_lines_written: int = 0
    #: Power samples from which the peak chip power is derived.
    power_samples: list[PowerSample] = field(default_factory=list)
    #: Maximum number of cell writes experienced by any single crossbar row.
    max_writes_per_row: int = 0
    #: Observability hook (see :meth:`repro.obs.trace.SpanTracer.bind`):
    #: when set, every :meth:`add_time`/:meth:`add_energy` charge is also
    #: reported as ``hook(kind, key, value)`` so a tracer can attribute it
    #: to the active span.  The merge paths bypass it deliberately —
    #: folding already-charged stats (shard gather, DML roll-ups) must not
    #: double-report.  Excluded from equality: two stats objects with
    #: identical charges compare equal whether or not one was traced.
    trace_hook: Callable[[str, str, float], None] | None = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------ time
    def add_time(self, phase: str, seconds: float) -> None:
        """Attribute ``seconds`` of wall-clock time to ``phase``."""
        if seconds < 0:
            raise ValueError(f"negative time for phase {phase!r}: {seconds}")
        self.time_by_phase[phase] += seconds
        if self.trace_hook is not None:
            self.trace_hook("time", phase, seconds)

    @property
    def total_time_s(self) -> float:
        """Total attributed time across all phases."""
        return float(sum(self.time_by_phase.values()))

    # ---------------------------------------------------------------- energy
    def add_energy(self, component: str, joules: float) -> None:
        """Attribute ``joules`` of energy to ``component``."""
        if joules < 0:
            raise ValueError(f"negative energy for component {component!r}")
        self.energy_by_component[component] += joules
        if self.trace_hook is not None:
            self.trace_hook("energy", component, joules)

    @property
    def total_energy_j(self) -> float:
        """Total PIM-side energy across all components."""
        return float(sum(self.energy_by_component.values()))

    # ----------------------------------------------------------------- power
    def add_power_sample(
        self, phase: str, duration_s: float, chip_power_w: float
    ) -> None:
        """Record the average chip power of one phase."""
        if duration_s <= 0:
            return
        self.power_samples.append(PowerSample(phase, duration_s, chip_power_w))

    @property
    def peak_chip_power_w(self) -> float:
        """Peak power drawn by a single PIM chip over the execution."""
        if not self.power_samples:
            return 0.0
        return max(sample.chip_power_w for sample in self.power_samples)

    # ------------------------------------------------------------------ wear
    def observe_writes_per_row(self, writes_per_row_max: int) -> None:
        """Record the worst per-row write count seen by any crossbar."""
        self.max_writes_per_row = max(self.max_writes_per_row, int(writes_per_row_max))

    # ----------------------------------------------------------------- merge
    def merge(self, other: PimStats) -> PimStats:
        """Fold another stats object into this one (in place) and return self.

        Times are summed per phase; this is appropriate for sequential
        phases.  For parallel phases (the four worker threads), use
        :meth:`merge_parallel` instead.
        """
        for phase, seconds in other.time_by_phase.items():
            self.time_by_phase[phase] += seconds
        self._merge_non_time(other)
        return self

    def merge_parallel(self, others: Iterable[PimStats], phase: str) -> PimStats:
        """Fold concurrently executed stats objects into this one.

        The wall-clock contribution is the *maximum* total time of the
        concurrent executions (they overlap), attributed to ``phase``, while
        energy and wear are summed (they are physical totals).
        """
        others = list(others)
        if not others:
            return self
        self.add_time(phase, max(o.total_time_s for o in others))
        for other in others:
            self._merge_non_time(other)
        return self

    def _merge_non_time(self, other: PimStats) -> None:
        for component, joules in other.energy_by_component.items():
            self.energy_by_component[component] += joules
        self.logic_ops += other.logic_ops
        self.bits_read += other.bits_read
        self.bits_written += other.bits_written
        self.pim_requests += other.pim_requests
        self.host_lines_read += other.host_lines_read
        self.host_lines_written += other.host_lines_written
        self.power_samples.extend(other.power_samples)
        self.max_writes_per_row = max(self.max_writes_per_row, other.max_writes_per_row)

    # ------------------------------------------------------------- reporting
    def totals(self) -> dict[str, float]:
        """Every modelled total, exactly as accumulated — for bit-identity checks.

        Unlike :meth:`summary` (headline metrics, rounded by nobody but also
        summed over dictionaries), this keeps the per-phase and per-component
        breakdowns, so two executions compare equal here iff their charging
        sequences produced identical floats.  The benchmark gates use it to
        assert the batched execution strategy charges *bit-identical* totals
        to per-subgroup dispatch.
        """
        totals: dict[str, float] = {
            f"time:{phase}": seconds
            for phase, seconds in sorted(self.time_by_phase.items())
        }
        totals.update(
            (f"energy:{component}", joules)
            for component, joules in sorted(self.energy_by_component.items())
        )
        totals.update(
            logic_ops=float(self.logic_ops),
            bits_read=float(self.bits_read),
            bits_written=float(self.bits_written),
            pim_requests=float(self.pim_requests),
            host_lines_read=float(self.host_lines_read),
            host_lines_written=float(self.host_lines_written),
            max_writes_per_row=float(self.max_writes_per_row),
            peak_chip_power_w=self.peak_chip_power_w,
        )
        return totals

    def summary(self) -> dict[str, float]:
        """Return a flat dictionary of headline metrics for reporting."""
        return {
            "time_s": self.total_time_s,
            "energy_j": self.total_energy_j,
            "peak_chip_power_w": self.peak_chip_power_w,
            "max_writes_per_row": float(self.max_writes_per_row),
            "logic_ops": float(self.logic_ops),
            "bits_read": float(self.bits_read),
            "bits_written": float(self.bits_written),
            "host_lines_read": float(self.host_lines_read),
        }

    def copy(self) -> PimStats:
        """Return a deep-enough copy of this stats object."""
        clone = PimStats()
        clone.merge(self)
        return clone


def combine_parallel(stats_list: list[PimStats], phase: str = "parallel") -> PimStats:
    """Combine per-thread stats of a parallel phase into a single object."""
    combined = PimStats()
    combined.merge_parallel(stats_list, phase)
    return combined
