"""PIM request descriptors.

The host drives the PIM module with *PIM requests*: memory commands carrying
an address (which selects the targeted huge page) and data describing the
computation (Section II-B of the paper).  The simulator does not serialise
requests onto a bus; instead, :class:`repro.pim.controller.PimExecutor`
creates one descriptor per (page, operation) pair for accounting and
debugging.  The descriptor types below mirror the operations the paper's
system needs:

* :class:`FilterRequest` — run a NOR program implementing a predicate and
  leave the per-record result bit in a designated column.
* :class:`AggregateRequest` — aggregate an attribute of the page's records,
  either with the per-crossbar aggregation circuit (this paper) or with pure
  bulk-bitwise logic (the PIMDB baseline).
* :class:`MuxUpdateRequest` — Algorithm 1: overwrite an attribute of the
  records selected by a previous filter with an immediate value.
* :class:`ComputeRequest` — materialise a derived attribute (e.g. a product
  or difference of two stored attributes) with in-row arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PimRequest:
    """Base class: one request targets one huge page."""

    page_index: int


@dataclass(frozen=True)
class FilterRequest(PimRequest):
    """Evaluate a predicate program; result lands in ``result_column``."""

    cycles: int = 0
    result_column: int | None = None
    description: str = ""


@dataclass(frozen=True)
class AggregateRequest(PimRequest):
    """Aggregate ``field`` over the records whose ``mask_column`` bit is set."""

    operation: str = "sum"
    field_offset: int = 0
    field_width: int = 0
    mask_column: int = 0
    destination_offset: int = 0
    uses_aggregation_circuit: bool = True


@dataclass(frozen=True)
class MuxUpdateRequest(PimRequest):
    """Algorithm 1: conditional overwrite of an attribute with an immediate."""

    field_offset: int = 0
    field_width: int = 0
    update_value: int = 0
    select_column: int = 0


@dataclass(frozen=True)
class ComputeRequest(PimRequest):
    """In-row arithmetic materialising a derived attribute."""

    cycles: int = 0
    description: str = ""


@dataclass(frozen=True)
class ReadRequest(PimRequest):
    """A host read of data resident in the PIM module (standard load path)."""

    lines: int = 0
    description: str = ""
