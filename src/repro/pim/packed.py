"""Bit-packed functional model of a crossbar bank.

:class:`PackedCrossbarBank` is a drop-in replacement for
:class:`~repro.pim.crossbar.CrossbarBank` that stores each *column* of the
bank as row-packed 64-bit words instead of one byte per cell: the cell at
``(xbar, row, column)`` lives in bit ``row % 64`` of
``words[xbar, column, row // 64]``.  A bulk-bitwise primitive — the paper's
column NOR executing concurrently on every row of every crossbar — then
becomes a whole-word bitwise operation (``~(a | b)`` folds 64 rows per
machine word), which is exactly the row parallelism the hardware model
assumes and makes the functional simulation 64x denser in memory and far
cheaper per primitive than the boolean reference backend.

Two invariants keep the backends interchangeable:

* **Bit exactness** — every method produces the same stored bits, decoded
  fields and error behaviour as :class:`CrossbarBank`; the padding bits of
  the last word of a column (rows beyond ``rows``) are always zero.
* **Stats are metadata** — timing, energy and wear are charged by
  :class:`~repro.pim.controller.PimExecutor` from *program* metadata (cycle
  counts, writes per row), never from backend internals, so both backends
  report identical :class:`~repro.pim.stats.PimStats`.  The bank itself only
  maintains the same per-row ``writes_per_row`` counters as the boolean
  backend.

The backend is selected by :attr:`repro.config.SystemConfig.backend`
(``"packed"`` by default, ``"bool"`` for the reference implementation) and
instantiated through :func:`make_bank` by
:meth:`repro.pim.module.PimModule.allocate_pages`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.config import validate_backend
from repro.pim.crossbar import CrossbarBank

_ONE = np.uint64(1)
_WORD_BITS = 64


class PackedCrossbarBank:
    """A bank of identical crossbars stored as row-packed uint64 words.

    The array layout is ``(count, columns, rows_words)`` with
    ``rows_words = ceil(rows / 64)``; bit ``row % 64`` of word ``row // 64``
    holds the cell of ``row``.  All methods mirror
    :class:`~repro.pim.crossbar.CrossbarBank` bit-exactly, including the
    wear-counter side effects and validation errors.
    """

    backend = "packed"

    def __init__(self, count: int, rows: int, columns: int) -> None:
        if count <= 0 or rows <= 0 or columns <= 0:
            raise ValueError("count, rows and columns must all be positive")
        self.count = int(count)
        self.rows = int(rows)
        self.columns = int(columns)
        self.rows_words = (self.rows + _WORD_BITS - 1) // _WORD_BITS
        self.words = np.zeros(
            (self.count, self.columns, self.rows_words), dtype=np.uint64
        )
        self.writes_per_row = np.zeros((self.count, self.rows), dtype=np.int64)
        # Valid-bit mask of each word of a column: all ones except the
        # padding bits of the last word, which stay zero forever.
        tail = np.full(self.rows_words, np.uint64(0xFFFFFFFFFFFFFFFF))
        spare = self.rows_words * _WORD_BITS - self.rows
        if spare:
            tail[-1] = np.uint64((1 << (_WORD_BITS - spare)) - 1)
        self._row_mask = tail

    # ------------------------------------------------------------------ misc
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedCrossbarBank(count={self.count}, rows={self.rows}, "
            f"columns={self.columns})"
        )

    def _check_field(self, offset: int, width: int) -> None:
        if width <= 0 or width > 64:
            raise ValueError(f"field width must be in [1, 64], got {width}")
        if offset < 0 or offset + width > self.columns:
            raise ValueError(
                f"field [{offset}, {offset + width}) outside crossbar columns "
                f"0..{self.columns}"
            )

    def _check_rows(self, rows) -> None:
        # Out-of-range rows must fail loudly (and before any mutation): the
        # word arithmetic would otherwise silently target padding bits.
        rows = np.asarray(rows)
        if rows.size and (np.any(rows < 0) or np.any(rows >= self.rows)):
            raise ValueError(f"row index outside crossbar rows 0..{self.rows}")

    # ------------------------------------------------------- pack/unpack core
    def _unpack_columns(self, offset: int, width: int) -> np.ndarray:
        """Column slab as booleans, shape ``(count, width, rows)``."""
        raw = np.ascontiguousarray(
            self.words[:, offset:offset + width, :], dtype="<u8"
        ).view(np.uint8)
        bits = np.unpackbits(raw, axis=-1, bitorder="little")
        return bits[:, :, : self.rows].astype(bool)

    def _pack_columns(self, offset: int, width: int, slab: np.ndarray) -> None:
        """Store a boolean slab of shape ``(count, width, rows)``."""
        packed = np.packbits(slab, axis=-1, bitorder="little")
        out = np.zeros(
            (self.count, width, self.rows_words * 8), dtype=np.uint8
        )
        out[:, :, : packed.shape[-1]] = packed
        self.words[:, offset:offset + width, :] = out.view("<u8")

    @staticmethod
    def _value_bits(value: int, width: int) -> np.ndarray:
        """LSB-first bits of an immediate, shape ``(width,)`` uint64."""
        shifts = np.arange(width, dtype=np.uint64)
        return (np.uint64(value) >> shifts) & _ONE

    # -------------------------------------------------------------- load/read
    def write_field(self, xbar: int, row: int, offset: int, width: int, value: int) -> None:
        """Write an unsigned ``width``-bit ``value`` into one crossbar row."""
        self._check_field(offset, width)
        self._check_rows(row)
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        word, bit = row // _WORD_BITS, np.uint64(row % _WORD_BITS)
        mask = _ONE << bit
        current = self.words[xbar, offset:offset + width, word]
        self.words[xbar, offset:offset + width, word] = (
            (current & ~mask) | (self._value_bits(value, width) << bit)
        )
        self.writes_per_row[xbar, row] += width

    def read_field(self, xbar: int, row: int, offset: int, width: int) -> int:
        """Read an unsigned ``width``-bit value from one crossbar row."""
        self._check_field(offset, width)
        self._check_rows(row)
        word, bit = row // _WORD_BITS, np.uint64(row % _WORD_BITS)
        bits = (self.words[xbar, offset:offset + width, word] >> bit) & _ONE
        weights = bits << np.arange(width, dtype=np.uint64)
        return int(np.bitwise_or.reduce(weights))

    def write_field_column(
        self, offset: int, width: int, values: np.ndarray, count_wear: bool = True
    ) -> None:
        """Write a field of every row of every crossbar in one shot."""
        self._check_field(offset, width)
        values = np.asarray(values, dtype=np.uint64)
        if values.shape != (self.count, self.rows):
            raise ValueError(
                f"expected values of shape {(self.count, self.rows)}, "
                f"got {values.shape}"
            )
        if width < 64 and np.any(values >= np.uint64(1 << width)):
            raise ValueError(f"some values do not fit in {width} bits")
        raw = np.ascontiguousarray(values, dtype="<u8").view(np.uint8)
        raw = raw.reshape(self.count, self.rows, 8)
        bits = np.unpackbits(raw, axis=-1, bitorder="little")[:, :, :width]
        # (count, rows, width) -> (count, width, rows) and pack along rows.
        self._pack_columns(offset, width, np.ascontiguousarray(bits.swapaxes(1, 2)))
        if count_wear:
            self.writes_per_row += width

    def read_field_all(self, offset: int, width: int) -> np.ndarray:
        """Decode a field from every row of every crossbar, ``(count, rows)``."""
        self._check_field(offset, width)
        slab = self._unpack_columns(offset, width)          # (count, width, rows)
        bits = np.ascontiguousarray(slab.swapaxes(1, 2))    # (count, rows, width)
        packed = np.packbits(bits, axis=-1, bitorder="little")
        out = np.zeros((self.count, self.rows, 8), dtype=np.uint8)
        out[:, :, : packed.shape[-1]] = packed
        return out.view("<u8")[:, :, 0]

    def read_column(self, column: int) -> np.ndarray:
        """Return one bit column of every crossbar, shape ``(count, rows)``."""
        if column < 0 or column >= self.columns:
            raise ValueError(f"column {column} out of range")
        return self._unpack_columns(column, 1)[:, 0, :]

    def write_bool_column(
        self, column: int, values: np.ndarray, count_wear: bool = True
    ) -> None:
        """Overwrite one bit column from booleans of shape ``(count, rows)``."""
        if column < 0 or column >= self.columns:
            raise ValueError(f"column {column} out of range")
        values = np.asarray(values, dtype=bool)
        if values.shape != (self.count, self.rows):
            raise ValueError(
                f"expected values of shape {(self.count, self.rows)}, "
                f"got {values.shape}"
            )
        self._pack_columns(column, 1, values[:, None, :])
        if count_wear:
            self.writes_per_row += 1

    # ------------------------------------------------- masked bulk primitives
    def nor_columns_at(self, dest: int, srcs: Sequence[int], xbars: np.ndarray) -> None:
        """:meth:`nor_columns` restricted to the crossbars in ``xbars``."""
        if not srcs:
            raise ValueError("NOR needs at least one source column")
        xbars = np.asarray(xbars, dtype=np.int64)
        if xbars.size == 0:
            return
        acc = self.words[xbars, srcs[0], :].copy()
        for src in srcs[1:]:
            np.bitwise_or(acc, self.words[xbars, src, :], out=acc)
        np.invert(acc, out=acc)
        np.bitwise_and(acc, self._row_mask, out=acc)
        self.words[xbars, dest, :] = acc
        self.writes_per_row[xbars] += 1

    def set_column_at(self, dest: int, value: bool, xbars: np.ndarray) -> None:
        """:meth:`set_column` restricted to the crossbars in ``xbars``."""
        xbars = np.asarray(xbars, dtype=np.int64)
        if xbars.size == 0:
            return
        if value:
            self.words[xbars, dest, :] = self._row_mask
        else:
            self.words[xbars, dest, :] = 0
        self.writes_per_row[xbars] += 1

    # ---------------------------------------------------- fused kernel surface
    def kernel_read(self, column: int, xbars: np.ndarray | None = None) -> np.ndarray:
        """Native value of one column for fused evaluation, packed words.

        Shape ``(count, rows_words)`` (or ``(len(xbars), rows_words)``); the
        unmasked form is a live view — the fused kernel snapshots any value
        it still needs before writing outputs back.  Padding bits are zero
        by bank invariant.
        """
        if column < 0 or column >= self.columns:
            raise ValueError(f"column {column} out of range")
        if xbars is None:
            return self.words[:, column, :]
        return self.words[xbars, column, :]

    def kernel_write(
        self, column: int, value, xbars: np.ndarray | None = None
    ) -> None:
        """Store a fused output value; wear is charged in bulk by the caller.

        Values produced by the fused kernel keep their padding bits zero
        (constants are built from the row mask and every NOR applies it), so
        the bank invariant is preserved without re-masking here.
        """
        if column < 0 or column >= self.columns:
            raise ValueError(f"column {column} out of range")
        if xbars is None:
            self.words[:, column, :] = value
        else:
            self.words[xbars, column, :] = value

    def kernel_ones(self) -> np.ndarray:
        """The all-true value: the row mask (padding bits stay zero)."""
        return self._row_mask

    def kernel_to_bool(self, value) -> np.ndarray:
        """Decode a kernel value into booleans of shape ``(n, rows)``."""
        value = np.atleast_2d(np.asarray(value, dtype=np.uint64))
        raw = np.ascontiguousarray(value, dtype="<u8").view(np.uint8)
        bits = np.unpackbits(raw, axis=-1, bitorder="little")
        return bits[:, : self.rows].astype(bool)

    def kernel_from_bool(self, values: np.ndarray) -> np.ndarray:
        """Encode booleans of shape ``(n, rows)`` as a kernel value.

        Padding bits of the last word are zero, preserving the bank
        invariant when the result flows through ``kernel_write``.
        """
        values = np.asarray(values, dtype=bool)
        packed = np.packbits(values, axis=-1, bitorder="little")
        out = np.zeros((values.shape[0], self.rows_words * 8), dtype=np.uint8)
        out[:, : packed.shape[-1]] = packed
        return out.view("<u8")

    def add_wear(self, writes: int, xbars: np.ndarray | None = None) -> None:
        """Charge ``writes`` cell writes to every row (of ``xbars`` if given)."""
        if xbars is None:
            self.writes_per_row += int(writes)
        else:
            self.writes_per_row[xbars] += int(writes)

    # ----------------------------------------------------- bulk primitives
    def nor_columns(self, dest: int, srcs: Sequence[int]) -> None:
        """Stateful NOR of whole columns — 64 rows per machine word."""
        if not srcs:
            raise ValueError("NOR needs at least one source column")
        acc = self.words[:, srcs[0], :].copy()
        for src in srcs[1:]:
            np.bitwise_or(acc, self.words[:, src, :], out=acc)
        np.invert(acc, out=acc)
        np.bitwise_and(acc, self._row_mask, out=acc)
        self.words[:, dest, :] = acc
        self.writes_per_row += 1

    def set_column(self, dest: int, value: bool) -> None:
        """Initialise a column of every row to a constant (a bulk write)."""
        if value:
            self.words[:, dest, :] = self._row_mask
        else:
            self.words[:, dest, :] = 0
        self.writes_per_row += 1

    def copy_row_pairs(
        self,
        src_rows: np.ndarray,
        dst_rows: np.ndarray,
        src_offset: int,
        dst_offset: int,
        width: int,
    ) -> None:
        """Copy a field from ``src_rows`` to the same field area of ``dst_rows``."""
        self._check_field(src_offset, width)
        self._check_field(dst_offset, width)
        src_rows = np.asarray(src_rows, dtype=np.int64)
        dst_rows = np.asarray(dst_rows, dtype=np.int64)
        if src_rows.shape != dst_rows.shape:
            raise ValueError("src_rows and dst_rows must have the same shape")
        src_slab = self._unpack_columns(src_offset, width)
        dst_slab = self._unpack_columns(dst_offset, width)
        dst_slab[:, :, dst_rows] = src_slab[:, :, src_rows]
        self._pack_columns(dst_offset, width, dst_slab)
        self.writes_per_row[:, dst_rows] += width

    # -------------------------------------------------- broadcast field writes
    def write_field_rows(
        self, rows: np.ndarray, offset: int, width: int, value: int
    ) -> None:
        """Write one immediate into a field of several (distinct) rows.

        Equivalent to calling :meth:`write_field` for every crossbar and
        every row of ``rows`` — one vectorised read-modify-write over the
        touched words instead.
        """
        self._check_field(offset, width)
        self._check_rows(rows)
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return
        touched = np.zeros(self.rows_words, dtype=np.uint64)
        np.bitwise_or.at(
            touched, rows // _WORD_BITS,
            _ONE << (rows % _WORD_BITS).astype(np.uint64),
        )
        vbits = self._value_bits(value, width)              # (width,)
        sub = self.words[:, offset:offset + width, :]
        sub &= ~touched
        sub |= vbits[None, :, None] * touched[None, None, :]
        self.writes_per_row[:, rows] += width

    def write_field_row(
        self,
        row: int,
        offset: int,
        width: int,
        values: np.ndarray,
        xbars: np.ndarray | None = None,
    ) -> None:
        """Write a per-crossbar value into a field of one row everywhere.

        Equivalent to ``write_field(xbar, row, ...)`` for every crossbar,
        with ``values`` of shape ``(count,)``.  With ``xbars`` the write (and
        its wear) is restricted to those crossbars — ``values`` then carries
        one value per listed crossbar.
        """
        self._check_field(offset, width)
        self._check_rows(row)
        values = np.asarray(values, dtype=np.uint64)
        targets = self.count if xbars is None else len(np.asarray(xbars))
        if values.shape != (targets,):
            raise ValueError(f"expected values of shape {(targets,)}, got {values.shape}")
        if width < 64 and np.any(values >= np.uint64(1 << width)):
            raise ValueError(f"some values do not fit in {width} bits")
        word, bit = row // _WORD_BITS, np.uint64(row % _WORD_BITS)
        mask = _ONE << bit
        shifts = np.arange(width, dtype=np.uint64)
        bits = (values[:, None] >> shifts[None, :]) & _ONE  # (targets, width)
        if xbars is None:
            current = self.words[:, offset:offset + width, word]
            self.words[:, offset:offset + width, word] = (
                (current & ~mask) | (bits << bit)
            )
            self.writes_per_row[:, row] += width
        else:
            xbars = np.asarray(xbars, dtype=np.int64)
            current = self.words[xbars, offset:offset + width, word]
            self.words[xbars, offset:offset + width, word] = (
                (current & ~mask) | (bits << bit)
            )
            self.writes_per_row[xbars, row] += width

    # ---------------------------------------------------------------- wear
    def wear_snapshot(self) -> np.ndarray:
        """Return a copy of the per-row write counters."""
        return self.writes_per_row.copy()

    def max_writes_since(self, snapshot: np.ndarray | None = None) -> int:
        """Maximum per-row write count, optionally relative to a snapshot."""
        if snapshot is None:
            return int(self.writes_per_row.max())
        delta = self.writes_per_row - snapshot
        return int(delta.max())

    def reset_wear(self) -> None:
        """Zero the wear counters (used after the initial data load)."""
        self.writes_per_row[:] = 0


#: Either functional backend — they expose the identical bank surface.
AnyCrossbarBank = CrossbarBank | PackedCrossbarBank


def make_bank(backend: str, count: int, rows: int, columns: int) -> AnyCrossbarBank:
    """Instantiate the crossbar bank for a configured simulation backend."""
    validate_backend(backend)
    if backend == "packed":
        return PackedCrossbarBank(count=count, rows=rows, columns=columns)
    return CrossbarBank(count=count, rows=rows, columns=columns)
