"""DML over a horizontally sharded relation.

* **INSERT** has a natural routing decision where UPDATE/DELETE do not: each
  record goes to the *least-full* shard (most free slots — tombstones plus
  spare capacity tail), re-evaluated record by record so a large batch
  spreads across shards instead of piling onto one.
* **DELETE** is broadcast like UPDATE: the predicate may select records in
  any shard, so the filter and valid-clearing programs are compiled **once**
  against the shared layouts (:func:`repro.db.dml.compile_delete`) and
  replayed verbatim on every shard, each charging its own executor.
* **Compaction** is per shard — each shard rewrites its own live rows when
  its own fragmentation crosses the threshold (a churn workload rarely
  fragments all shards equally).

Per-shard stats stay on the per-shard executors, exactly like the sharded
query scatter; callers that want one roll-up can merge them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.db.dml import (
    DEFAULT_COMPACTION_THRESHOLD,
    CompactionResult,
    DeleteResult,
    InsertResult,
    compile_delete,
    execute_compaction,
    execute_delete,
    execute_insert,
)
from repro.db.query import Predicate
from repro.db.storage import RelationFullError
from repro.pim.controller import PimExecutor
from repro.sharding.storage import ShardedStoredRelation


@dataclass
class ShardedInsertResult:
    """Outcome of an INSERT batch routed across the shards."""

    #: ``(shard, slot)`` of every inserted record, in input order.
    placements: list[tuple] = field(default_factory=list)
    #: Per-shard insert outcomes (shards that received nothing are absent).
    shard_results: dict[int, InsertResult] = field(default_factory=dict)

    @property
    def records_inserted(self) -> int:
        return len(self.placements)

    @property
    def shards_touched(self) -> int:
        return len(self.shard_results)


@dataclass
class ShardedDeleteResult:
    """Outcome of a DELETE broadcast to every shard."""

    records_deleted: int
    shard_results: list[DeleteResult]
    #: NOR cycles of the (shared) filter program, per shard.
    filter_cycles: int
    #: NOR cycles of the (shared) valid-clearing programs, per shard.
    clear_cycles: int

    @property
    def shards_with_matches(self) -> int:
        return sum(1 for result in self.shard_results if result.records_deleted)


@dataclass
class ShardedCompactionResult:
    """Per-shard compaction outcomes."""

    shard_results: list[CompactionResult]

    @property
    def shards_compacted(self) -> int:
        return sum(1 for result in self.shard_results if result.performed)

    @property
    def slots_reclaimed(self) -> int:
        return sum(result.slots_reclaimed for result in self.shard_results)


def execute_sharded_insert(
    sharded: ShardedStoredRelation,
    records: Sequence[Mapping[str, object]],
    executors: Sequence[PimExecutor] | None = None,
) -> ShardedInsertResult:
    """Insert ``records``, routing each to the currently least-full shard.

    Like the unsharded path, the batch is all-or-nothing against caller
    errors: capacity and every record's encoding are validated before the
    first record is routed, so a bad record anywhere in the batch raises
    with no shard touched.
    """
    records = list(records)
    if len(records) > sharded.free_slots:
        raise RelationFullError(
            f"cannot insert {len(records)} records into {sharded.label!r}: "
            f"only {sharded.free_slots} free slots across "
            f"{sharded.num_shards} shards"
        )
    # The shards share one schema; encoding through the first shard's
    # relation validates the whole batch up-front (all-or-nothing).
    probe = sharded.shards[0].relation
    records = [probe.encode_record(record) for record in records]
    executors = sharded.resolve_executors(executors)

    # Simulate the record-by-record least-full routing over a local copy of
    # the free counts, then execute one sub-batch per shard — each shard
    # grows its ground-truth columns at most once per call.
    free = [shard.free_slots for shard in sharded.shards]
    assignments: list[int] = []
    for _ in records:
        shard_index = sharded.route_insert(free)
        assignments.append(shard_index)
        free[shard_index] -= 1

    result = ShardedInsertResult()
    result.placements = [None] * len(records)
    by_shard: dict[int, list[int]] = {}
    for index, shard_index in enumerate(assignments):
        by_shard.setdefault(shard_index, []).append(index)
    for shard_index, indices in sorted(by_shard.items()):
        shard_result = execute_insert(
            sharded.shards[shard_index],
            [records[i] for i in indices],
            executors[shard_index],
            encoded=True,
        )
        for index, slot in zip(indices, shard_result.slots):
            result.placements[index] = (shard_index, slot)
        result.shard_results[shard_index] = shard_result
    return result


def execute_sharded_delete(
    sharded: ShardedStoredRelation,
    predicate: Predicate,
    executors: Sequence[PimExecutor] | None = None,
    compiler=None,
    vectorized: bool = False,
    pruned: bool | None = None,
) -> ShardedDeleteResult:
    """Tombstone the selected records of every shard (broadcast DELETE).

    The shards share layout objects, so the filter and valid-clearing
    programs are compiled once — through ``compiler`` (e.g. the service's
    program cache) when given — and broadcast verbatim.  In pruned mode
    each shard consults its *own* zone maps: a shard whose statistics prove
    the predicate empty skips its broadcast entirely (the sharded analogue
    of skipping crossbars).
    """
    executors = sharded.resolve_executors(executors)
    compiled = compile_delete(sharded.shards[0], predicate, compiler=compiler)
    shard_results = [
        execute_delete(
            shard, predicate, executor, compiled=compiled,
            vectorized=vectorized, pruned=pruned,
        )
        for shard, executor in zip(sharded.shards, executors)
    ]
    return ShardedDeleteResult(
        records_deleted=sum(r.records_deleted for r in shard_results),
        shard_results=shard_results,
        filter_cycles=shard_results[0].filter_cycles,
        clear_cycles=shard_results[0].clear_cycles,
    )


def execute_sharded_compaction(
    sharded: ShardedStoredRelation,
    executors: Sequence[PimExecutor] | None = None,
    threshold: float = DEFAULT_COMPACTION_THRESHOLD,
    force: bool = False,
    cluster_by: str | None = None,
) -> ShardedCompactionResult:
    """Compact every shard whose own fragmentation crosses ``threshold``.

    Each shard re-clusters independently (``cluster_by`` defaults to the
    shard's own hottest column — shards of one relation converge to the
    same one, since the scatter sends every query to all of them).
    """
    executors = sharded.resolve_executors(executors)
    return ShardedCompactionResult(
        shard_results=[
            execute_compaction(
                shard, executor, threshold=threshold, force=force,
                cluster_by=cluster_by,
            )
            for shard, executor in zip(sharded.shards, executors)
        ]
    )
