"""Horizontal sharding with scatter-gather execution.

Scaling the paper's single-relation engine to a serving workload means the
classic next move: split the pre-joined relation into ``K`` horizontal
shards, give each shard its own crossbar allocation and executor, run one
query as *scatter* (compile once through the shared program cache, execute
on every shard — optionally on a thread pool) then *gather* (merge the
per-shard partial aggregates).  Results are bit-exact with the unsharded
engine; the modelled end-to-end latency is max-over-shards plus a merge
term, never the sum.
"""

from repro.sharding.dml import (
    ShardedCompactionResult,
    ShardedDeleteResult,
    ShardedInsertResult,
    execute_sharded_compaction,
    execute_sharded_delete,
    execute_sharded_insert,
)
from repro.sharding.executor import ShardedQueryEngine, ShardedQueryExecution
from repro.sharding.storage import ShardedStoredRelation, shard_bounds
from repro.sharding.update import ShardedUpdateResult, execute_sharded_update

__all__ = [
    "ShardedCompactionResult",
    "ShardedDeleteResult",
    "ShardedInsertResult",
    "ShardedQueryEngine",
    "ShardedQueryExecution",
    "ShardedStoredRelation",
    "ShardedUpdateResult",
    "execute_sharded_compaction",
    "execute_sharded_delete",
    "execute_sharded_insert",
    "execute_sharded_update",
    "shard_bounds",
]
