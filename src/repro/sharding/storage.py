"""Horizontal sharding of a PIM-resident relation.

A :class:`ShardedStoredRelation` splits a relation's records into ``K``
contiguous horizontal shards and stores each shard in its own crossbar
allocation (its own run of 2 MB huge pages) inside one PIM module.  Every
shard is a full :class:`~repro.db.storage.StoredRelation` — same schema, same
vertical partitioning, and crucially the *same* :class:`~repro.db.encoding.RowLayout`
objects — so

* a NOR program compiled once against the shared layout executes verbatim on
  every shard (the :class:`~repro.service.cache.ProgramCache` keys on layout
  identity and therefore hits across shards), and
* the per-shard results merge through the existing partial-aggregate
  machinery with bit-exact global answers.

The shard relations start out as NumPy *views* into the parent relation's
columns, so at load time the parent is the single functional ground truth:
an in-memory UPDATE applied through one shard (see
:mod:`repro.sharding.update`) is immediately visible in the parent relation
and vice versa.  DML (:mod:`repro.sharding.dml`) can grow a shard — a tail
INSERT or a compaction reallocates that shard's columns, decoupling it from
the parent — after which :meth:`ShardedStoredRelation.live_relation` is the
authoritative ground truth and ``self.relation`` is just the load-time
snapshot.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Sequence

import numpy as np

from repro.db.relation import Relation, concatenate
from repro.db.storage import StoredRelation
from repro.pim.controller import PimExecutor
from repro.pim.module import PimModule


def shard_bounds(num_records: int, shards: int) -> list[tuple[int, int]]:
    """Balanced contiguous ``[start, stop)`` record ranges for ``shards``.

    The first ``num_records % shards`` shards receive one extra record, so
    shard sizes differ by at most one and every shard is non-empty.
    """
    if num_records <= 0:
        raise ValueError("num_records must be positive")
    if shards <= 0:
        raise ValueError("shards must be positive")
    if shards > num_records:
        raise ValueError(
            f"cannot split {num_records} records into {shards} non-empty shards"
        )
    base, extra = divmod(num_records, shards)
    bounds: list[tuple[int, int]] = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


class ShardedStoredRelation:
    """A relation split into K horizontal shards of PIM memory."""

    def __init__(
        self,
        relation: Relation,
        module: PimModule,
        shards: int = 2,
        label: str | None = None,
        partitions: Sequence[Sequence[str]] | None = None,
        aggregation_width: int | None = None,
        reserve_bulk_aggregation: bool = True,
    ) -> None:
        """Store ``relation`` as ``shards`` horizontal shards in ``module``.

        Args:
            relation: The full relation; it remains the functional ground
                truth shared (by view) with every shard.
            module: PIM module receiving one allocation per shard (per
                vertical partition).
            shards: Number of horizontal shards (``1 <= shards <= records``).
            label: Base label; shard ``k`` is stored as ``"{label}/s{k}"``.
            partitions / aggregation_width / reserve_bulk_aggregation:
                Forwarded to every shard's :class:`StoredRelation`; all
                shards share one layout per vertical partition.
        """
        self.relation = relation
        self.module = module
        self.label = label or relation.schema.name
        self.initial_records = len(relation)
        self.bounds = shard_bounds(self.initial_records, shards)
        self._stops = [stop for _, stop in self.bounds]
        self.num_shards = len(self.bounds)

        self.shards: list[StoredRelation] = []
        shared_layouts = None
        for index, (start, stop) in enumerate(self.bounds):
            shard_relation = Relation(
                relation.schema,
                {name: relation.columns[name][start:stop]
                 for name in relation.schema.names},
            )
            stored = StoredRelation(
                shard_relation,
                module,
                label=f"{self.label}/s{index}",
                partitions=partitions,
                aggregation_width=aggregation_width,
                reserve_bulk_aggregation=reserve_bulk_aggregation,
                layouts=shared_layouts,
            )
            if shared_layouts is None:
                shared_layouts = stored.layouts
            self.shards.append(stored)

    # ------------------------------------------------------------- geometry
    @property
    def num_records(self) -> int:
        """Slots in use across all shards (grows/shrinks with DML)."""
        return sum(shard.num_records for shard in self.shards)

    @property
    def live_count(self) -> int:
        """Live (non-tombstoned) records across all shards."""
        return sum(shard.live_count for shard in self.shards)

    @property
    def tombstone_count(self) -> int:
        return sum(shard.tombstone_count for shard in self.shards)

    @property
    def free_slots(self) -> int:
        return sum(shard.free_slots for shard in self.shards)

    @property
    def fragmentation(self) -> float:
        """Tombstoned fraction of the slots in use, over all shards."""
        slots = self.num_records
        return self.tombstone_count / slots if slots else 0.0

    @property
    def layouts(self):
        """The layouts shared by every shard (one per vertical partition)."""
        return self.shards[0].layouts

    @property
    def partitions(self) -> int:
        """Number of vertical partitions within each shard."""
        return self.shards[0].partitions

    @property
    def pages(self) -> int:
        """Total huge pages across all shards (per vertical partition)."""
        return sum(shard.pages for shard in self.shards)

    @property
    def max_shard_pages(self) -> int:
        """Pages of the largest shard — the scatter phase's critical path."""
        return max(shard.pages for shard in self.shards)

    def shard_of_record(self, record_index: int) -> int:
        """Index of the shard a record of the *loaded* relation was placed in.

        Defined over the load-time contiguous bounds (DML inserts are routed
        by :meth:`route_insert` instead).  Binary search over the shard
        ``stop`` offsets: stops are exclusive, so the number of stops at or
        below the index is exactly its shard.
        """
        if not 0 <= record_index < self._stops[-1]:
            raise IndexError(f"record {record_index} out of range")
        return bisect_right(self._stops, record_index)

    def route_insert(self, free_slots: Sequence[int] | None = None) -> int:
        """Shard index an INSERT should target: the least-full shard.

        "Least full" means the most free slots (tombstones plus spare
        capacity tail); ties resolve to the lowest shard index, keeping the
        routing deterministic.  ``free_slots`` substitutes the live per-shard
        counts — the batch router simulates the routing ahead of the actual
        inserts with it.
        """
        free = (
            list(free_slots) if free_slots is not None
            else [shard.free_slots for shard in self.shards]
        )
        return int(max(range(len(free)), key=lambda i: (free[i], -i)))

    # ------------------------------------------------------------- executors
    def make_executors(self, config=None) -> list[PimExecutor]:
        """One executor per shard, forked from a shared prototype.

        Scatter execution (queries and broadcast UPDATEs alike) gives every
        shard its own executor so per-shard stats never race.
        """
        base = PimExecutor(config if config is not None else self.module.system_config)
        return [base.fork() for _ in self.shards]

    def resolve_executors(
        self, executors: Sequence[PimExecutor] | None, config=None
    ) -> list[PimExecutor]:
        """Validate a caller-supplied executor set, or build a fresh one."""
        if executors is None:
            return self.make_executors(config)
        executors = list(executors)
        if len(executors) != self.num_shards:
            raise ValueError(
                f"need one executor per shard ({self.num_shards}), "
                f"got {len(executors)}"
            )
        return executors

    # ------------------------------------------------------------ functional
    def decode_column(self, attribute: str) -> np.ndarray:
        """Decode an attribute of every slot in use, concatenated across shards."""
        return np.concatenate(
            [shard.decode_column(attribute) for shard in self.shards]
        )

    def live_relation(self) -> Relation:
        """The live ground truth: every shard's live rows, in shard order.

        After DML the parent ``self.relation`` is only the load-time
        snapshot — a shard that grew its columns (tail INSERT or compaction)
        reallocates them and stops aliasing the parent — so this concatenation
        over the shard relations is the authoritative functional reference.
        """
        return concatenate([shard.live_relation() for shard in self.shards])

    # ------------------------------------------------------------------ wear
    def wear_snapshot(self) -> list[list[np.ndarray]]:
        """Per-shard wear snapshots (each a per-partition list)."""
        return [shard.wear_snapshot() for shard in self.shards]

    def max_writes_since(self, snapshots: list[list[np.ndarray]]) -> int:
        """Worst per-row write count over all shards since the snapshots."""
        return max(
            shard.max_writes_since(snapshot)
            for shard, snapshot in zip(self.shards, snapshots)
        )

    def writes_per_shard_since(self, snapshots: list[list[np.ndarray]]) -> list[int]:
        """Worst per-row write count of each shard since the snapshots."""
        return [
            shard.max_writes_since(snapshot)
            for shard, snapshot in zip(self.shards, snapshots)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedStoredRelation({self.label!r}, records={self.num_records}, "
            f"shards={self.num_shards}, pages={self.pages})"
        )
