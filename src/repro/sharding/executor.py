"""Scatter-gather query execution across horizontal shards.

:class:`ShardedQueryEngine` runs one query against every shard of a
:class:`~repro.sharding.storage.ShardedStoredRelation` (scatter), then folds
the per-shard partial results into the global answer through the existing
partial-aggregate merge machinery (gather).  Programs are compiled once —
the shards share layout objects, so a shared
:class:`~repro.core.stages.ProgramCompiler` (or the service's LRU
:class:`~repro.service.cache.ProgramCache`) compiles each predicate a single
time and replays it on every shard.

Latency model
-------------

The shards execute in parallel on independent page ranges, so the modelled
end-to-end latency of a sharded execution is

    T = max_k(T_shard_k) + T_merge

— the *maximum* over the shards plus the host-side gather term, not the sum.
Energy, wear and traffic are physical totals and are summed (wear is a
per-row maximum and therefore a max).  This is exactly the semantics of
:meth:`repro.pim.stats.PimStats.merge_parallel`; the gather term is charged
by :func:`repro.host.aggregator.merge_shard_rows`.

The scatter can optionally run on a thread pool (``max_workers > 1``): the
vectorized host paths spend their time in NumPy, which releases the
interpreter lock, so wall-clock — not just modelled — time drops too.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.config import SystemConfig
from repro.core.executor import PimQueryEngine, QueryExecution
from repro.core.latency_model import GroupByCostModel
from repro.core.parallel import ScatterPool
from repro.core.stages import ProgramCompiler
from repro.db.compiler import CompilationError
from repro.db.query import Query
from repro.host.aggregator import merge_shard_rows
from repro.obs.trace import NULL_SPAN, tracer_from_config
from repro.pim.controller import PimExecutor
from repro.pim.stats import PimStats
from repro.planner.planner import CostPlanner, execute_host_scan
from repro.sharding.storage import ShardedStoredRelation


@dataclass
class ShardedQueryExecution(QueryExecution):
    """A merged scatter-gather execution plus its per-shard components.

    The inherited fields describe the *merged* execution: ``rows`` is the
    bit-exact global result, ``stats`` carries the max-over-shards scatter
    time plus the gather term, energy/wear totals, and ``time_s`` /
    ``energy_j`` therefore follow the sharded latency model.  ``plan`` is
    ``None`` — each shard plans its own GROUP-BY split; the per-shard plans
    live on :attr:`shard_executions`.
    """

    #: The individual per-shard executions, in shard order.
    shard_executions: list[QueryExecution] = field(default_factory=list)
    #: Modelled host time of the gather (partial-result merge) phase.
    merge_time_s: float = 0.0
    #: Serial sum of the shard latencies over the parallel (max) latency.
    parallel_speedup: float = 1.0

    @property
    def shards(self) -> int:
        return len(self.shard_executions)

    @property
    def shards_skipped(self) -> int:
        """Shards whose zone maps ruled the whole predicate out."""
        return sum(
            1
            for execution in self.shard_executions
            if execution.crossbars_total and execution.crossbars_scanned == 0
        )

    @property
    def host_routed_shards(self) -> int:
        """Shards the cost planner served through the host-scan path."""
        return sum(
            1
            for execution in self.shard_executions
            if execution.label.endswith("/host-scan")
        )

    @property
    def shard_times_s(self) -> list[float]:
        """Modelled latency of every shard (the scatter critical path)."""
        return [execution.time_s for execution in self.shard_executions]

    @property
    def shard_writes_per_row(self) -> list[int]:
        """Worst per-row write count of every shard."""
        return [execution.max_writes_per_row for execution in self.shard_executions]


class ShardedQueryEngine:
    """Executes queries on a horizontally sharded PIM-resident relation."""

    def __init__(
        self,
        sharded: ShardedStoredRelation,
        config: SystemConfig | None = None,
        label: str = "sharded",
        cost_model: GroupByCostModel | None = None,
        sample_pages: int = 1,
        timing_scale: float = 1.0,
        compiler: ProgramCompiler | None = None,
        vectorized: bool = False,
        pruning: bool = False,
        max_workers: int = 1,
        planner: CostPlanner | None = None,
        pool: ScatterPool | None = None,
        tracer=None,
    ) -> None:
        """Create a scatter-gather engine over a sharded relation.

        Args:
            sharded: The sharded stored relation.
            config: System configuration; defaults to the module's.
            label: Name used in reports; shard engines append ``/s{k}``.
            cost_model / sample_pages / timing_scale / vectorized: Forwarded
                to every shard's :class:`PimQueryEngine`.  ``timing_scale``
                extrapolates each shard — the sharded relation it models is
                ``timing_scale`` times the stored one, shard by shard.
            compiler: Shared program compiler; with the relation's layouts
                shared across shards, one compilation serves all of them.
            pruning: Forwarded to every shard engine — each shard consults
                its own zone maps, and a shard whose maps rule the whole
                predicate out is skipped entirely (no filter broadcast, no
                aggregation; only the zone-map check is charged).
            max_workers: Thread-pool width for the scatter phase; ``1`` runs
                the shards sequentially (the modelled latency is identical —
                it is always max-over-shards).
            planner: Cost-based router consulted per shard: a shard whose
                estimated host-scan time beats its estimated PIM time is
                served through :func:`~repro.planner.planner.execute_host_scan`
                instead (bit-exact rows, host-path cost model).  ``None``
                always executes on PIM.
            pool: A shared :class:`~repro.core.parallel.ScatterPool` (the
                service passes its own, so warm worker threads are reused
                across engines and batches).  ``None`` creates a private
                pool of ``max_workers`` threads, owned — and closed — by
                this engine.
            tracer: A shared :class:`~repro.obs.trace.SpanTracer`; the
                scatter opens one child span per shard (parented explicitly,
                since pool workers start with an empty span context) and the
                gather charges the merge span.  Defaults to the tracer
                implied by ``config.tracing``.
        """
        self.sharded = sharded
        self.config = (
            config if config is not None else sharded.module.system_config
        )
        self.label = label
        self.compiler = compiler if compiler is not None else ProgramCompiler()
        self.vectorized = bool(vectorized)
        self.pruning = bool(pruning)
        self.planner = planner
        self.max_workers = max(1, int(max_workers))
        # The scatter pool is shared (service-owned) or private; a private
        # pool starts its threads lazily and close() releases them.  The
        # same pool serves both nesting levels — the shard scatter here and
        # the per-partition batch kernels inside each shard engine (nested
        # maps run inline on the workers, so sharing cannot deadlock).
        self._owns_pool = pool is None
        self.pool = pool if pool is not None else ScatterPool(self.max_workers)
        self.tracer = tracer if tracer is not None else tracer_from_config(self.config)
        self.shard_engines: list[PimQueryEngine] = [
            PimQueryEngine(
                stored,
                config=self.config,
                label=f"{label}/s{index}",
                cost_model=cost_model,
                sample_pages=sample_pages,
                timing_scale=timing_scale,
                compiler=self.compiler,
                vectorized=self.vectorized,
                pruning=self.pruning,
                scatter_pool=self.pool,
                tracer=self.tracer,
            )
            for index, stored in enumerate(sharded.shards)
        ]

    @property
    def num_shards(self) -> int:
        return len(self.shard_engines)

    def make_executors(self) -> list[PimExecutor]:
        """Fresh per-shard executors (a batching service keeps one set)."""
        return self.sharded.make_executors(self.config)

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release the scatter thread pool if this engine owns it (idempotent)."""
        if self._owns_pool:
            self.pool.close()

    def __enter__(self) -> ShardedQueryEngine:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        with contextlib.suppress(Exception):
            self.close()

    # ------------------------------------------------------------------ main
    def execute(
        self,
        query: Query,
        executor: Sequence[PimExecutor] | None = None,
    ) -> ShardedQueryExecution:
        """Scatter ``query`` over the shards and gather the merged result.

        ``executor``, when given, must hold one :class:`PimExecutor` per
        shard (see :meth:`make_executors`); each shard binds its own
        per-query stats to its own executor, which is what makes the
        thread-pool scatter safe.
        """
        with self.tracer.span(
            "execute", label=self.label, shards=self.num_shards
        ) as span:
            executors = self._resolve_executors(executor)
            empty = self._prescatter_empty(query)
            pooled: list[tuple[int, PimQueryEngine, PimExecutor]] = []
            shard_executions: list[QueryExecution | None] = [None] * self.num_shards
            with self.tracer.span("scatter") as scatter:
                for index, (engine, shard_executor) in enumerate(
                    zip(self.shard_engines, executors)
                ):
                    if empty[index]:
                        # Provably-empty shard: only the (memoized) zone-map
                        # check runs, so it executes inline instead of
                        # occupying a pool slot — the execution and its stats
                        # are unchanged.
                        shard_executions[index] = self._execute_shard(
                            query, index, engine, shard_executor, scatter
                        )
                    else:
                        pooled.append((index, engine, shard_executor))
                results = self.pool.map(
                    lambda work: self._execute_shard(
                        query, work[0], work[1], work[2], scatter
                    ),
                    pooled,
                )
                for (index, _, _), execution in zip(pooled, results):
                    shard_executions[index] = execution
            merged = self._gather(query, shard_executions)
            if self.tracer.enabled:
                span.set(
                    shards_skipped=merged.shards_skipped,
                    host_routed_shards=merged.host_routed_shards,
                    parallel_speedup=merged.parallel_speedup,
                )
            return merged

    def _prescatter_empty(self, query: Query) -> list[bool]:
        """Cross-shard candidate mask: which shards are provably empty.

        Peeks at every shard's memoized plan decision — assembled from the
        shard's cached fragment masks — without consuming the billing, so
        the shard's own zone-map charge is unchanged when it executes.
        """
        if not self.pruning:
            return [False] * self.num_shards
        flags: list[bool] = []
        crossbars_per_page = self.config.pim.crossbars_per_page
        for engine in self.shard_engines:
            statistics = getattr(engine.stored, "statistics", None)
            if statistics is None:
                flags.append(False)
                continue
            try:
                decision = statistics.plan(
                    query.predicate,
                    engine.stored.partition_attributes,
                    crossbars_per_page,
                    peek=True,
                )
            except CompilationError:
                # The shard engine will raise the real error; don't mask it.
                flags.append(False)
                continue
            flags.append(decision.empty)
        return flags

    def _execute_shard(
        self,
        query: Query,
        index: int,
        engine: PimQueryEngine,
        shard_executor: PimExecutor,
        parent=None,
    ) -> QueryExecution:
        """Run one shard of the scatter, cost-routing it when a planner is set.

        Each shard decides independently: shards the query barely selects
        from (or small residual shards) stream through the host while the
        selective shards stay on PIM — the per-shard twin of the service's
        whole-relation routing.

        ``parent`` is the scatter span: pool worker threads start with an
        empty span context, so the shard span cannot inherit it implicitly.
        """
        with self.tracer.span(
            "shard", parent=parent if parent is not NULL_SPAN else None, shard=index
        ):
            if self.planner is not None:
                decision = self.planner.route(query, engine)
                if decision.target == "host":
                    return execute_host_scan(engine, query, decision)
            return engine.execute(query, executor=shard_executor)

    # ---------------------------------------------------------------- gather
    def _gather(
        self, query: Query, shard_executions: list[QueryExecution]
    ) -> ShardedQueryExecution:
        """Merge per-shard executions: results, latency model and metadata."""
        stats = PimStats()
        with self.tracer.span("merge", shards=len(shard_executions)) as span:
            # The merged stats re-state the shards' charges under the sharded
            # latency model (max-over-shards + gather), so the merge span is
            # the only place they are recorded — the per-shard spans already
            # carry each shard's own charges.
            self.tracer.bind(stats)
            stats.merge_parallel(
                [execution.stats for execution in shard_executions],
                phase="scatter",
            )
            scatter_time = stats.total_time_s
            rows = merge_shard_rows(
                [execution.rows for execution in shard_executions],
                query.aggregates,
                config=self.config.host,
                stats=stats,
            )
            merge_time = stats.total_time_s - scatter_time
            if self.tracer.enabled:
                span.set(scatter_max_s=scatter_time, merge_s=merge_time)
        serial_time = sum(e.stats.total_time_s for e in shard_executions)
        # Per-shard selectivities are live-row fractions, so the global
        # figure weights them by live rows (tombstones select nothing).
        weighted_selectivity = sum(
            e.selectivity * engine.stored.live_count
            for e, engine in zip(shard_executions, self.shard_engines)
        )
        estimates = [
            e.estimated_selectivity
            for e in shard_executions
            if e.estimated_selectivity is not None
        ]
        return ShardedQueryExecution(
            query=query,
            label=self.label,
            rows=rows,
            stats=stats,
            selectivity=(
                weighted_selectivity / self.sharded.live_count
                if self.sharded.live_count
                else 0.0
            ),
            # Plans are per shard, so cost-like metadata reports the
            # critical-path (maximum) figures.  total_subgroups is a data
            # property: each shard only enumerates candidates among its own
            # records, so the per-shard maximum can undercount the global
            # figure — the merged result rows are a guaranteed lower bound.
            total_subgroups=max(
                max(e.total_subgroups for e in shard_executions),
                len(rows) if query.group_by else 1,
            ),
            subgroups_in_sample=max(e.subgroups_in_sample for e in shard_executions),
            pim_subgroups=max(e.pim_subgroups for e in shard_executions),
            max_writes_per_row=stats.max_writes_per_row,
            plan=None,
            crossbars_total=sum(e.crossbars_total for e in shard_executions),
            crossbars_scanned=sum(e.crossbars_scanned for e in shard_executions),
            estimated_selectivity=(
                float(np.mean(estimates)) if estimates else None
            ),
            shard_executions=shard_executions,
            merge_time_s=merge_time,
            parallel_speedup=(
                serial_time / scatter_time if scatter_time > 0 else 1.0
            ),
        )

    # -------------------------------------------------------------- internals
    def _resolve_executors(
        self, executor: Sequence[PimExecutor] | None
    ) -> list[PimExecutor]:
        return self.sharded.resolve_executors(executor, self.config)
