"""UPDATE statements over a horizontally sharded relation.

An UPDATE has no natural routing key in the paper's pre-joined layout — the
predicate may select records in any shard — so the update is broadcast:
every shard runs the Algorithm 1 filter-then-mux program on its own pages
(accumulating wear there), and the per-shard record counts are summed.
Because every shard's relation is a view into the parent relation's columns,
the single functional ground truth stays in sync automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.db.query import Predicate
from repro.db.update import UpdateResult, compile_update, execute_update
from repro.pim.controller import PimExecutor
from repro.sharding.storage import ShardedStoredRelation


@dataclass
class ShardedUpdateResult:
    """Outcome of an in-memory UPDATE broadcast to every shard."""

    #: Total records updated across all shards.
    records_updated: int
    #: Per-shard outcomes, in shard order.
    shard_results: list[UpdateResult]
    #: NOR cycles of the (shared) filter program, per shard.
    filter_cycles: int
    #: NOR cycles of the (shared) Algorithm 1 mux program, per shard.
    update_cycles: int

    @property
    def shards_with_matches(self) -> int:
        """Number of shards in which at least one record was rewritten."""
        return sum(1 for result in self.shard_results if result.records_updated)


def execute_sharded_update(
    sharded: ShardedStoredRelation,
    predicate: Predicate,
    assignments: dict[str, object],
    executors: Sequence[PimExecutor] | None = None,
    pruned: bool | None = None,
) -> ShardedUpdateResult:
    """Update ``assignments`` on the selected records of every shard.

    ``executors`` supplies one :class:`PimExecutor` per shard (wear and
    update traffic are charged per shard); fresh executors are created when
    omitted.  The parent relation's columns are updated through the shard
    views, so subsequent queries — sharded or not — see the new values.
    In pruned mode each shard consults its own zone maps and may skip its
    broadcast entirely when they prove the predicate empty there.
    """
    executors = sharded.resolve_executors(executors)
    # The shards share layout objects, so the filter and mux programs are
    # compiled once and broadcast verbatim to every shard.
    compiled = compile_update(sharded.shards[0], predicate, assignments)
    shard_results = [
        execute_update(
            stored, predicate, assignments, executor,
            compiled=compiled, pruned=pruned,
        )
        for stored, executor in zip(sharded.shards, executors)
    ]
    return ShardedUpdateResult(
        records_updated=sum(result.records_updated for result in shard_results),
        shard_results=shard_results,
        filter_cycles=shard_results[0].filter_cycles,
        update_cycles=shard_results[0].update_cycles,
    )
