"""Device-level models: chip area, cell endurance and energy breakdowns.

These models turn the raw counters accumulated during query execution into
the figures the paper reports: the PIM chip area breakdown of Fig. 5, the
per-query energy of Fig. 7 and the required cell endurance of Fig. 9.
"""

from repro.memory.area import ChipAreaModel
from repro.memory.endurance import lifetime_years, required_endurance
from repro.memory.energy import energy_breakdown

__all__ = [
    "ChipAreaModel",
    "lifetime_years",
    "required_endurance",
    "energy_breakdown",
]
