"""PIM chip area model (Fig. 5).

The paper sizes the PIM chip with a modified NVSim plus the synthesis results
of the added aggregation circuit (TSMC 28 nm), reporting a 346 mm^2 chip with
the breakdown of Fig. 5: crossbar peripherals 40.4%, aggregation circuits
13.9%, crossbars 19.24%, bank peripherals 18.83%, PIM controllers 6.84% and
wires 0.76%.

NVSim itself (and the proprietary PDK behind the synthesis numbers) is not
available here, so :class:`ChipAreaModel` is an analytical substitute: each
component's area is the product of a per-instance area and a structurally
derived instance count (crossbars per chip, pages per chip, banks per chip).
The default per-instance areas are calibrated so the default Table I
configuration lands on the paper's totals; changing the geometry (crossbar
size, page size, number of chips) moves the breakdown the way a
circuit-level estimator would.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import PimModuleConfig, SystemConfig


@dataclass(frozen=True)
class AreaParameters:
    """Per-instance component areas (um^2) and structural ratios."""

    #: RRAM cell area per bit.  ~2.5 F^2 at 28 nm.
    cell_area_um2: float = 0.001936
    #: Sense amplifiers, drivers and decoders of one crossbar.
    crossbar_peripheral_um2: float = 2132.0
    #: One synthesized aggregation circuit (Fig. 3), TSMC 28 nm.
    aggregation_circuit_um2: float = 734.0
    #: One per-page PIM controller instance on a chip.
    pim_controller_um2: float = 1445.0
    #: Shared peripherals of one bank (charge pumps, global decoders, IO).
    bank_peripheral_um2: float = 1.018e6
    #: Banks per chip.
    banks_per_chip: int = 64
    #: Fraction of the final chip area spent on global wiring.
    wire_fraction: float = 0.0076


class ChipAreaModel:
    """Analytical area model of one PIM chip."""

    def __init__(
        self,
        config: SystemConfig = None,
        parameters: AreaParameters = None,
    ) -> None:
        from repro.config import DEFAULT_CONFIG

        self.config = config if config is not None else DEFAULT_CONFIG
        self.parameters = parameters if parameters is not None else AreaParameters()

    # -------------------------------------------------------------- structure
    @property
    def pim(self) -> PimModuleConfig:
        return self.config.pim

    @property
    def crossbars_per_chip(self) -> int:
        """Crossbars on one chip (the module's crossbars split over its chips)."""
        xbar_bytes = self.pim.crossbar.bits // 8
        module_crossbars = self.pim.total_capacity_bytes // xbar_bytes
        return module_crossbars // self.pim.chips

    @property
    def controllers_per_chip(self) -> int:
        """Every huge page has a controller on every chip."""
        return self.pim.pages_total

    # ------------------------------------------------------------------ areas
    def component_areas_mm2(self) -> dict[str, float]:
        """Component areas in mm^2 (before normalising into percentages)."""
        p = self.parameters
        xbar = self.pim.crossbar
        include_agg = self.pim.aggregation_circuit.enabled
        crossbars = self.crossbars_per_chip

        areas_um2 = {
            "Crossbars": crossbars * xbar.bits * p.cell_area_um2,
            "Crossbar peripherals": crossbars * p.crossbar_peripheral_um2,
            "Aggregation circuits": (
                crossbars * p.aggregation_circuit_um2 if include_agg else 0.0
            ),
            "Bank peripherals": p.banks_per_chip * p.bank_peripheral_um2,
            "PIM controllers": self.controllers_per_chip * p.pim_controller_um2,
        }
        subtotal = sum(areas_um2.values())
        areas_um2["Wires"] = subtotal * p.wire_fraction / (1.0 - p.wire_fraction)
        return {name: area / 1e6 for name, area in areas_um2.items()}

    @property
    def chip_area_mm2(self) -> float:
        """Total area of one PIM chip."""
        return sum(self.component_areas_mm2().values())

    def breakdown(self) -> dict[str, float]:
        """Fractional area breakdown of the chip (sums to 1.0)."""
        areas = self.component_areas_mm2()
        total = sum(areas.values())
        return {name: area / total for name, area in areas.items()}

    def aggregation_circuit_overhead(self) -> float:
        """Chip area increase caused by adding the aggregation circuits."""
        with_agg = self.chip_area_mm2
        without = ChipAreaModel(
            self.config.without_aggregation_circuit(), self.parameters
        ).chip_area_mm2
        return (with_agg - without) / without
