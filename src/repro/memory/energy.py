"""Energy reporting helpers.

All dynamic energy is accumulated per component by
:class:`~repro.pim.stats.PimStats` while a query executes; this module turns
those counters into the per-query totals and breakdowns behind Fig. 7 and
into average-power summaries.
"""

from __future__ import annotations


from repro.pim.stats import PimStats

#: Order in which components are reported (matching the accounting labels).
COMPONENT_ORDER = (
    "logic",
    "read",
    "write",
    "agg_circuit",
    "controller",
)


def energy_breakdown(stats: PimStats) -> dict[str, float]:
    """Per-component PIM energy (joules) of one execution."""
    breakdown = {component: 0.0 for component in COMPONENT_ORDER}
    for component, joules in stats.energy_by_component.items():
        breakdown[component] = breakdown.get(component, 0.0) + joules
    breakdown["total"] = stats.total_energy_j
    return breakdown


def average_power_w(stats: PimStats) -> float:
    """Average PIM module power over the whole execution."""
    time_s = stats.total_time_s
    if time_s <= 0:
        return 0.0
    return stats.total_energy_j / time_s


def energy_per_record_j(stats: PimStats, records: int) -> float:
    """Energy divided by the number of processed records."""
    if records <= 0:
        raise ValueError("records must be positive")
    return stats.total_energy_j / records
