"""Cell endurance and system lifetime.

Emerging nonvolatile memories wear out: RRAM cells sustain on the order of
10^12 writes [22 in the paper].  Fig. 9 reports, for every SSB query, the
endurance a cell would need if that query ran back-to-back for ten years,
assuming wear-levelling spreads the writes of a crossbar row uniformly over
the row's cells (Section V-B).  The helpers here convert the worst per-row
write count observed during one query execution into that figure, and into
the complementary "lifetime in years at a given endurance" metric used for
the 3.21x lifetime-improvement headline.
"""

from __future__ import annotations

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0

#: Reported RRAM endurance (writes per cell) used for the lifetime headline.
RRAM_ENDURANCE_WRITES = 1e12


def writes_per_cell(max_writes_per_row: float, row_columns: int) -> float:
    """Per-cell writes of one query execution, assuming row wear-levelling."""
    if row_columns <= 0:
        raise ValueError("row_columns must be positive")
    return float(max_writes_per_row) / float(row_columns)


def required_endurance(
    max_writes_per_row: float,
    row_columns: int,
    query_time_s: float,
    years: float = 10.0,
    duty_cycle: float = 1.0,
) -> float:
    """Cell endurance needed to run a query back-to-back for ``years``.

    This is the quantity plotted in Fig. 9.  ``duty_cycle`` scales the
    fraction of wall-clock time spent executing the query (the paper uses
    100%).
    """
    if query_time_s <= 0:
        raise ValueError("query_time_s must be positive")
    executions = years * SECONDS_PER_YEAR * duty_cycle / query_time_s
    return writes_per_cell(max_writes_per_row, row_columns) * executions


def lifetime_years(
    max_writes_per_row: float,
    row_columns: int,
    query_time_s: float,
    endurance_writes: float = RRAM_ENDURANCE_WRITES,
    duty_cycle: float = 1.0,
) -> float:
    """Years of back-to-back execution a cell of the given endurance survives."""
    per_query = writes_per_cell(max_writes_per_row, row_columns)
    if per_query <= 0:
        return float("inf")
    executions = endurance_writes / per_query
    return executions * query_time_s / (SECONDS_PER_YEAR * duty_cycle)
