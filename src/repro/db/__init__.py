"""Relational database substrate.

This package provides everything a relational OLAP workload needs below the
query-processing contribution of the paper:

* typed schemas with dictionary encoding (:mod:`repro.db.schema`),
* in-memory relations backed by NumPy columns (:mod:`repro.db.relation`),
* the bit-level row layout mapping a record onto a crossbar row
  (:mod:`repro.db.encoding`),
* storage of relations in the PIM module, including the one-crossbar and
  two-crossbar (vertically partitioned) layouts (:mod:`repro.db.storage`),
* the query intermediate representation (:mod:`repro.db.query`),
* the predicate-to-NOR-program compiler (:mod:`repro.db.compiler`),
* UPDATE statements executed in memory with Algorithm 1
  (:mod:`repro.db.update`),
* the rest of the data lifecycle — in-place INSERT/DELETE with slot reuse
  and compaction (:mod:`repro.db.dml`),
* a small catalog tying relations and their dictionaries together
  (:mod:`repro.db.catalog`).
"""

from repro.db.schema import Attribute, Dictionary, Schema
from repro.db.relation import Relation
from repro.db.encoding import RowLayout
from repro.db.storage import RelationFullError, StoredRelation
from repro.db.query import (
    Aggregate,
    And,
    Comparison,
    Or,
    Query,
)
from repro.db.catalog import Database

__all__ = [
    "Attribute",
    "Dictionary",
    "Schema",
    "Relation",
    "RelationFullError",
    "RowLayout",
    "StoredRelation",
    "Aggregate",
    "And",
    "Comparison",
    "Or",
    "Query",
    "Database",
]
