"""Storing relations in the PIM module.

A :class:`StoredRelation` places every record of a relation in one crossbar
row (the layout of previous bulk-bitwise PIM works and of this paper), or —
when the record does not fit in a single row — across two aligned crossbars
(*vertical partitioning*, Section III).  Records fill crossbars in order, so
record ``i`` lives in crossbar ``i // rows`` at row ``i % rows``; crossbars
are grouped 32 to a 2 MB huge page.

The class offers functional access to the stored bits (used by the host read
path, the aggregation circuit and the tests) while all timing/energy
accounting is performed by the executor and read-path models that operate on
it.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

import numpy as np

from repro.db.encoding import RowLayout
from repro.db.relation import Relation
from repro.db.schema import Schema
from repro.pim.module import PimAllocation, PimModule


class RelationFullError(RuntimeError):
    """An INSERT found no free slot (no tombstone and no spare capacity)."""


class StoredRelation:
    """A relation resident in bulk-bitwise PIM memory.

    Slot semantics (the DML subsystem, :mod:`repro.db.dml`):

    * ``num_records`` is the number of *slots in use* — the high-water mark of
      rows ever written.  It grows when an INSERT lands in the allocation's
      spare capacity tail and shrinks when compaction rewrites the live rows
      densely.
    * The layout's valid bit distinguishes **live** rows from **tombstones**
      (rows cleared by DELETE, awaiting reuse or compaction).  Every query
      path already ANDs with the valid column, so tombstones never contribute
      to any result.
    * ``self.relation`` stays *slot-aligned*: ground-truth row ``i`` describes
      slot ``i``, including tombstoned slots (whose values are stale but
      masked).  The live contents are :meth:`live_relation`.
    """

    def __init__(
        self,
        relation: Relation,
        module: PimModule,
        label: str | None = None,
        partitions: Sequence[Sequence[str]] | None = None,
        aggregation_width: int | None = None,
        reserve_bulk_aggregation: bool = True,
        layouts: Sequence[RowLayout] | None = None,
    ) -> None:
        self.relation = relation
        self.module = module
        self.label = label or relation.schema.name
        self.num_records = len(relation)
        if self.num_records == 0:
            raise ValueError("cannot store an empty relation")

        if partitions is None:
            partitions = [relation.schema.names]
        self.partition_attributes: list[list[str]] = [list(p) for p in partitions]
        self._validate_partitions()

        xbar = module.config.crossbar
        if layouts is not None and len(layouts) != len(self.partition_attributes):
            raise ValueError(
                f"got {len(layouts)} layouts for "
                f"{len(self.partition_attributes)} vertical partitions"
            )
        self.layouts: list[RowLayout] = []
        self.allocations: list[PimAllocation] = []
        for index, attrs in enumerate(self.partition_attributes):
            if layouts is not None:
                # Horizontal shards of one relation share layout objects so a
                # program compiled against the layout (the program cache keys
                # on layout identity) is reusable verbatim on every shard.
                layout = layouts[index]
                if list(layout.schema.names) != list(attrs):
                    raise ValueError(
                        f"layout {index} covers {list(layout.schema.names)}, "
                        f"partition needs {list(attrs)}"
                    )
            else:
                schema = relation.schema.subset(attrs, f"{self.label}/p{index}")
                layout = RowLayout(
                    schema,
                    columns=xbar.columns,
                    rows=xbar.rows,
                    aggregation_width=self._partition_aggregation_width(
                        schema, aggregation_width
                    ),
                    reserve_bulk_aggregation=reserve_bulk_aggregation,
                    read_width_bits=xbar.read_width_bits,
                )
            allocation = module.allocate_for_records(
                self.num_records, f"{self.label}/p{index}"
            )
            self.layouts.append(layout)
            self.allocations.append(allocation)
        self._attribute_partition: dict[str, int] = {}
        for index, attrs in enumerate(self.partition_attributes):
            for name in attrs:
                self._attribute_partition[name] = index
        # DML bookkeeping: tombstoned slots available for reuse (a min-heap,
        # so reuse fills the lowest slots first) and the live-row counter.
        self._free_slots: list[int] = []
        self.live_count = self.num_records
        self._load()
        # Per-crossbar "this bookkeeping column may hold ones" flags, one lazy
        # map per vertical partition keyed by column index (filter and group
        # columns in practice).  Pruned execution clears a column only on
        # crossbars that are both skipped and dirty, so a run over a clean
        # relation pays no clear broadcast at all.
        self._column_dirty: list[dict[int, np.ndarray]] = [
            {} for _ in self.allocations
        ]
        # Imported lazily: the planner package reaches back into the host
        # read-path model, which imports this module.
        from repro.planner.planner import RelationStatistics

        #: Zone maps + selectivity histograms, maintained under DML.
        self.statistics = RelationStatistics.from_stored(self)

    # ---------------------------------------------------------------- set-up
    def _validate_partitions(self) -> None:
        seen: dict[str, int] = {}
        for index, attrs in enumerate(self.partition_attributes):
            for name in attrs:
                self.relation.schema.attribute(name)  # raises if unknown
                if name in seen:
                    raise ValueError(f"attribute {name!r} assigned to two partitions")
                seen[name] = index
        missing = set(self.relation.schema.names) - set(seen)
        if missing:
            raise ValueError(f"attributes not assigned to any partition: {sorted(missing)}")

    @staticmethod
    def _partition_aggregation_width(
        schema: Schema, aggregation_width: int | None
    ) -> int:
        if aggregation_width is None:
            return max(a.width for a in schema)
        return min(aggregation_width, max(a.width for a in schema))

    def _load(self) -> None:
        for layout, allocation, attrs in zip(
            self.layouts, self.allocations, self.partition_attributes
        ):
            bank = allocation.bank
            capacity = allocation.record_capacity
            for name in attrs:
                offset, width = layout.fields[name]
                values = self.relation.column(name)
                padded = np.zeros(capacity, dtype=np.uint64)
                padded[: self.num_records] = values
                bank.write_field_column(
                    offset, width,
                    padded.reshape(bank.count, bank.rows),
                    count_wear=False,
                )
            valid = np.zeros(capacity, dtype=bool)
            valid[: self.num_records] = True
            bank.write_bool_column(
                layout.valid_column,
                valid.reshape(bank.count, bank.rows),
                count_wear=False,
            )
            bank.reset_wear()

    # ------------------------------------------------------------- geometry
    @property
    def pages(self) -> int:
        """Huge pages per vertical partition (M in the paper's notation)."""
        return self.allocations[0].pages

    @property
    def partitions(self) -> int:
        """Number of vertical partitions (1 for one-xb, 2 for two-xb)."""
        return len(self.partition_attributes)

    @property
    def records_per_page(self) -> int:
        return self.module.config.records_per_page

    @property
    def rows_per_crossbar(self) -> int:
        return self.allocations[0].rows_per_crossbar

    @property
    def crossbars_per_partition(self) -> int:
        return self.allocations[0].crossbars

    @property
    def record_capacity(self) -> int:
        """Slots the allocations can hold (every partition has the same)."""
        return min(a.record_capacity for a in self.allocations)

    # ------------------------------------------------------- slot accounting
    @property
    def tombstone_count(self) -> int:
        """Slots in use whose valid bit was cleared by a DELETE."""
        return self.num_records - self.live_count

    @property
    def free_slots(self) -> int:
        """Slots an INSERT can claim: tombstones plus the spare capacity tail."""
        return self.record_capacity - self.live_count

    @property
    def fragmentation(self) -> float:
        """Tombstoned fraction of the slots in use (compaction trigger)."""
        if self.num_records == 0:
            return 0.0
        return self.tombstone_count / self.num_records

    def acquire_slot(self) -> tuple[int, bool]:
        """Pick the slot for one INSERT: ``(slot, reused)``.

        Tombstones are reused lowest-first; otherwise the slot after the
        high-water mark is returned (the caller grows ``num_records`` and the
        ground-truth relation together).  Raises :class:`RelationFullError`
        when the allocation is full of live rows.
        """
        if self._free_slots:
            return heapq.heappop(self._free_slots), True
        if self.num_records < self.record_capacity:
            return self.num_records, False
        raise RelationFullError(
            f"{self.label!r} is full: {self.live_count} live records in "
            f"{self.record_capacity} slots"
        )

    def register_tombstones(self, slots: np.ndarray) -> None:
        """Record slots whose valid bit a DELETE just cleared."""
        slots = np.asarray(slots, dtype=np.int64)
        for slot in slots:
            heapq.heappush(self._free_slots, int(slot))
        self.live_count -= len(slots)
        # Count-decrement the zone maps: a tombstoned value may keep a
        # crossbar a candidate (bounds stay wide), never hide a live match.
        # Candidate-cache epochs are deliberately NOT bumped here — the
        # cached per-fragment masks are bounds-only and remain exact.
        self.statistics.note_delete(slots, self.relation)

    def note_insert(self, slot: int, record) -> None:
        """Widen the statistics with one freshly inserted (encoded) record.

        Also bumps the candidate-cache epoch of the one crossbar the record
        landed in, so cached pruning verdicts re-validate just that crossbar.
        """
        self.statistics.note_insert(slot, record)

    def note_update(self, attribute: str, encoded: int, mask: np.ndarray) -> None:
        """Widen the statistics with an UPDATE's assignment.

        ``mask`` selects the updated slots; the zone maps of the crossbars
        they live in are widened with the assigned constant, the histogram
        moves the old values to the new bucket, and the candidate-cache
        epochs of exactly those crossbars are bumped.
        """
        slots = np.nonzero(np.asarray(mask, dtype=bool))[0]
        if slots.size == 0:
            return
        crossbars = np.unique(slots // self.rows_per_crossbar)
        old_values = self.relation.columns[attribute][slots]
        self.statistics.note_update(attribute, encoded, crossbars, old_values)

    def reset_slots_after_compaction(self) -> None:
        """All live rows were rewritten densely into the lowest slots."""
        self._free_slots = []
        self.num_records = self.live_count
        # Compaction rewrote every row and scrubbed the bookkeeping columns:
        # rebuild the statistics exactly and mark every tracked column clean.
        self.statistics.rebuild(self.relation)
        for dirty in self._column_dirty:
            for mask in dirty.values():
                mask[:] = False

    # ------------------------------------------------------- column dirtiness
    def column_dirty_mask(self, partition: int, column: int) -> np.ndarray:
        """Crossbars on which ``column`` may hold ones (per partition).

        Untracked columns start all-clean: bookkeeping columns are zero at
        load time, and every path that can set their bits records it here.
        """
        masks = self._column_dirty[partition]
        mask = masks.get(column)
        if mask is None:
            mask = np.zeros(self.allocations[partition].crossbars, dtype=bool)
            masks[column] = mask
        return mask

    def mark_column_dirty(
        self, partition: int, column: int, candidates: np.ndarray | None = None
    ) -> None:
        """Record which crossbars a program just wrote ``column`` on.

        An unpruned broadcast (``candidates=None``) dirties every crossbar; a
        pruned run leaves exactly its candidate set dirty (skipped crossbars
        were cleared or already clean).
        """
        mask = self.column_dirty_mask(partition, column)
        if candidates is None:
            mask[:] = True
        else:
            np.copyto(mask, candidates)

    def filter_dirty_mask(self, partition: int) -> np.ndarray:
        """Crossbars whose filter column may hold ones (per partition)."""
        return self.column_dirty_mask(
            partition, self.layouts[partition].filter_column
        )

    def mark_filter_dirty(
        self, partition: int, candidates: np.ndarray | None = None
    ) -> None:
        """Record which crossbars a filter program just wrote."""
        self.mark_column_dirty(
            partition, self.layouts[partition].filter_column, candidates
        )

    def partition_of(self, attribute: str) -> int:
        """Index of the vertical partition storing an attribute."""
        try:
            return self._attribute_partition[attribute]
        except KeyError:
            raise KeyError(
                f"attribute {attribute!r} is not stored in {self.label!r}"
            ) from None

    def layout_of(self, attribute: str) -> RowLayout:
        return self.layouts[self.partition_of(attribute)]

    def allocation_of(self, attribute: str) -> PimAllocation:
        return self.allocations[self.partition_of(attribute)]

    # ------------------------------------------------------------ functional
    def decode_column(self, attribute: str) -> np.ndarray:
        """Decode an attribute of every slot in use from the crossbar bits.

        The result is *slot-aligned* with the ground-truth relation: one
        value per slot up to the valid-mask high-water mark ``num_records``
        (tombstoned slots included), not a fixed load-time prefix — indices
        from a filter bit-vector index it directly.
        """
        partition = self.partition_of(attribute)
        layout = self.layouts[partition]
        bank = self.allocations[partition].bank
        offset, width = layout.fields[attribute]
        flat = bank.read_field_all(offset, width).reshape(-1)
        return flat[: self.num_records]

    def column_bit(self, partition: int, column: int) -> np.ndarray:
        """Read one bookkeeping bit column of every slot in use (slot-aligned)."""
        bank = self.allocations[partition].bank
        flat = bank.read_column(column).reshape(-1)
        return flat[: self.num_records]

    def filter_mask(self, partition: int = 0) -> np.ndarray:
        """The filter bit of every record in a partition."""
        return self.column_bit(partition, self.layouts[partition].filter_column)

    def valid_mask(self, partition: int = 0) -> np.ndarray:
        """The valid bit of every slot in use (true for live records)."""
        return self.column_bit(partition, self.layouts[partition].valid_column)

    def live_relation(self) -> Relation:
        """The live ground truth: slot-aligned relation minus the tombstones."""
        return self.relation.select(self.valid_mask(0))

    def write_bit_column(
        self, partition: int, column: int, values: np.ndarray, count_wear: bool = True
    ) -> None:
        """Overwrite a bookkeeping bit column (functional host-write helper).

        ``values`` must hold exactly one bit per slot in use
        (``num_records``); a wrong-length array is a caller bug and fails
        loudly instead of being silently truncated or zero-padded.  Slots
        beyond the high-water mark are always cleared.

        The caller is responsible for charging the corresponding write
        traffic; the executor's two-xb filter-transfer path does so.  With
        ``count_wear=False`` the wear counters are left untouched — used by
        the vectorized execution stages, which charge the gate-level
        program's wear analytically instead.
        """
        values = np.asarray(values, dtype=bool)
        if values.shape != (self.num_records,):
            raise ValueError(
                f"bit column needs one value per slot in use "
                f"({self.num_records}), got shape {values.shape}"
            )
        bank = self.allocations[partition].bank
        capacity = self.allocations[partition].record_capacity
        padded = np.zeros(capacity, dtype=bool)
        padded[: self.num_records] = values
        shaped = padded.reshape(bank.count, bank.rows)
        bank.write_bool_column(column, shaped, count_wear=count_wear)
        # The whole column was just overwritten, so its dirtiness is known
        # exactly: the crossbars that received at least one set bit.
        self.mark_column_dirty(partition, column, shaped.any(axis=1))

    # ------------------------------------------------------------------ wear
    def wear_snapshot(self) -> list[np.ndarray]:
        """Per-partition snapshots of the wear counters."""
        return [allocation.bank.wear_snapshot() for allocation in self.allocations]

    def max_writes_since(self, snapshots: list[np.ndarray]) -> int:
        """Worst per-row write count since the snapshots were taken."""
        return max(
            allocation.bank.max_writes_since(snapshot)
            for allocation, snapshot in zip(self.allocations, snapshots)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StoredRelation({self.label!r}, records={self.num_records}, "
            f"partitions={self.partitions}, pages={self.pages})"
        )
