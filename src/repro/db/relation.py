"""In-memory relations backed by NumPy columns.

A :class:`Relation` is the functional ("ground truth") representation of a
table: a schema plus one unsigned integer array per attribute.  It is the
source from which data is loaded into the PIM module, the input of the
columnar baseline engine, and the reference the integration tests compare
query answers against.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.db.schema import Attribute, Schema


class Relation:
    """A table: a schema and one NumPy column per attribute."""

    def __init__(self, schema: Schema, columns: Mapping[str, np.ndarray]):
        self.schema = schema
        self.columns: Dict[str, np.ndarray] = {}
        lengths = set()
        for attribute in schema:
            if attribute.name not in columns:
                raise ValueError(f"missing column {attribute.name!r}")
            column = np.asarray(columns[attribute.name], dtype=np.uint64)
            if attribute.width < 64 and column.size and column.max(initial=0) > attribute.max_value:
                raise ValueError(
                    f"column {attribute.name!r} has values exceeding "
                    f"{attribute.width} bits"
                )
            self.columns[attribute.name] = column
            lengths.add(len(column))
        if len(lengths) > 1:
            raise ValueError(f"columns have inconsistent lengths: {sorted(lengths)}")
        self.num_records = lengths.pop() if lengths else 0

    # ------------------------------------------------------------ accessors
    def __len__(self) -> int:
        return self.num_records

    def column(self, name: str) -> np.ndarray:
        """Return the stored (encoded) column ``name``."""
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(
                f"relation {self.schema.name!r} has no column {name!r}"
            ) from None

    def decoded_column(self, name: str) -> List[object]:
        """Return a column translated back to raw values."""
        attribute = self.schema.attribute(name)
        column = self.column(name)
        return [attribute.decode_value(v) for v in column]

    # ----------------------------------------------------------- operations
    def select(self, mask: np.ndarray) -> "Relation":
        """Return a new relation containing only the rows where ``mask``."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.num_records,):
            raise ValueError("mask length does not match the relation")
        return Relation(
            self.schema, {name: col[mask] for name, col in self.columns.items()}
        )

    def project(self, names: Sequence[str], schema_name: Optional[str] = None) -> "Relation":
        """Return a new relation with only the named columns."""
        schema = self.schema.subset(names, schema_name)
        return Relation(schema, {name: self.columns[name] for name in names})

    def with_column(self, attribute: Attribute, values: np.ndarray) -> "Relation":
        """Return a new relation with an extra column appended."""
        schema = self.schema.extend([attribute])
        columns = dict(self.columns)
        columns[attribute.name] = np.asarray(values, dtype=np.uint64)
        return Relation(schema, columns)

    def head(self, count: int) -> "Relation":
        """Return the first ``count`` records."""
        return Relation(
            self.schema, {name: col[:count] for name, col in self.columns.items()}
        )

    def records(self, indices: Optional[Iterable[int]] = None) -> List[Dict[str, int]]:
        """Return records as dictionaries of encoded values (for small data)."""
        if indices is None:
            indices = range(self.num_records)
        return [
            {name: int(self.columns[name][i]) for name in self.schema.names}
            for i in indices
        ]

    @property
    def nbytes(self) -> int:
        """Approximate in-memory size of the columns."""
        return sum(col.nbytes for col in self.columns.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Relation({self.schema.name!r}, records={self.num_records}, "
            f"attributes={len(self.schema)})"
        )


def concatenate(relations: Sequence[Relation]) -> Relation:
    """Concatenate relations sharing the same schema."""
    if not relations:
        raise ValueError("need at least one relation")
    schema = relations[0].schema
    for rel in relations[1:]:
        if rel.schema.names != schema.names:
            raise ValueError("relations have different schemas")
    columns = {
        name: np.concatenate([rel.columns[name] for rel in relations])
        for name in schema.names
    }
    return Relation(schema, columns)
