"""In-memory relations backed by NumPy columns.

A :class:`Relation` is the functional ("ground truth") representation of a
table: a schema plus one unsigned integer array per attribute.  It is the
source from which data is loaded into the PIM module, the input of the
columnar baseline engine, and the reference the integration tests compare
query answers against.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.db.schema import Attribute, Schema


class Relation:
    """A table: a schema and one NumPy column per attribute."""

    def __init__(self, schema: Schema, columns: Mapping[str, np.ndarray]):
        self.schema = schema
        self.columns: dict[str, np.ndarray] = {}
        lengths = set()
        for attribute in schema:
            if attribute.name not in columns:
                raise ValueError(f"missing column {attribute.name!r}")
            column = np.asarray(columns[attribute.name], dtype=np.uint64)
            if attribute.width < 64 and column.size and column.max(initial=0) > attribute.max_value:
                raise ValueError(
                    f"column {attribute.name!r} has values exceeding "
                    f"{attribute.width} bits"
                )
            self.columns[attribute.name] = column
            lengths.add(len(column))
        if len(lengths) > 1:
            raise ValueError(f"columns have inconsistent lengths: {sorted(lengths)}")
        self.num_records = lengths.pop() if lengths else 0

    # ------------------------------------------------------------ accessors
    def __len__(self) -> int:
        return self.num_records

    def column(self, name: str) -> np.ndarray:
        """Return the stored (encoded) column ``name``."""
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(
                f"relation {self.schema.name!r} has no column {name!r}"
            ) from None

    def decoded_column(self, name: str) -> list[object]:
        """Return a column translated back to raw values."""
        attribute = self.schema.attribute(name)
        column = self.column(name)
        return [attribute.decode_value(v) for v in column]

    # ------------------------------------------------------------- mutation
    def encode_record(self, values: Mapping[str, object]) -> dict[str, np.uint64]:
        """Validate and encode one record given as ``{attribute: value}``.

        Values may be raw (e.g. a dictionary-encoded string) or already
        encoded integers; either way the encoded code must fit the
        attribute's bit width.  Unknown or missing attributes fail loudly.
        """
        unknown = set(values) - set(self.schema.names)
        if unknown:
            raise ValueError(
                f"record has attributes {sorted(unknown)} not in schema "
                f"{self.schema.name!r}"
            )
        encoded: dict[str, np.uint64] = {}
        for attribute in self.schema:
            if attribute.name not in values:
                raise ValueError(f"record is missing attribute {attribute.name!r}")
            raw = values[attribute.name]
            code = raw if isinstance(raw, (int, np.integer)) else attribute.encode_value(raw)
            code = int(code)
            if code < 0 or (attribute.width < 64 and code > attribute.max_value):
                raise ValueError(
                    f"value {raw!r} for attribute {attribute.name!r} does not "
                    f"fit in {attribute.width} bits"
                )
            encoded[attribute.name] = np.uint64(code)
        return encoded

    def set_row(
        self, index: int, values: Mapping[str, object], encoded: bool = False
    ) -> None:
        """Overwrite one record in place (slot reuse of the DML path).

        ``encoded=True`` trusts ``values`` to be an :meth:`encode_record`
        result and skips re-validation.
        """
        if not 0 <= index < self.num_records:
            raise IndexError(f"row {index} out of range 0..{self.num_records - 1}")
        record = values if encoded else self.encode_record(values)
        for name in self.schema.names:
            self.columns[name][index] = record[name]

    def append_rows(
        self, rows: Sequence[Mapping[str, object]], encoded: bool = False
    ) -> list[int]:
        """Append records, growing every column once; returns the new indices.

        Growth reallocates the column arrays, so any NumPy views previously
        taken of them (e.g. a parent relation's columns) stop aliasing this
        relation — callers that rely on view-sharing must only grow through
        their own coordination layer.
        """
        if not rows:
            return []
        records = list(rows) if encoded else [self.encode_record(r) for r in rows]
        for name in self.schema.names:
            tail = np.array([r[name] for r in records], dtype=np.uint64)
            self.columns[name] = np.concatenate([self.columns[name], tail])
        first = self.num_records
        self.num_records += len(records)
        return list(range(first, self.num_records))

    def append_row(self, values: Mapping[str, object], encoded: bool = False) -> int:
        """Append one record (see :meth:`append_rows`); returns the new index."""
        return self.append_rows([values], encoded=encoded)[0]

    # ----------------------------------------------------------- operations
    def select(self, mask: np.ndarray) -> Relation:
        """Return a new relation containing only the rows where ``mask``."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.num_records,):
            raise ValueError("mask length does not match the relation")
        return Relation(
            self.schema, {name: col[mask] for name, col in self.columns.items()}
        )

    def project(self, names: Sequence[str], schema_name: str | None = None) -> Relation:
        """Return a new relation with only the named columns."""
        schema = self.schema.subset(names, schema_name)
        return Relation(schema, {name: self.columns[name] for name in names})

    def with_column(self, attribute: Attribute, values: np.ndarray) -> Relation:
        """Return a new relation with an extra column appended."""
        schema = self.schema.extend([attribute])
        columns = dict(self.columns)
        columns[attribute.name] = np.asarray(values, dtype=np.uint64)
        return Relation(schema, columns)

    def head(self, count: int) -> Relation:
        """Return the first ``count`` records."""
        return Relation(
            self.schema, {name: col[:count] for name, col in self.columns.items()}
        )

    def records(self, indices: Iterable[int] | None = None) -> list[dict[str, int]]:
        """Return records as dictionaries of encoded values (for small data)."""
        if indices is None:
            indices = range(self.num_records)
        return [
            {name: int(self.columns[name][i]) for name in self.schema.names}
            for i in indices
        ]

    @property
    def nbytes(self) -> int:
        """Approximate in-memory size of the columns."""
        return sum(col.nbytes for col in self.columns.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Relation({self.schema.name!r}, records={self.num_records}, "
            f"attributes={len(self.schema)})"
        )


def concatenate(relations: Sequence[Relation]) -> Relation:
    """Concatenate relations sharing the same schema."""
    if not relations:
        raise ValueError("need at least one relation")
    schema = relations[0].schema
    for rel in relations[1:]:
        if rel.schema.names != schema.names:
            raise ValueError("relations have different schemas")
    columns = {
        name: np.concatenate([rel.columns[name] for rel in relations])
        for name in schema.names
    }
    return Relation(schema, columns)
