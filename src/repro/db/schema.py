"""Schemas, attributes and dictionary encoding.

Bulk-bitwise PIM operates on fixed-width unsigned bit fields, so every
attribute is stored as an unsigned integer of a declared width.  Categorical
attributes (cities, regions, ship modes, ...) are dictionary-encoded: a
:class:`Dictionary` maps the raw values to dense codes and back, and
predicates written against raw values are translated to codes by the query
compiler.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np


class Dictionary:
    """A bidirectional mapping between raw values and dense integer codes."""

    def __init__(self, values: Iterable = ()):
        self._value_to_code: dict[object, int] = {}
        self._code_to_value: list[object] = []
        for value in values:
            self.encode(value)

    def encode(self, value) -> int:
        """Return the code of ``value``, adding it if unseen."""
        code = self._value_to_code.get(value)
        if code is None:
            code = len(self._code_to_value)
            self._value_to_code[value] = code
            self._code_to_value.append(value)
        return code

    def encode_existing(self, value) -> int:
        """Return the code of ``value``; raise KeyError for unseen values."""
        return self._value_to_code[value]

    def decode(self, code: int):
        """Return the raw value of ``code``."""
        return self._code_to_value[code]

    def encode_array(self, values: Sequence) -> np.ndarray:
        """Encode a sequence of raw values into a uint64 array."""
        return np.array([self.encode(v) for v in values], dtype=np.uint64)

    def decode_array(self, codes: np.ndarray) -> list[object]:
        """Decode an array of codes back to raw values."""
        return [self._code_to_value[int(c)] for c in codes]

    def __len__(self) -> int:
        return len(self._code_to_value)

    def __contains__(self, value) -> bool:
        return value in self._value_to_code

    @property
    def values(self) -> list[object]:
        return list(self._code_to_value)

    @property
    def code_width(self) -> int:
        """Bits needed to store any code of this dictionary."""
        return max(1, int(math.ceil(math.log2(max(len(self), 2)))))


@dataclass
class Attribute:
    """One attribute (column) of a relation.

    Attributes:
        name: Attribute name, unique within the schema.
        width: Number of bits the attribute occupies in a crossbar row.
        kind: ``"int"`` for plain unsigned integers, ``"dict"`` for
            dictionary-encoded categorical values.
        dictionary: The dictionary of a ``"dict"`` attribute.
        source: Name of the relation the attribute originated from; the
            pre-join keeps this so the star (non-pre-joined) execution plan
            can be derived mechanically.
    """

    name: str
    width: int
    kind: str = "int"
    dictionary: Dictionary | None = None
    source: str | None = None

    def __post_init__(self) -> None:
        if self.width <= 0 or self.width > 64:
            raise ValueError(f"attribute {self.name!r} width must be in [1, 64]")
        if self.kind not in ("int", "dict"):
            raise ValueError(f"attribute {self.name!r} has unknown kind {self.kind!r}")
        if self.kind == "dict" and self.dictionary is None:
            self.dictionary = Dictionary()

    @property
    def max_value(self) -> int:
        """Largest value representable by the attribute."""
        return (1 << self.width) - 1

    def encode_value(self, value) -> int:
        """Translate a raw predicate constant to the stored representation."""
        if self.kind == "dict":
            assert self.dictionary is not None
            return self.dictionary.encode_existing(value)
        return int(value)

    def decode_value(self, code: int):
        """Translate a stored value back to the raw representation."""
        if self.kind == "dict":
            assert self.dictionary is not None
            return self.dictionary.decode(int(code))
        return int(code)


class Schema:
    """An ordered collection of attributes."""

    def __init__(self, name: str, attributes: Sequence[Attribute]):
        self.name = name
        self.attributes: list[Attribute] = list(attributes)
        self._by_name: dict[str, Attribute] = {}
        for attribute in self.attributes:
            if attribute.name in self._by_name:
                raise ValueError(f"duplicate attribute {attribute.name!r}")
            self._by_name[attribute.name] = attribute

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self):
        return iter(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def attribute(self, name: str) -> Attribute:
        """Return the attribute called ``name``."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"schema {self.name!r} has no attribute {name!r}") from None

    @property
    def names(self) -> list[str]:
        return [a.name for a in self.attributes]

    @property
    def record_width(self) -> int:
        """Total bits of one record."""
        return sum(a.width for a in self.attributes)

    def subset(self, names: Sequence[str], schema_name: str | None = None) -> Schema:
        """Return a new schema containing only ``names`` (in that order)."""
        return Schema(schema_name or self.name, [self.attribute(n) for n in names])

    def extend(self, attributes: Sequence[Attribute], schema_name: str | None = None) -> Schema:
        """Return a new schema with extra attributes appended."""
        return Schema(schema_name or self.name, self.attributes + list(attributes))


def int_attribute(name: str, width: int, source: str | None = None) -> Attribute:
    """Convenience constructor for a plain unsigned integer attribute."""
    return Attribute(name=name, width=width, kind="int", source=source)


def dict_attribute(
    name: str,
    values: Iterable,
    width: int | None = None,
    source: str | None = None,
) -> Attribute:
    """Convenience constructor for a dictionary-encoded attribute.

    The width defaults to the number of bits needed for the supplied value
    domain (with one spare code so tests can add unseen values).
    """
    dictionary = Dictionary(values)
    if width is None:
        width = max(1, int(math.ceil(math.log2(max(len(dictionary) + 1, 2)))))
    return Attribute(name=name, width=width, kind="dict", dictionary=dictionary, source=source)


def width_for_count(count: int) -> int:
    """Bits needed to store values ``0 .. count-1``."""
    return max(1, int(math.ceil(math.log2(max(count, 2)))))
