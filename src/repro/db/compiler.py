"""Compilation of predicates into bulk-bitwise NOR programs.

The PIM engine evaluates a query's WHERE clause entirely inside the memory
arrays: the predicate is compiled into a NOR program that leaves one result
bit per record in the layout's filter column.  Constants are translated to
the stored representation (dictionary codes) at compile time, so the
generated program contains no data-dependent control flow — it is broadcast
unchanged to every page of the relation.

For vertically partitioned relations (two-xb), the top-level conjunction is
split into per-partition conjunctions with :func:`partition_conjuncts`; the
executor combines the per-partition filter bits through the host, which is
the data movement overhead Section V-A attributes to the two-xb layout.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.db.encoding import RowLayout
from repro.db.query import (
    And,
    BETWEEN,
    Comparison,
    EQ,
    GE,
    GT,
    IN,
    LE,
    LT,
    NE,
    Or,
    Predicate,
    clamp_between,
    fold_comparison,
)
from repro.db.schema import Schema
from repro.pim.logic import Program, ProgramBuilder


class CompilationError(ValueError):
    """A predicate cannot be compiled against the given layout."""


def compile_predicate(
    predicate: Predicate,
    schema: Schema,
    layout: RowLayout,
    result_column: int | None = None,
    combine_with_valid: bool = True,
) -> Program:
    """Compile a predicate into a program leaving its result in one column.

    The result column defaults to the layout's filter column and, unless
    ``combine_with_valid`` is disabled, is ANDed with the valid bit so that
    padding rows never pass a filter.
    """
    if result_column is None:
        result_column = layout.filter_column
    builder = ProgramBuilder(layout.scratch_columns)
    if predicate is None:
        result = builder.copy(layout.valid_column)
    else:
        result = _compile_node(predicate, schema, layout, builder)
        if combine_with_valid:
            combined = builder.and_(result, layout.valid_column)
            builder.free(result)
            result = combined
    builder.store(result, result_column)
    builder.free(result)
    return builder.build(result_column=result_column)


def compile_group_predicate(
    group_values: dict[str, int],
    layout: RowLayout,
    filter_column: int | None = None,
    result_column: int | None = None,
) -> Program:
    """Compile the per-subgroup filter used by pim-gb.

    ``group_values`` maps GROUP-BY attribute names to their *encoded* values
    for one subgroup.  The generated program computes the conjunction of the
    equalities and of the query's filter bit (already present in
    ``filter_column``), leaving the result in the layout's group column.
    """
    if result_column is None:
        result_column = layout.group_column
    if filter_column is None:
        filter_column = layout.filter_column
    builder = ProgramBuilder(layout.scratch_columns)
    terms = _group_equality_terms(builder, group_values, layout)
    acc = builder.and_reduce(terms, consume=True) if terms else builder.const(True)
    combined = builder.and_(acc, filter_column)
    builder.free(acc)
    builder.store(combined, result_column)
    builder.free(combined)
    return builder.build(result_column=result_column)


def _group_equality_terms(
    builder: ProgramBuilder, group_values: dict[str, int], layout: RowLayout
) -> list[int]:
    """Emit one equality comparison per GROUP-BY attribute (sorted by name)."""
    terms: list[int] = []
    for name, value in sorted(group_values.items()):
        if not layout.has_field(name):
            raise CompilationError(f"attribute {name!r} is not in this partition")
        terms.append(builder.eq_const(layout.field_columns(name), int(value)))
    return terms


def compile_group_combine(
    group_values: dict[str, int],
    layout: RowLayout,
    include_remote: bool = False,
    result_column: int | None = None,
) -> Program:
    """Compile the primary-partition subgroup mask used by pim-gb.

    The program conjoins the equalities on the primary partition's GROUP-BY
    attributes, optionally the bit-vector shipped from the other vertical
    partition (already landed in the layout's remote column), and the query's
    filter bit, leaving the result in the layout's group column.
    """
    if result_column is None:
        result_column = layout.group_column
    builder = ProgramBuilder(layout.scratch_columns)
    terms = _group_equality_terms(builder, group_values, layout)
    if include_remote:
        terms.append(builder.copy(layout.remote_column))
    local = builder.and_reduce(terms, consume=True) if terms else builder.const(True)
    combined = builder.and_(local, layout.filter_column)
    builder.free(local)
    builder.store(combined, result_column)
    builder.free(combined)
    return builder.build(result_column=result_column)


def _compile_node(
    node: Predicate, schema: Schema, layout: RowLayout, builder: ProgramBuilder
) -> int:
    if isinstance(node, Comparison):
        return _compile_comparison(node, schema, layout, builder)
    if isinstance(node, And):
        children = [_compile_node(c, schema, layout, builder) for c in node.children]
        return builder.and_reduce(children, consume=True)
    if isinstance(node, Or):
        children = [_compile_node(c, schema, layout, builder) for c in node.children]
        return builder.or_reduce(children, consume=True)
    raise CompilationError(f"unknown predicate node {node!r}")


def _encode(schema: Schema, attribute: str, value) -> int | None:
    """Translate a constant to the stored code; ``None`` = not in dictionary.

    Integer constants outside the attribute's encoded domain are *not*
    folded to ``None`` here: ``field < 1024`` on a 4-bit field is true for
    every record, so the comparison compilers fold out-of-domain constants
    against the domain boundary instead (matching
    :func:`repro.db.query.evaluate_predicate` exactly).
    """
    attr = schema.attribute(attribute)
    try:
        return int(attr.encode_value(value))
    except KeyError:
        return None


def _compile_comparison(
    node: Comparison, schema: Schema, layout: RowLayout, builder: ProgramBuilder
) -> int:
    if not layout.has_field(node.attribute):
        raise CompilationError(
            f"attribute {node.attribute!r} is not stored in this partition"
        )
    columns = layout.field_columns(node.attribute)
    max_value = schema.attribute(node.attribute).max_value
    op = node.op
    if op == IN:
        encoded_values = [
            encoded
            for encoded in (
                _encode(schema, node.attribute, value) for value in node.values
            )
            # Out-of-domain constants can never equal a stored value.
            if encoded is not None and 0 <= encoded <= max_value
        ]
        if not encoded_values:
            return builder.const(False)
        return builder.isin_const(columns, encoded_values)
    if op == BETWEEN:
        bounds = clamp_between(
            _encode(schema, node.attribute, node.low),
            _encode(schema, node.attribute, node.high),
            max_value,
        )
        if bounds is None:
            return builder.const(False)
        return builder.between_const(columns, *bounds)
    if op not in (EQ, NE, LT, LE, GT, GE):
        raise CompilationError(f"unknown operator {op!r}")
    encoded = _encode(schema, node.attribute, node.value)
    folded = fold_comparison(op, encoded, max_value)
    if folded is not None:
        return builder.const(folded)
    if op == EQ:
        return builder.eq_const(columns, encoded)
    if op == NE:
        return builder.ne_const(columns, encoded)
    if op == LT:
        return builder.lt_const(columns, encoded)
    if op == LE:
        return builder.le_const(columns, encoded)
    if op == GT:
        return builder.gt_const(columns, encoded)
    return builder.ge_const(columns, encoded)


def partition_conjuncts(
    predicate: Predicate, partition_attributes: Sequence[Sequence[str]]
) -> list[Predicate | None]:
    """Split a top-level conjunction across vertical partitions.

    Returns one predicate (or ``None``) per partition.  A conjunct whose
    attributes are not contained in a single partition cannot be evaluated
    without moving data and raises :class:`CompilationError`; the SSB
    predicates are all per-attribute conjuncts, so this never happens there.
    """
    from repro.db.query import attributes_referenced, conj

    partition_sets = [set(attrs) for attrs in partition_attributes]
    buckets: list[list[Predicate]] = [[] for _ in partition_sets]
    if predicate is None:
        return [None for _ in partition_sets]
    conjuncts = list(predicate.children) if isinstance(predicate, And) else [predicate]
    for conjunct in conjuncts:
        referenced = attributes_referenced(conjunct)
        placed = False
        for index, attrs in enumerate(partition_sets):
            if referenced <= attrs:
                buckets[index].append(conjunct)
                placed = True
                break
        if not placed:
            raise CompilationError(
                f"conjunct referencing {sorted(referenced)} spans multiple "
                f"vertical partitions"
            )
    return [conj(*bucket) if bucket else None for bucket in buckets]
