"""A small catalog tying star-schema relations together.

The catalog records which relation is the fact relation and how its foreign
keys reference the dimension relations.  Both the pre-join builder
(:mod:`repro.core.prejoin`) and the columnar baseline's join planner
(:mod:`repro.columnar.engine`) work from this metadata, so the two execution
paths of every SSB query are derived from a single description.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.relation import Relation


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key edge from the fact relation to a dimension relation."""

    fact_attribute: str
    dimension: str
    dimension_key: str


class Database:
    """A named collection of relations with optional star-schema metadata."""

    def __init__(
        self,
        relations: dict[str, Relation] | None = None,
        fact: str | None = None,
        foreign_keys: list[ForeignKey] | None = None,
    ) -> None:
        self.relations: dict[str, Relation] = dict(relations or {})
        self.fact = fact
        self.foreign_keys: list[ForeignKey] = list(foreign_keys or [])

    def add(self, name: str, relation: Relation) -> None:
        """Register a relation under ``name``."""
        self.relations[name] = relation

    def relation(self, name: str) -> Relation:
        """Return the relation called ``name``."""
        try:
            return self.relations[name]
        except KeyError:
            raise KeyError(f"database has no relation {name!r}") from None

    @property
    def fact_relation(self) -> Relation:
        """The star schema's fact relation."""
        if self.fact is None:
            raise ValueError("database has no fact relation configured")
        return self.relation(self.fact)

    @property
    def dimension_names(self) -> list[str]:
        """Names of the dimension relations referenced by foreign keys."""
        return [fk.dimension for fk in self.foreign_keys]

    def foreign_key_for(self, dimension: str) -> ForeignKey:
        """Return the foreign key referencing ``dimension``."""
        for fk in self.foreign_keys:
            if fk.dimension == dimension:
                return fk
        raise KeyError(f"no foreign key references dimension {dimension!r}")

    def relation_of_attribute(self, attribute: str) -> str:
        """Name of the relation that defines ``attribute``.

        Attribute names are unique across the SSB schema (they carry their
        relation prefix, e.g. ``c_city``), which makes this lookup — and the
        mechanical derivation of join plans — unambiguous.
        """
        for name, relation in self.relations.items():
            if attribute in relation.schema:
                return name
        raise KeyError(f"no relation defines attribute {attribute!r}")

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database(relations={sorted(self.relations)}, fact={self.fact!r})"
