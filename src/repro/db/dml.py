"""In-place INSERT / DELETE / compaction on a PIM-resident relation.

The paper's core argument is that bulk-bitwise PIM makes the denormalised,
pre-joined store cheap to *modify* in place.  :mod:`repro.db.update`
implements the UPDATE half (Algorithm 1); this module completes the data
lifecycle:

* **DELETE** compiles the predicate into the standard PIM filter program and
  then clears the valid bit of the selected rows with one more bulk-bitwise
  pass (``valid &= ~filter``) — no record is ever read by the host.  The
  cleared rows become *tombstones*: every query path already conjoins with
  the valid column (gate-level programs AND it in, the vectorized stages AND
  the functional mask with :meth:`~repro.db.storage.StoredRelation.valid_mask`),
  so tombstones provably drop out of every filter, group mask and aggregate.
* **INSERT** writes new records through the host store path into free slots —
  tombstones first (lowest slot first), then the allocation's spare
  ``record_capacity`` tail — and sets the valid bit.  The slot-aligned
  ground-truth :class:`~repro.db.relation.Relation` is updated in the same
  step, so the functional reference and the stored bits never diverge.
* **Compaction** rewrites the live rows densely into the lowest slots when
  the tombstoned fraction crosses a threshold, shrinking the slot high-water
  mark (and with it every per-record host cost: filter bit-vector reads,
  sampling, record reads).

Every phase charges the modelled :class:`~repro.pim.stats.PimStats`:
``delete-filter`` / ``delete-clear`` / ``delete-transfer`` (two-xb),
``insert-write``, and ``compact-read`` / ``compact-write``.

Like UPDATE, the layout-dependent programs are compiled once
(:func:`compile_delete`) and are valid for every relation sharing the layout
— in particular for every shard of a
:class:`~repro.sharding.storage.ShardedStoredRelation`, whose broadcast
lives in :mod:`repro.sharding.dml`.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

import numpy as np

from repro.config import default_dml_mode
from repro.core.stages import (
    ProgramCompiler,
    apply_program,
    apply_program_at,
    apply_program_pruned,
)
from repro.db.compiler import CompilationError
from repro.db.query import Predicate, attributes_referenced, evaluate_predicate
from repro.db.storage import RelationFullError, StoredRelation
from repro.host import dram
from repro.host.dram import CACHE_LINE_BYTES
from repro.host.readpath import HostReadModel
from repro.pim.controller import PimExecutor
from repro.pim.logic import Program, ProgramBuilder

__all__ = [
    "CompiledDelete",
    "DeleteResult",
    "InsertResult",
    "CompactionResult",
    "RelationFullError",
    "compile_delete",
    "execute_delete",
    "execute_insert",
    "execute_compaction",
]

#: Default tombstone fraction above which :func:`execute_compaction` rewrites.
DEFAULT_COMPACTION_THRESHOLD = 0.3


# --------------------------------------------------------------------- DELETE
@dataclass(frozen=True)
class CompiledDelete:
    """The layout-dependent programs of a DELETE, compiled once.

    Valid for any stored relation sharing the layouts it was compiled
    against (every shard of a sharded relation).  ``clear_programs`` maps
    each vertical partition to its ``valid &= ~mask`` program; the mask is
    the filter column in the predicate's partition and the remote (landing)
    column everywhere else.
    """

    partition: int
    filter_program: Program
    clear_programs: dict[int, Program]
    predicate: Predicate | None = None


@dataclass
class DeleteResult:
    """Outcome of an in-memory DELETE."""

    records_deleted: int
    filter_cycles: int
    clear_cycles: int
    live_records: int
    tombstones: int


#: Per-layout cache of the valid-clearing programs.  They are pure functions
#: of the layout (no predicate dependence), so every DELETE against the same
#: layout — any shard, any statement — reuses one compiled program.
_CLEAR_PROGRAMS: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()


def _clear_valid_program(layout, mask_column: int) -> Program:
    """``valid &= ~mask_column``, leaving the result in the valid column."""
    per_layout = _CLEAR_PROGRAMS.setdefault(layout, {})
    program = per_layout.get(mask_column)
    if program is None:
        builder = ProgramBuilder(layout.scratch_columns)
        remaining = builder.and_not(layout.valid_column, mask_column)
        builder.store(remaining, layout.valid_column)
        builder.free(remaining)
        program = builder.build(result_column=layout.valid_column)
        per_layout[mask_column] = program
    return program


def compile_delete(
    stored: StoredRelation,
    predicate: Predicate,
    compiler=None,
) -> CompiledDelete:
    """Compile the filter and valid-clearing programs of a DELETE.

    The predicate's attributes must live in a single vertical partition
    (like UPDATE); the resulting tombstone bit-vector is shipped to the
    other partitions through the host, exactly like a two-xb filter.
    ``compiler`` is the :class:`~repro.core.stages.ProgramCompiler` seam —
    pass the service's :class:`~repro.service.cache.ProgramCache` to reuse
    the filter program across shards and repeated statements.
    """
    if compiler is None:
        compiler = ProgramCompiler()
    partitions = {stored.partition_of(a) for a in attributes_referenced(predicate)}
    if len(partitions) > 1:
        raise CompilationError(
            "DELETE across vertical partitions is not supported; keep the "
            "predicate attributes in the same partition"
        )
    partition = partitions.pop() if partitions else 0
    layout = stored.layouts[partition]
    schema = stored.relation.schema
    filter_program = compiler.filter_program(predicate, schema, layout)

    clear_programs = {
        partition: _clear_valid_program(layout, layout.filter_column)
    }
    for index, other in enumerate(stored.layouts):
        if index != partition:
            clear_programs[index] = _clear_valid_program(other, other.remote_column)
    return CompiledDelete(
        partition=partition,
        filter_program=filter_program,
        clear_programs=clear_programs,
        predicate=predicate,
    )


def execute_delete(
    stored: StoredRelation,
    predicate: Predicate,
    executor: PimExecutor,
    compiled: CompiledDelete | None = None,
    vectorized: bool = False,
    timing_scale: float = 1.0,
    pruned: bool | None = None,
) -> DeleteResult:
    """Tombstone the records selected by ``predicate`` — in memory.

    The valid bit of the selected rows is cleared by a bulk-bitwise program
    in every vertical partition (the tombstone bit-vector crosses partitions
    through the host, charged as ``delete-transfer``).  The ground-truth
    relation keeps the tombstoned rows slot-aligned; they are masked out of
    :meth:`~repro.db.storage.StoredRelation.live_relation` and of every query
    path by the cleared valid bit.  ``vectorized`` computes the result bits
    with NumPy and charges the compiled programs' costs analytically —
    identical stored bits, wear and statistics (the same contract as the
    query stages).

    ``pruned`` (default: the ``REPRO_DML`` mode) consults the relation's
    zone maps exactly like the query engine — plan billed through the
    candidate cache, ``zonemap-check`` charged — and runs the filter and
    valid-clear programs only on the candidate crossbars.  A skipped
    crossbar provably holds no doomed row, so its valid column is already
    the AND's result (the clears run preserve-skipped); a provably-empty
    decision skips the broadcast outright.  The tombstoned rows are
    bit-exact with the broadcast mode either way.
    """
    if compiled is None:
        compiled = compile_delete(stored, predicate)
    elif compiled.predicate != predicate:
        raise ValueError("compiled delete does not match the given predicate")
    if pruned is None:
        pruned = default_dml_mode() == "pruned"
    primary = compiled.partition
    allocation = stored.allocations[primary]
    pages = allocation.pages * timing_scale
    read_model = HostReadModel(
        executor.config, executor.stats, traffic_scale=timing_scale
    )

    valid_before = stored.valid_mask(primary)
    doomed = evaluate_predicate(predicate, stored.relation) & valid_before

    candidates = None
    if pruned:
        statistics = stored.statistics
        decision = statistics.plan(
            predicate,
            stored.partition_attributes,
            executor.config.pim.crossbars_per_page,
        )
        statistics.charge_check(
            executor.stats, executor.config.host,
            decision.entries_checked * timing_scale,
        )
        if decision.empty:
            # Some partition's conjunction matches no crossbar: nothing to
            # tombstone, provably — the conservative invariant guarantees it.
            assert not doomed.any(), (
                "zone maps pruned a DELETE that selects live rows; the "
                "conservative-maintenance invariant was violated"
            )
            return DeleteResult(
                records_deleted=0,
                filter_cycles=compiled.filter_program.cycles,
                clear_cycles=0,
                live_records=stored.live_count,
                tombstones=stored.tombstone_count,
            )
        candidates = decision.candidates[primary]

    # Select the rows to delete (the standard PIM filter, valid-conjoined).
    if candidates is None:
        apply_program(
            stored, primary, compiled.filter_program, executor,
            phase="delete-filter", pages=pages,
            result_bits=doomed if vectorized else None,
        )
        # Clear the valid bit where the filter hit.
        apply_program(
            stored, primary, compiled.clear_programs[primary], executor,
            phase="delete-clear", pages=pages,
            result_bits=(valid_before & ~doomed) if vectorized else None,
        )
    else:
        apply_program_pruned(
            stored, primary, compiled.filter_program, executor,
            phase="delete-filter", pages=pages, candidates=candidates,
            result_bits=doomed if vectorized else None,
        )
        # Clear the valid bit where the filter hit.  ``doomed`` is zero on
        # every skipped crossbar, so the AND is the identity there — the
        # preserve-skipped path leaves those valid columns untouched.
        apply_program_at(
            stored, primary, compiled.clear_programs[primary], executor,
            phase="delete-clear", pages=pages, candidates=candidates,
            result_bits=(valid_before & ~doomed) if vectorized else None,
        )
    # Other vertical partitions: ship the tombstone bit-vector through the
    # host (the two-xb transfer path) and clear their valid bits too.  The
    # crossbar index of a slot is the same in every vertical partition, so
    # the primary candidates cover the doomed rows everywhere.
    for index in range(stored.partitions):
        if index == primary:
            continue
        read_model.transfer_bit_column(
            stored,
            primary, stored.layouts[primary].filter_column,
            index, stored.layouts[index].remote_column,
            phase="delete-transfer",
        )
        if candidates is None:
            apply_program(
                stored, index, compiled.clear_programs[index], executor,
                phase="delete-clear",
                pages=stored.allocations[index].pages * timing_scale,
                result_bits=(valid_before & ~doomed) if vectorized else None,
            )
        else:
            apply_program_at(
                stored, index, compiled.clear_programs[index], executor,
                phase="delete-clear",
                pages=stored.allocations[index].pages * timing_scale,
                candidates=candidates,
                result_bits=(valid_before & ~doomed) if vectorized else None,
            )

    doomed_slots = np.nonzero(doomed)[0]
    stored.register_tombstones(doomed_slots)
    # Zone-map maintenance: one live-counter decrement per touched crossbar
    # (bounds stay conservatively wide until the next compaction).  DELETE
    # never bumps candidate-cache epochs — cached fragment masks are
    # bounds-only and stay exact; only the live prefilter shrinks.
    touched = np.unique(doomed_slots // stored.rows_per_crossbar).size
    stored.statistics.charge_maintenance(
        executor.stats, executor.config.host, touched * timing_scale
    )
    clear_cycles = sum(p.cycles for p in compiled.clear_programs.values())
    return DeleteResult(
        records_deleted=int(doomed.sum()),
        filter_cycles=compiled.filter_program.cycles,
        clear_cycles=clear_cycles,
        live_records=stored.live_count,
        tombstones=stored.tombstone_count,
    )


# --------------------------------------------------------------------- INSERT
@dataclass
class InsertResult:
    """Outcome of an INSERT batch."""

    #: Slot index of every inserted record, in input order.
    slots: list[int] = field(default_factory=list)
    #: How many inserts reused a tombstoned slot.
    reused_slots: int = 0
    #: How many inserts grew the high-water mark into the spare tail.
    appended_slots: int = 0
    live_records: int = 0
    tombstones: int = 0

    @property
    def records_inserted(self) -> int:
        return len(self.slots)


def execute_insert(
    stored: StoredRelation,
    records: Sequence[Mapping[str, object]],
    executor: PimExecutor,
    phase: str = "insert-write",
    encoded: bool = False,
) -> InsertResult:
    """Insert ``records`` (``{attribute: value}`` mappings) into free slots.

    Tombstones are reused lowest-first; further records land in the spare
    capacity tail, growing ``num_records`` and the ground-truth relation
    together.  Each record is written through the host store path — one
    field store per attribute plus the bookkeeping bits — charging write
    latency, energy and wear per store (the ``insert-write`` phase).  The
    batch is all-or-nothing against caller errors: capacity and every
    record's encoding are validated before the first write, so a bad record
    raises (:class:`RelationFullError` / :class:`ValueError`) with nothing
    applied.  ``encoded=True`` trusts the records to be
    :meth:`~repro.db.relation.Relation.encode_record` results (the sharded
    router validates once for all shards).
    """
    records = list(records)
    if len(records) > stored.free_slots:
        raise RelationFullError(
            f"cannot insert {len(records)} records into {stored.label!r}: "
            f"only {stored.free_slots} free slots"
        )
    relation = stored.relation
    encoded_records = (
        records if encoded
        else [relation.encode_record(values) for values in records]
    )

    result = InsertResult()
    tail_records: list[dict] = []
    for record in encoded_records:
        slot, reused = stored.acquire_slot()
        if reused:
            relation.set_row(slot, record, encoded=True)
            result.reused_slots += 1
        else:
            # Ground-truth growth is deferred and done in one reallocation
            # below; the slot count is claimed now so the next record lands
            # behind this one.
            tail_records.append(record)
            stored.num_records += 1
            result.appended_slots += 1
        stored.live_count += 1
        stored.note_insert(slot, record)
        result.slots.append(slot)

        for layout, allocation, attrs in zip(
            stored.layouts, stored.allocations, stored.partition_attributes
        ):
            bank = allocation.bank
            xbar = allocation.crossbar_of_record(slot)
            row = allocation.row_of_record(slot)
            for name in attrs:
                offset, width = layout.fields[name]
                executor.host_write_field(
                    bank, xbar, row, offset, width, int(record[name]), phase=phase
                )
            # Raise the valid bit last and scrub the bookkeeping bits a
            # tombstone may have left behind.
            for column, bit in (
                (layout.filter_column, 0),
                (layout.group_column, 0),
                (layout.remote_column, 0),
                (layout.valid_column, 1),
            ):
                executor.host_write_field(bank, xbar, row, column, 1, bit, phase=phase)

    relation.append_rows(tail_records, encoded=True)
    assert len(relation) == stored.num_records, (
        "ground-truth relation out of sync with the slot high-water mark"
    )
    # Zone-map maintenance: each insert widened one crossbar's bounds for
    # every attribute and bumped its live counter — and bumped that
    # crossbar's candidate-cache epoch, so cached fragment masks re-validate
    # exactly the touched crossbars on their next lookup.
    stored.statistics.charge_maintenance(
        executor.stats,
        executor.config.host,
        len(records) * (len(relation.schema.names) + 1),
    )
    result.live_records = stored.live_count
    result.tombstones = stored.tombstone_count
    return result


# ----------------------------------------------------------------- COMPACTION
@dataclass
class CompactionResult:
    """Outcome of a compaction pass."""

    performed: bool
    fragmentation_before: float
    records_moved: int = 0
    slots_reclaimed: int = 0
    slots_before: int = 0
    slots_after: int = 0
    #: Column the surviving rows were sorted by before the dense rewrite
    #: (``None``: rows kept their slot order).
    clustered_by: str | None = None


def execute_compaction(
    stored: StoredRelation,
    executor: PimExecutor,
    threshold: float = DEFAULT_COMPACTION_THRESHOLD,
    force: bool = False,
    timing_scale: float = 1.0,
    cluster_by: str | None = None,
) -> CompactionResult:
    """Rewrite the live rows densely when fragmentation crosses ``threshold``.

    The host reads every live record (``compact-read``, the scattered
    cache-line read path) and streams the dense image back
    (``compact-write``, charging write bandwidth, crossbar write energy and
    one full-row write of wear per rewritten slot).  Afterwards the slot
    high-water mark equals the live count, the free-slot list is empty and
    the bookkeeping bit columns are clean.  A fully-deleted relation (no
    live rows) reclaims all its slots with a metadata-only pass: every slot
    already holds a cleared valid bit, so nothing needs rewriting.

    **Re-clustering**: since compaction reads every live record anyway, it
    is the free moment to choose their order.  ``cluster_by`` (default: the
    hottest predicate column of the relation's
    :class:`~repro.planner.adaptive.AdaptiveController`, if any) sorts the
    surviving rows by that column's encoded value — stable, so equal keys
    keep their arrival order — before the dense rewrite.  Clustered rows
    give the rebuilt zone maps tight disjoint ranges, which is what turns an
    unclustered relation into a prunable one.  The modelled cost is the
    unchanged read-everything/write-everything compaction cost: the ordering
    choice happens in the host's buffer.
    """
    fragmentation = stored.fragmentation
    if stored.tombstone_count == 0:
        return CompactionResult(performed=False, fragmentation_before=fragmentation)
    if not force and fragmentation < threshold:
        return CompactionResult(performed=False, fragmentation_before=fragmentation)

    slots_before = stored.num_records
    crossbar_entries = stored.crossbars_per_partition * (
        len(stored.relation.schema.names) + 1
    )
    if stored.live_count == 0:
        relation = stored.relation
        for name in relation.schema.names:
            relation.columns[name] = relation.columns[name][:0]
        relation.num_records = 0
        stored.reset_slots_after_compaction()
        stored.statistics.charge_maintenance(
            executor.stats, executor.config.host, crossbar_entries * timing_scale
        )
        return CompactionResult(
            performed=True,
            fragmentation_before=fragmentation,
            records_moved=0,
            slots_reclaimed=slots_before,
            slots_before=slots_before,
            slots_after=0,
        )
    valid = stored.valid_mask(0)
    live_indices = np.nonzero(valid)[0]
    new_count = int(len(live_indices))
    read_model = HostReadModel(
        executor.config, executor.stats, traffic_scale=timing_scale
    )

    # Phase 1: the host reads every live record (per vertical partition).
    for partition, attrs in enumerate(stored.partition_attributes):
        read_model.read_records(
            stored, partition, live_indices, attrs, phase="compact-read"
        )

    # The slot-aligned ground truth drops its tombstone rows.
    relation = stored.relation
    for name in relation.schema.names:
        relation.columns[name] = relation.columns[name][valid]
    relation.num_records = new_count

    # Re-cluster: sort the dense image by the hottest predicate column.
    if cluster_by is None:
        cluster_by = stored.statistics.hot_column()
    if cluster_by is not None and cluster_by in relation.schema.names:
        order = np.argsort(relation.column(cluster_by), kind="stable")
        for name in relation.schema.names:
            relation.columns[name] = relation.columns[name][order]
    else:
        cluster_by = None

    # Phase 2: stream the dense image back into the crossbars.
    host = executor.config.host
    xbar_cfg = executor.config.pim.crossbar
    total_bits_written = 0
    for layout, allocation, attrs in zip(
        stored.layouts, stored.allocations, stored.partition_attributes
    ):
        bank = allocation.bank
        capacity = allocation.record_capacity
        row_bits = (
            sum(layout.fields[name][1] for name in attrs)
            + layout.bookkeeping_columns
        )
        for name in attrs:
            offset, width = layout.fields[name]
            padded = np.zeros(capacity, dtype=np.uint64)
            padded[:new_count] = relation.column(name)
            bank.write_field_column(
                offset, width,
                padded.reshape(bank.count, bank.rows),
                count_wear=False,
            )
        fresh_valid = np.zeros(capacity, dtype=bool)
        fresh_valid[:new_count] = True
        bank.write_bool_column(
            layout.valid_column,
            fresh_valid.reshape(bank.count, bank.rows),
            count_wear=False,
        )
        clean = np.zeros((bank.count, bank.rows), dtype=bool)
        for column in (layout.filter_column, layout.group_column, layout.remote_column):
            bank.write_bool_column(column, clean, count_wear=False)
        # Wear: every slot in use before compaction is rewritten once
        # (values moved into the dense prefix, tombstones scrubbed behind it).
        flat_wear = bank.writes_per_row.reshape(-1)
        flat_wear[:slots_before] += row_bits
        total_bits_written += slots_before * row_bits

    scaled_bits = int(round(total_bits_written * timing_scale))
    num_bytes = scaled_bits / 8
    executor.stats.add_time(
        "compact-write", dram.write_time(host, num_bytes, host.query_threads)
    )
    executor.stats.add_energy("write", scaled_bits * xbar_cfg.write_energy_per_bit_j)
    executor.stats.bits_written += scaled_bits
    executor.stats.host_lines_written += int(
        np.ceil(num_bytes / CACHE_LINE_BYTES)
    )

    stored.reset_slots_after_compaction()
    # Zone-map maintenance: compaction moved every row, so the statistics
    # were rebuilt exactly — one pass over every crossbar's entries.  Every
    # candidate-cache epoch was bumped: rows moved between crossbars and the
    # rebuilt bounds may have narrowed, so no cached verdict survives.
    stored.statistics.charge_maintenance(
        executor.stats, executor.config.host, crossbar_entries * timing_scale
    )
    return CompactionResult(
        performed=True,
        fragmentation_before=fragmentation,
        records_moved=new_count,
        slots_reclaimed=slots_before - new_count,
        slots_before=slots_before,
        slots_after=new_count,
        clustered_by=cluster_by,
    )
