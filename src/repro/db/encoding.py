"""Mapping records onto crossbar rows.

A :class:`RowLayout` assigns every attribute of a schema a bit field within
the 512-bit crossbar row (Table I geometry) and reserves the bookkeeping
bits the query engine needs:

* a *valid* bit distinguishing real records from padding rows,
* a *filter* bit receiving the result of the query predicate,
* a *group* bit receiving the result of the per-subgroup predicate used by
  pim-gb,
* an *accumulator* area where aggregation results are written back (and, for
  the pure bulk-bitwise aggregation of the PIMDB baseline, a second
  *operand* area of the same width),
* the remaining columns as gate scratch for the NOR programs.

The layout raises :class:`LayoutError` if everything does not fit, which is
exactly the situation in which the paper's vertical partitioning (the two-xb
configuration, Section III) becomes necessary.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.db.schema import Schema


class LayoutError(ValueError):
    """The schema does not fit into a crossbar row with the requested extras."""


class RowLayout:
    """Bit-level layout of one record (or record partition) in a crossbar row."""

    def __init__(
        self,
        schema: Schema,
        columns: int = 512,
        rows: int = 1024,
        aggregation_width: int | None = None,
        reserve_bulk_aggregation: bool = True,
        min_scratch: int = 10,
        read_width_bits: int = 16,
    ) -> None:
        self.schema = schema
        self.columns = int(columns)
        self.rows = int(rows)
        self.read_width_bits = int(read_width_bits)

        self.fields: dict[str, tuple[int, int]] = {}
        cursor = 0
        for attribute in schema:
            self.fields[attribute.name] = (cursor, attribute.width)
            cursor += attribute.width
        self.record_width = cursor

        self.valid_column = cursor
        self.filter_column = cursor + 1
        self.group_column = cursor + 2
        # Landing column for bits transferred from another vertical partition
        # through the host (the two-xb intermediate-result path).
        self.remote_column = cursor + 3
        #: Bookkeeping bits per record (valid/filter/group/remote) — anything
        #: charging per-row rewrite costs derives the count from here.
        self.bookkeeping_columns = 4
        cursor += self.bookkeeping_columns

        if aggregation_width is None:
            aggregation_width = max((a.width for a in schema), default=1)
        self.aggregation_width = int(aggregation_width)
        self.accumulator_width = min(
            64, self.aggregation_width + int(math.ceil(math.log2(max(self.rows, 2))))
        )
        self.accumulator_offset = cursor
        cursor += self.accumulator_width
        if reserve_bulk_aggregation:
            self.operand_offset: int | None = cursor
            cursor += self.accumulator_width
        else:
            self.operand_offset = None

        if cursor + min_scratch > self.columns:
            raise LayoutError(
                f"schema {schema.name!r} needs {cursor} columns plus at least "
                f"{min_scratch} scratch columns, but the crossbar row has only "
                f"{self.columns}; use vertical partitioning (two-xb)"
            )
        self.scratch_columns: list[int] = list(range(cursor, self.columns))

    # ------------------------------------------------------------- accessors
    def field_offset(self, name: str) -> int:
        return self.fields[name][0]

    def field_width(self, name: str) -> int:
        return self.fields[name][1]

    def field_columns(self, name: str) -> list[int]:
        """Column indices of a field, least-significant bit first."""
        offset, width = self.fields[name]
        return list(range(offset, offset + width))

    def has_field(self, name: str) -> bool:
        return name in self.fields

    def word_indexes(self, name: str) -> list[int]:
        """16-bit read-port word indexes a field spans.

        The host read path uses these to count the distinct cache lines a
        record read touches (one line per (row, word) pair per page).
        """
        offset, width = self.fields[name]
        first = offset // self.read_width_bits
        last = (offset + width - 1) // self.read_width_bits
        return list(range(first, last + 1))

    def words_for_fields(self, names: Sequence[str]) -> list[int]:
        """Distinct word indexes needed to read the given fields."""
        words = set()
        for name in names:
            words.update(self.word_indexes(name))
        return sorted(words)

    @property
    def result_offset(self) -> int:
        """Where aggregation results are written back (the accumulator area)."""
        return self.accumulator_offset

    @property
    def result_word_indexes(self) -> list[int]:
        """Word indexes spanned by the aggregation result."""
        first = self.accumulator_offset // self.read_width_bits
        last = (self.accumulator_offset + self.accumulator_width - 1) // self.read_width_bits
        return list(range(first, last + 1))

    @property
    def used_columns(self) -> int:
        """Columns used by fields, flags and reserved areas (without scratch)."""
        return self.columns - len(self.scratch_columns)

    def describe(self) -> list[tuple[str, int, int]]:
        """Return ``(name, offset, width)`` rows for documentation/debugging."""
        rows = [(name, off, width) for name, (off, width) in self.fields.items()]
        rows.append(("<valid>", self.valid_column, 1))
        rows.append(("<filter>", self.filter_column, 1))
        rows.append(("<group>", self.group_column, 1))
        rows.append(("<remote>", self.remote_column, 1))
        rows.append(("<accumulator>", self.accumulator_offset, self.accumulator_width))
        if self.operand_offset is not None:
            rows.append(("<operand>", self.operand_offset, self.accumulator_width))
        rows.append(("<scratch>", self.scratch_columns[0], len(self.scratch_columns)))
        return rows
