"""UPDATE statements executed inside the PIM memory (Algorithm 1).

Pre-joined relations duplicate dimension data across many fact records, which
is what makes UPDATE expensive in a conventional denormalised store
(Section III).  With bulk-bitwise PIM the update is performed in place: the
records to modify are selected with a PIM filter, and the filter bit then
drives the in-memory multiplexer of Algorithm 1 that overwrites the attribute
with the new value — no record is ever read by the host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.db.compiler import CompilationError, compile_predicate
from repro.db.query import Predicate, evaluate_predicate
from repro.db.storage import StoredRelation
from repro.pim.controller import PimExecutor
from repro.pim.logic import ProgramBuilder


@dataclass
class UpdateResult:
    """Outcome of an in-memory UPDATE."""

    records_updated: int
    filter_cycles: int
    update_cycles: int


def execute_update(
    stored: StoredRelation,
    predicate: Predicate,
    assignments: Dict[str, object],
    executor: PimExecutor,
) -> UpdateResult:
    """Update ``assignments`` on the records selected by ``predicate``.

    Both the predicate attributes and the assigned attributes must live in
    the same vertical partition (which is always true for the paper's use
    case: refreshing a duplicated dimension attribute of the pre-joined
    relation).  The stored bits *and* the in-memory ground-truth relation are
    updated, so subsequent queries — through any engine — see the new values.
    """
    if not assignments:
        raise ValueError("no assignments given")
    partitions = {stored.partition_of(name) for name in assignments}
    from repro.db.query import attributes_referenced

    partitions |= {stored.partition_of(a) for a in attributes_referenced(predicate)}
    if len(partitions) != 1:
        raise CompilationError(
            "UPDATE across vertical partitions is not supported; keep the "
            "predicate and assigned attributes in the same partition"
        )
    partition = partitions.pop()
    layout = stored.layouts[partition]
    allocation = stored.allocations[partition]
    schema = stored.relation.schema

    # Select the records to update (a standard PIM filter).
    filter_program = compile_predicate(predicate, schema, layout)
    executor.run_program(
        allocation.bank, filter_program, pages=allocation.pages, phase="update-filter"
    )

    # Overwrite every assigned attribute with Algorithm 1.
    builder = ProgramBuilder(layout.scratch_columns)
    encoded_assignments: Dict[str, int] = {}
    for name, raw_value in assignments.items():
        attribute = schema.attribute(name)
        encoded = attribute.encode_value(raw_value)
        encoded_assignments[name] = encoded
        builder.mux_update(
            layout.field_columns(name), encoded, layout.filter_column
        )
    update_program = builder.build()
    executor.run_mux_update(
        allocation.bank, update_program, pages=allocation.pages, phase="update-mux"
    )

    # Keep the functional ground truth in sync.
    mask = evaluate_predicate(predicate, stored.relation)
    for name, encoded in encoded_assignments.items():
        column = stored.relation.columns[name]
        column[mask] = np.uint64(encoded)

    return UpdateResult(
        records_updated=int(mask.sum()),
        filter_cycles=filter_program.cycles,
        update_cycles=update_program.cycles,
    )
