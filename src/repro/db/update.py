"""UPDATE statements executed inside the PIM memory (Algorithm 1).

Pre-joined relations duplicate dimension data across many fact records, which
is what makes UPDATE expensive in a conventional denormalised store
(Section III).  With bulk-bitwise PIM the update is performed in place: the
records to modify are selected with a PIM filter, and the filter bit then
drives the in-memory multiplexer of Algorithm 1 that overwrites the attribute
with the new value — no record is ever read by the host.

The compilation (predicate -> filter program, assignments -> mux program) is
separated from the execution: both programs depend only on the row layout,
so a horizontally sharded relation — whose shards share layout objects —
compiles once via :func:`compile_update` and broadcasts the same programs to
every shard.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import default_dml_mode
from repro.core.stages import apply_program_pruned
from repro.db.compiler import CompilationError, compile_predicate
from repro.db.query import Predicate, evaluate_predicate
from repro.db.storage import StoredRelation
from repro.pim.controller import PimExecutor
from repro.pim.logic import Program, ProgramBuilder


@dataclass
class UpdateResult:
    """Outcome of an in-memory UPDATE."""

    records_updated: int
    filter_cycles: int
    update_cycles: int


@dataclass(frozen=True)
class CompiledUpdate:
    """The layout-dependent parts of an UPDATE, compiled once.

    Valid for any stored relation sharing the layout it was compiled
    against — in particular for every shard of a
    :class:`~repro.sharding.storage.ShardedStoredRelation`.  The source
    predicate and assignments are retained so the executor can reject a
    compiled object replayed with a different statement.
    """

    partition: int
    filter_program: Program
    update_program: Program
    encoded_assignments: dict[str, int]
    predicate: Predicate | None = None
    assignments: dict[str, object] | None = None


def compile_update(
    stored: StoredRelation,
    predicate: Predicate,
    assignments: dict[str, object],
) -> CompiledUpdate:
    """Compile the filter and Algorithm 1 mux programs of an UPDATE.

    Both the predicate attributes and the assigned attributes must live in
    the same vertical partition (which is always true for the paper's use
    case: refreshing a duplicated dimension attribute of the pre-joined
    relation).
    """
    if not assignments:
        raise ValueError("no assignments given")
    partitions = {stored.partition_of(name) for name in assignments}
    from repro.db.query import attributes_referenced

    partitions |= {stored.partition_of(a) for a in attributes_referenced(predicate)}
    if len(partitions) != 1:
        raise CompilationError(
            "UPDATE across vertical partitions is not supported; keep the "
            "predicate and assigned attributes in the same partition"
        )
    partition = partitions.pop()
    layout = stored.layouts[partition]
    schema = stored.relation.schema

    filter_program = compile_predicate(predicate, schema, layout)

    builder = ProgramBuilder(layout.scratch_columns)
    encoded_assignments: dict[str, int] = {}
    for name, raw_value in assignments.items():
        attribute = schema.attribute(name)
        encoded = attribute.encode_value(raw_value)
        encoded_assignments[name] = encoded
        builder.mux_update(
            layout.field_columns(name), encoded, layout.filter_column
        )
    return CompiledUpdate(
        partition=partition,
        filter_program=filter_program,
        update_program=builder.build(),
        encoded_assignments=encoded_assignments,
        predicate=predicate,
        assignments=dict(assignments),
    )


def execute_update(
    stored: StoredRelation,
    predicate: Predicate,
    assignments: dict[str, object],
    executor: PimExecutor,
    compiled: CompiledUpdate | None = None,
    pruned: bool | None = None,
) -> UpdateResult:
    """Update ``assignments`` on the records selected by ``predicate``.

    The stored bits *and* the in-memory ground-truth relation are updated,
    so subsequent queries — through any engine — see the new values.
    ``compiled`` reuses a :func:`compile_update` result (the sharded
    broadcast compiles once and passes it to every shard); it must have been
    compiled for ``predicate``/``assignments`` against this relation's
    layout.

    ``pruned`` (default: the ``REPRO_DML`` mode) consults the relation's
    zone maps like the query engine and runs the filter and Algorithm 1 mux
    only on the candidate crossbars — on a skipped crossbar no live row can
    match, so the mux would overwrite every field with its own value.  A
    provably-empty decision skips the statement outright.  The patched rows
    are bit-exact with the broadcast mode either way.
    """
    if compiled is None:
        compiled = compile_update(stored, predicate, assignments)
    elif (compiled.predicate != predicate
          or compiled.assignments != dict(assignments)):
        # A mismatched reuse would rewrite the stored bits under the
        # compiled statement while syncing the ground truth under the given
        # one — a silent divergence, so refuse instead.
        raise ValueError(
            "compiled update does not match the given predicate/assignments"
        )
    if pruned is None:
        pruned = default_dml_mode() == "pruned"
    allocation = stored.allocations[compiled.partition]

    candidates = None
    if pruned:
        statistics = stored.statistics
        decision = statistics.plan(
            predicate,
            stored.partition_attributes,
            executor.config.pim.crossbars_per_page,
        )
        statistics.charge_check(
            executor.stats, executor.config.host, decision.entries_checked
        )
        if decision.empty:
            doomed = evaluate_predicate(predicate, stored.relation)
            doomed &= stored.valid_mask(compiled.partition)
            assert not doomed.any(), (
                "zone maps pruned an UPDATE that selects live rows; the "
                "conservative-maintenance invariant was violated"
            )
            return UpdateResult(
                records_updated=0,
                filter_cycles=compiled.filter_program.cycles,
                update_cycles=compiled.update_program.cycles,
            )
        candidates = decision.candidates[compiled.partition]

    if candidates is None:
        # Select the records to update (a standard PIM filter).
        executor.run_program(
            allocation.bank, compiled.filter_program,
            pages=allocation.pages, phase="update-filter",
        )

        # Overwrite every assigned attribute with Algorithm 1.
        executor.run_mux_update(
            allocation.bank, compiled.update_program,
            pages=allocation.pages, phase="update-mux",
        )

        # The filter left the selection in the partition's filter column.
        stored.mark_filter_dirty(compiled.partition)
    else:
        # Pruned filter: skipped-but-stale crossbars get their filter column
        # cleared and the dirty mask tightened to the candidates, so the mux
        # may consult the filter bit on exactly the crossbars it runs on.
        apply_program_pruned(
            stored, compiled.partition, compiled.filter_program, executor,
            phase="update-filter", pages=allocation.pages,
            candidates=candidates,
        )
        executor.run_program_at(
            allocation.bank, compiled.update_program, candidates,
            pages=allocation.pages, phase="update-mux",
        )

    # Keep the functional ground truth in sync.  Tombstoned rows are masked
    # out: the stored-bits mux never touches them (the filter program ANDs
    # with the valid column), so rewriting their ground-truth values would
    # silently diverge from the stored bits.
    mask = evaluate_predicate(predicate, stored.relation)
    mask &= stored.valid_mask(compiled.partition)
    for name, encoded in compiled.encoded_assignments.items():
        # Widen the zone maps with the assigned constant before the sync
        # overwrites the old values the histograms must forget.  This also
        # bumps the candidate-cache epochs of exactly the touched crossbars,
        # so cached pruning verdicts re-validate only those.
        stored.note_update(name, encoded, mask)
        column = stored.relation.columns[name]
        column[mask] = np.uint64(encoded)
    touched = np.unique(
        np.nonzero(mask)[0] // stored.rows_per_crossbar
    ).size
    stored.statistics.charge_maintenance(
        executor.stats,
        executor.config.host,
        touched * len(compiled.encoded_assignments),
    )

    return UpdateResult(
        records_updated=int(mask.sum()),
        filter_cycles=compiled.filter_program.cycles,
        update_cycles=compiled.update_program.cycles,
    )
