"""Query intermediate representation.

Analytical queries in the paper have the ``select-from-where-group by`` form
(Section II-A): a predicate over one or more relations, an optional GROUP-BY
attribute list, and one or more aggregations.  The classes below express that
form independently of the execution engine; the PIM engine compiles the
predicate into NOR programs, while the columnar baseline evaluates it with
vectorised NumPy operations, and both must agree bit for bit (the integration
tests check exactly that).

:func:`evaluate_predicate` is the reference implementation of predicate
semantics used by the columnar engine and by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.db.relation import Relation


# Comparison operators.
EQ = "=="
NE = "!="
LT = "<"
LE = "<="
GT = ">"
GE = ">="
BETWEEN = "between"
IN = "in"

_VALID_OPS = (EQ, NE, LT, LE, GT, GE, BETWEEN, IN)


@dataclass(frozen=True)
class Comparison:
    """A comparison between an attribute and constants.

    ``value`` is used by the scalar operators, ``low``/``high`` by BETWEEN
    (inclusive bounds) and ``values`` by IN.  Constants are given as *raw*
    values (e.g. the string ``"ASIA"`` for a dictionary-encoded attribute);
    each engine translates them to the stored representation.
    """

    attribute: str
    op: str
    value: object = None
    low: object = None
    high: object = None
    values: tuple[object, ...] = ()

    def __post_init__(self) -> None:
        if self.op not in _VALID_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")
        if self.op == BETWEEN and (self.low is None or self.high is None):
            raise ValueError("BETWEEN needs low and high")
        if self.op == IN and not self.values:
            raise ValueError("IN needs a non-empty value tuple")
        if self.op not in (BETWEEN, IN) and self.value is None:
            raise ValueError(f"{self.op} needs a value")


@dataclass(frozen=True)
class And:
    """Conjunction of child predicates."""

    children: tuple[object, ...]

    def __post_init__(self) -> None:
        if not self.children:
            raise ValueError("And needs at least one child")


@dataclass(frozen=True)
class Or:
    """Disjunction of child predicates."""

    children: tuple[object, ...]

    def __post_init__(self) -> None:
        if not self.children:
            raise ValueError("Or needs at least one child")


Predicate = Comparison | And | Or | None


def conj(*children) -> Predicate:
    """Convenience: conjunction of the non-``None`` children."""
    kept = tuple(c for c in children if c is not None)
    if not kept:
        return None
    if len(kept) == 1:
        return kept[0]
    return And(kept)


@dataclass(frozen=True)
class Aggregate:
    """An aggregation over an attribute (SUM, MIN, MAX or COUNT)."""

    op: str
    attribute: str | None = None
    alias: str | None = None

    def __post_init__(self) -> None:
        if self.op not in ("sum", "min", "max", "count"):
            raise ValueError(f"unsupported aggregation {self.op!r}")
        if self.op != "count" and self.attribute is None:
            raise ValueError(f"{self.op} needs an attribute")

    @property
    def name(self) -> str:
        """Output column name of the aggregate."""
        if self.alias:
            return self.alias
        if self.op == "count":
            return "count"
        return f"{self.op}_{self.attribute}"


@dataclass(frozen=True)
class Query:
    """A select-from-where-group by query over a single (pre-joined) relation."""

    name: str
    predicate: Predicate
    aggregates: tuple[Aggregate, ...]
    group_by: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.aggregates:
            raise ValueError("a query needs at least one aggregate")

    @property
    def filter_attributes(self) -> list[str]:
        """Attributes referenced by the predicate."""
        return sorted(attributes_referenced(self.predicate))

    @property
    def aggregate_attributes(self) -> list[str]:
        """Attributes referenced by the aggregations."""
        return sorted({a.attribute for a in self.aggregates if a.attribute})

    @property
    def referenced_attributes(self) -> list[str]:
        """All attributes the query touches."""
        names: set[str] = set(self.filter_attributes)
        names.update(self.aggregate_attributes)
        names.update(self.group_by)
        return sorted(names)


def attributes_referenced(predicate: Predicate) -> set[str]:
    """Set of attribute names referenced by a predicate."""
    if predicate is None:
        return set()
    if isinstance(predicate, Comparison):
        return {predicate.attribute}
    if isinstance(predicate, (And, Or)):
        names: set[str] = set()
        for child in predicate.children:
            names |= attributes_referenced(child)
        return names
    raise TypeError(f"unknown predicate node {predicate!r}")


def evaluate_predicate(predicate: Predicate, relation: Relation) -> np.ndarray:
    """Reference evaluation of a predicate over a relation.

    Returns a boolean mask of the records satisfying the predicate, using the
    relation's encoded columns (raw constants are translated through the
    schema's dictionaries; constants missing from a dictionary simply select
    nothing, matching the PIM compiler's behaviour).
    """
    if predicate is None:
        return np.ones(len(relation), dtype=bool)
    if isinstance(predicate, Comparison):
        return _evaluate_comparison(predicate, relation)
    if isinstance(predicate, And):
        mask = np.ones(len(relation), dtype=bool)
        for child in predicate.children:
            mask &= evaluate_predicate(child, relation)
        return mask
    if isinstance(predicate, Or):
        mask = np.zeros(len(relation), dtype=bool)
        for child in predicate.children:
            mask |= evaluate_predicate(child, relation)
        return mask
    raise TypeError(f"unknown predicate node {predicate!r}")


def _encode_constant(relation: Relation, attribute: str, value) -> int | None:
    attr = relation.schema.attribute(attribute)
    try:
        return attr.encode_value(value)
    except KeyError:
        return None


def fold_comparison(op: str, encoded: int | None, max_value: int) -> bool | None:
    """Constant-fold a scalar comparison against the field domain.

    ``encoded`` is the constant's stored code (``None`` when the raw value
    is missing from the attribute's dictionary); ``max_value`` is the
    largest code the field can hold.  Returns ``True``/``False`` when every
    in-domain stored value compares the same way — a value missing from the
    dictionary matches nothing (everything for ``!=``), and an integer
    outside ``[0, max_value]`` puts the whole domain on one side of the
    comparison — and ``None`` when the constant is in-domain and must be
    compared for real.

    This is *the* definition of out-of-domain comparison semantics.  The
    NOR compiler, the reference evaluator, the zone maps and the
    selectivity model all fold through here; the planner's pruning
    soundness depends on them agreeing bit for bit.
    """
    if op not in (EQ, NE, LT, LE, GT, GE):
        raise ValueError(f"unknown operator {op!r}")
    if encoded is None:
        return op == NE
    if 0 <= encoded <= max_value:
        return None
    if op in (EQ, NE):
        return op == NE
    below = encoded > max_value
    return below if op in (LT, LE) else not below


def clamp_between(
    low: int | None, high: int | None, max_value: int
) -> tuple[int, int] | None:
    """Clamp BETWEEN bounds into the field domain (``None`` = empty range).

    The companion of :func:`fold_comparison` for the inclusive range
    operator: a bound missing from the dictionary, a range entirely outside
    the domain, or an inverted range selects nothing; anything else clamps
    to the representable ``[max(low, 0), min(high, max_value)]``.
    """
    if low is None or high is None or high < 0 or low > max_value or low > high:
        return None
    return max(low, 0), min(high, max_value)


def _evaluate_comparison(comparison: Comparison, relation: Relation) -> np.ndarray:
    column = relation.column(comparison.attribute)
    max_value = relation.schema.attribute(comparison.attribute).max_value
    op = comparison.op
    if op == IN:
        mask = np.zeros(len(relation), dtype=bool)
        for value in comparison.values:
            encoded = _encode_constant(relation, comparison.attribute, value)
            if encoded is not None and 0 <= encoded <= max_value:
                mask |= column == np.uint64(encoded)
        return mask
    if op == BETWEEN:
        bounds = clamp_between(
            _encode_constant(relation, comparison.attribute, comparison.low),
            _encode_constant(relation, comparison.attribute, comparison.high),
            max_value,
        )
        if bounds is None:
            return np.zeros(len(relation), dtype=bool)
        low, high = bounds
        return (column >= np.uint64(low)) & (column <= np.uint64(high))
    encoded = _encode_constant(relation, comparison.attribute, comparison.value)
    folded = fold_comparison(op, encoded, max_value)
    if folded is not None:
        return np.full(len(relation), folded, dtype=bool)
    value = np.uint64(encoded)
    if op == EQ:
        return column == value
    if op == NE:
        return column != value
    if op == LT:
        return column < value
    if op == LE:
        return column <= value
    if op == GT:
        return column > value
    if op == GE:
        return column >= value
    raise ValueError(f"unknown operator {op!r}")


def reference_group_aggregate(
    relation: Relation,
    mask: np.ndarray,
    group_by: Sequence[str],
    aggregates: Sequence[Aggregate],
) -> dict[tuple[int, ...], dict[str, int]]:
    """Reference GROUP-BY aggregation used to validate every engine.

    Returns ``{group_key_codes: {aggregate_name: value}}``.  With an empty
    ``group_by`` the single key is the empty tuple.
    """
    mask = np.asarray(mask, dtype=bool)
    selected_indices = np.nonzero(mask)[0]
    results: dict[tuple[int, ...], dict[str, int]] = {}
    if len(group_by) == 0:
        keys = np.zeros((len(selected_indices), 0), dtype=np.uint64)
    else:
        keys = np.stack(
            [relation.column(name)[selected_indices] for name in group_by], axis=1
        )
    if len(selected_indices) == 0:
        return results
    unique_keys, inverse = np.unique(keys, axis=0, return_inverse=True)
    for key_index, key in enumerate(unique_keys):
        group_rows = selected_indices[inverse == key_index]
        entry: dict[str, int] = {}
        for aggregate in aggregates:
            if aggregate.op == "count":
                entry[aggregate.name] = int(len(group_rows))
                continue
            values = relation.column(aggregate.attribute)[group_rows]
            if aggregate.op == "sum":
                entry[aggregate.name] = int(values.sum())
            elif aggregate.op == "min":
                entry[aggregate.name] = int(values.min())
            else:
                entry[aggregate.name] = int(values.max())
        results[tuple(int(v) for v in key)] = entry
    return results
