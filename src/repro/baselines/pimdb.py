"""The PIMDB baseline: bulk-bitwise PIM without the aggregation circuit.

PIMDB [1] is the system this paper builds on.  For the comparison in
Section V the authors extend PIMDB with the pre-joined relation and the
GROUP-BY technique of this paper, so the *only* difference is how PIM
aggregation is carried out: PIMDB performs it purely with bulk-bitwise logic
(the expensive in-crossbar reduction of
:class:`~repro.pim.arithmetic.BulkAggregationPlan`), while one-xb uses the
per-crossbar aggregation circuit.  This module builds a query engine wired up
exactly that way; its GROUP-BY cost model is re-fitted for the slower PIM
aggregation, which is why PIMDB assigns fewer subgroups to pim-gb
(Table II).
"""

from __future__ import annotations


from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.core.executor import PimQueryEngine
from repro.db.relation import Relation
from repro.db.storage import StoredRelation
from repro.pim.module import PimModule


def build_pimdb_engine(
    relation: Relation,
    config: SystemConfig | None = None,
    aggregation_width: int | None = None,
    label: str = "pimdb",
    sample_pages: int = 1,
    timing_scale: float = 1.0,
) -> tuple[PimQueryEngine, StoredRelation]:
    """Store ``relation`` and return a PIMDB-configured query engine.

    The returned configuration disables the aggregation circuit, which makes
    the engine fall back to the pure bulk-bitwise reduction; the row layout
    therefore reserves the in-row operand area the reduction needs.
    """
    base = config if config is not None else DEFAULT_CONFIG
    pimdb_config = base.without_aggregation_circuit()
    module = PimModule(pimdb_config)
    stored = StoredRelation(
        relation,
        module,
        label=label,
        aggregation_width=aggregation_width,
        reserve_bulk_aggregation=True,
    )
    engine = PimQueryEngine(
        stored, config=pimdb_config, label=label, sample_pages=sample_pages,
        timing_scale=timing_scale,
    )
    return engine, stored
