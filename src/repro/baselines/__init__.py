"""Baseline configurations the paper compares against.

* :mod:`repro.baselines.pimdb` — PIMDB [1]: the same bulk-bitwise PIM system
  without the per-crossbar aggregation circuit, extended (as in the paper's
  comparison) with the pre-joined relation and the hybrid GROUP-BY technique
  so that only the aggregation mechanism differs.
* The MonetDB baselines (mnt-reg, mnt-join) live in :mod:`repro.columnar`.
"""

from repro.baselines.pimdb import build_pimdb_engine

__all__ = ["build_pimdb_engine"]
