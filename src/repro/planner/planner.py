"""Cost-based query planning over zone maps and histograms.

Three planner responsibilities live here:

* :class:`RelationStatistics` bundles the per-crossbar
  :class:`~repro.planner.zonemap.ZoneMaps` and the per-column
  :class:`~repro.planner.selectivity.SelectivityModel` of one stored
  relation.  Every :class:`~repro.db.storage.StoredRelation` builds one at
  load time and the DML paths keep it maintained, so engines and the service
  can consult it at any point of the relation's lifecycle.
* :meth:`RelationStatistics.plan` turns a WHERE clause into a
  :class:`~repro.planner.zonemap.PruneDecision` — per-partition candidate
  crossbars, with the conjuncts ordered most-selective first so the zone-map
  walk exits early.
* :class:`CostPlanner` makes the pim-vs-host routing decision for the query
  service: a selective query runs on the PIM engine (broadcast cost bounded
  by the pruned crossbars), while a high-selectivity query over a small
  relation can be cheaper to stream through the host's load path and
  hash-aggregate on the CPU — :func:`execute_host_scan` is that path,
  charging the same :class:`~repro.pim.stats.PimStats` machinery so the two
  routes stay comparable.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, replace
from collections.abc import Sequence

import numpy as np

from repro.config import SystemConfig
from repro.db.compiler import CompilationError, partition_conjuncts
from repro.db.query import Comparison, Predicate, Query, evaluate_predicate
from repro.host import dram
from repro.host.processor import cpu_time
from repro.obs.trace import NULL_TRACER
from repro.pim.stats import PimStats
from repro.planner.adaptive import AdaptiveController, AdaptiveSnapshot
from repro.planner.candidates import (
    CandidateCacheStats,
    CandidateSetCache,
    normalize_fragment,
)
from repro.planner.selectivity import SelectivityModel
from repro.planner.zonemap import PairZoneMap, PruneDecision, ZoneMaps


#: Memoized :meth:`RelationStatistics.plan` decisions kept per relation.
_PLAN_CACHE_CAPACITY = 64


@dataclass
class _PlanEntry:
    """One memoized plan decision plus its billing state.

    ``pending`` accumulates the zone-map entries consulted on behalf of this
    decision that no execution has been billed for yet: the cost router
    peeks at a plan without consuming the charge, and the engine's
    back-to-back request then bills the whole walk exactly once.
    """

    decision: PruneDecision
    version: int
    pending: int = 0


class RelationStatistics:
    """Zone maps plus histograms of one stored relation, kept under DML."""

    def __init__(
        self,
        zonemaps: ZoneMaps,
        selectivity: SelectivityModel,
        semantic_cache: bool = True,
    ) -> None:
        self.zonemaps = zonemaps
        self.selectivity = selectivity
        #: Per-fragment candidate sets with per-crossbar epoch invalidation.
        self.candidates = CandidateSetCache(zonemaps)
        #: Feedback accumulator: estimation error, hot columns, hot pairs.
        self.adaptive = AdaptiveController()
        #: Correlated-pair sketch, built once the tracker names a hot pair.
        self.pair_map: PairZoneMap | None = None
        self._semantic_cache = bool(semantic_cache)
        # Relation-wide change counter: *any* maintenance event (including
        # DELETE, which changes the live prefilter but not the cached
        # fragment masks) retires memoized whole-plan decisions, which are
        # then cheaply reassembled from the fragment cache.
        self._version = 0
        # plan() memo: the service's cost router and the engine both plan
        # the same predicate back to back, and serving workloads replay
        # predicates.  Holds _PlanEntry objects in semantic mode and bare
        # PruneDecision objects in the legacy wholesale-invalidation mode.
        self._plan_cache: OrderedDict[object, object] = OrderedDict()

    @classmethod
    def from_stored(cls, stored) -> RelationStatistics:
        return cls(
            ZoneMaps.from_stored(stored),
            SelectivityModel.from_relation(stored.relation),
        )

    # --------------------------------------------------------------- modes
    @property
    def semantic_cache(self) -> bool:
        """Whether plans assemble from the per-fragment candidate cache.

        ``False`` reproduces the PR 5 behaviour exactly — whole-plan memo,
        wholesale invalidation on every maintenance event, the full-walk
        entry count billed on every request — and exists as the A/B baseline
        of ``benchmarks/bench_predicate_cache.py``.
        """
        return self._semantic_cache

    @semantic_cache.setter
    def semantic_cache(self, value: bool) -> None:
        value = bool(value)
        if value != self._semantic_cache:
            self._plan_cache.clear()  # entry types differ between the modes
        self._semantic_cache = value

    # ------------------------------------------------------------------ plan
    def plan(
        self,
        predicate: Predicate,
        partition_attributes: Sequence[Sequence[str]],
        crossbars_per_page: int,
        peek: bool = False,
    ) -> PruneDecision:
        """Candidate crossbars for every vertical partition of a predicate.

        The returned decision's candidate masks are read-only and shared
        with the memo; ``entries_checked`` is the zone-map work billed to
        *this* call (0 on a clean replay).  ``peek=True`` returns the same
        decision without consuming the billing — the cost router peeks, the
        engine's subsequent request then pays for the walk exactly once.
        """
        # The memo keys on the predicate's *structural* normal form, so
        # structurally equal predicates built separately (a replayed query
        # text re-parsed into fresh objects) hit the whole-plan memo, not
        # just the per-fragment candidate cache underneath it.
        key = (
            normalize_fragment(predicate),
            tuple(tuple(attrs) for attrs in partition_attributes),
            crossbars_per_page,
        )
        if not self._semantic_cache:
            return self._legacy_plan(key, predicate, partition_attributes,
                                     crossbars_per_page)
        entry = self._plan_cache.get(key)
        if entry is None or entry.version != self._version:
            decision, consulted = self._assemble(
                predicate, partition_attributes, crossbars_per_page
            )
            pending = consulted + (entry.pending if entry is not None else 0)
            entry = _PlanEntry(decision, self._version, pending)
            self._plan_cache[key] = entry
        self._plan_cache.move_to_end(key)
        if len(self._plan_cache) > _PLAN_CACHE_CAPACITY:
            self._plan_cache.popitem(last=False)
        billed = entry.pending
        if not peek:
            entry.pending = 0
        return replace(entry.decision, entries_checked=billed)

    def _assemble(
        self,
        predicate: Predicate,
        partition_attributes: Sequence[Sequence[str]],
        crossbars_per_page: int,
    ) -> tuple[PruneDecision, int]:
        """Build a decision by intersecting cached fragment candidate sets.

        Per partition the live prefilter is applied fresh (DELETEs shrink it
        without touching the cache) and the fragments — ordered
        most-selective first — narrow it; the walk exits early once no
        candidate remains, exactly like the uncached
        :meth:`~repro.planner.zonemap.ZoneMaps.check`.
        """
        per_partition = partition_conjuncts(predicate, partition_attributes)
        live_mask = self.zonemaps.live > 0
        candidates: list[np.ndarray] = []
        consulted = 0
        conjuncts_checked = 0
        for conjunct in per_partition:
            ordered = self.selectivity.order_conjuncts(conjunct)
            mask = live_mask.copy()
            for fragment in ordered:
                if fragment is None:
                    continue
                if not mask.any():
                    break
                fragment_mask, entries = self.candidates.lookup(
                    fragment, crossbars_per_page
                )
                mask &= fragment_mask
                consulted += entries
                conjuncts_checked += 1
            if self.pair_map is not None and mask.any():
                pair_masks = self._pair_bucket_masks(ordered)
                if pair_masks is not None:
                    mask &= self.pair_map.possible(*pair_masks)
                    consulted += self.zonemaps.crossbars
            mask.setflags(write=False)
            candidates.append(mask)
        decision = PruneDecision(
            candidates=candidates,
            crossbars_total=self.zonemaps.crossbars * len(candidates),
            crossbars_scanned=int(sum(mask.sum() for mask in candidates)),
            entries_checked=consulted,
            conjuncts_checked=conjuncts_checked,
        )
        return decision, consulted

    def _legacy_plan(
        self,
        key: object,
        predicate: Predicate,
        partition_attributes: Sequence[Sequence[str]],
        crossbars_per_page: int,
    ) -> PruneDecision:
        """The PR 5 plan memo: full walk on miss, full-walk billing on hit."""
        cached = self._plan_cache.get(key)
        if cached is not None:
            self._plan_cache.move_to_end(key)
            return cached
        per_partition = partition_conjuncts(predicate, partition_attributes)
        candidates: list[np.ndarray] = []
        entries = 0
        conjuncts_checked = 0
        for conjunct in per_partition:
            ordered = self.selectivity.order_conjuncts(conjunct)
            check = self.zonemaps.check(ordered, crossbars_per_page)
            check.candidates.setflags(write=False)
            candidates.append(check.candidates)
            entries += check.entries_checked
            conjuncts_checked += check.conjuncts_checked
        decision = PruneDecision(
            candidates=candidates,
            crossbars_total=self.zonemaps.crossbars * len(candidates),
            crossbars_scanned=int(sum(mask.sum() for mask in candidates)),
            entries_checked=entries,
            conjuncts_checked=conjuncts_checked,
        )
        self._plan_cache[key] = decision
        if len(self._plan_cache) > _PLAN_CACHE_CAPACITY:
            self._plan_cache.popitem(last=False)
        return decision

    def _pair_bucket_masks(self, fragments) -> tuple[int, int] | None:
        """Bucket masks of the pair's two columns when *both* are constrained.

        Only plain comparison fragments constrain a bucket mask (anything
        else stays conservatively all-ones); and only when the same
        partition's conjunction constrains both columns is the joint sketch
        consulted — a pair restriction is the conjunction of two
        single-column constraints, so it is sound exactly where both belong
        to the conjunct the pruned program evaluates.
        """
        first, second = self.pair_map.attributes
        a_mask = b_mask = None
        for fragment in fragments:
            if not isinstance(fragment, Comparison):
                continue
            bucket = self.pair_map.bucket_mask(fragment)
            if bucket is None:
                continue
            if fragment.attribute == first:
                a_mask = bucket if a_mask is None else (a_mask & bucket)
            else:
                b_mask = bucket if b_mask is None else (b_mask & bucket)
        if a_mask is None or b_mask is None:
            return None
        return a_mask, b_mask

    def candidate_stats(self) -> CandidateCacheStats:
        """Point-in-time counters of the semantic candidate-set cache."""
        return self.candidates.stats()

    def _note_change(self) -> None:
        self._version += 1
        if not self._semantic_cache:
            self._plan_cache.clear()

    def estimate(self, predicate: Predicate) -> float:
        """Estimated selected fraction of the live records."""
        return self.selectivity.estimate(predicate)

    # -------------------------------------------------------------- feedback
    def observe_execution(
        self,
        predicate: Predicate,
        estimated: float | None,
        actual: float,
        crossbars_scanned: int,
        stored=None,
        stats: PimStats | None = None,
        host=None,
        timing_scale: float = 1.0,
    ) -> list[str]:
        """Fold one execution's feedback and apply any triggered decisions.

        This is the closed loop's *decide* step: the
        :class:`~repro.planner.adaptive.AdaptiveController` accumulates the
        (estimated, actual) error and scan volume; when a column's error
        crosses the threshold its histogram is rebuilt **equi-depth** from
        the live rows, and when a correlated pair gets hot a
        :class:`~repro.planner.zonemap.PairZoneMap` sketch is built for it.
        Both are charged to the execution's stats as ``stats-rebuild`` (one
        maintenance entry per crossbar and rebuilt structure, the same units
        DML maintenance charges).  Returns the rebuilt column names.
        """
        triggered = self.adaptive.observe(
            predicate, estimated, actual, crossbars_scanned
        )
        if stored is None:
            return triggered
        entries = 0.0
        relation = stored.relation
        valid = None
        hot_pair = self.adaptive.hot_pair()
        build_pair = self.pair_map is None and hot_pair is not None
        if triggered or build_pair:
            valid = stored.valid_mask(0)
        for name in triggered:
            self.selectivity.rebuild_column(
                relation, name, valid=valid, equi_depth=True
            )
            entries += self.zonemaps.crossbars
        if triggered:
            self.adaptive.note_rebuild(len(triggered))
        if build_pair:
            self.pair_map = PairZoneMap.from_relation(
                hot_pair,
                self.zonemaps.schema,
                self.zonemaps.crossbars,
                self.zonemaps.rows,
                relation,
                valid,
            )
            self.adaptive.note_pair_sketch()
            entries += self.zonemaps.crossbars
        if triggered or build_pair:
            # Estimates (conjunct ordering) and — with a fresh pair sketch —
            # the candidate masks themselves changed: retire memoized plans.
            self._note_change()
        if entries and stats is not None and host is not None:
            self.charge_maintenance(
                stats, host, entries * timing_scale, phase="stats-rebuild"
            )
        return triggered

    def hot_column(self) -> str | None:
        """Predicate column with the largest accumulated scan volume."""
        return self.adaptive.hottest_column()

    def adaptive_snapshot(self) -> AdaptiveSnapshot:
        """Point-in-time counters of the feedback loop."""
        return self.adaptive.snapshot()

    # ------------------------------------------------------------ maintenance
    def note_insert(self, slot: int, record) -> None:
        self.zonemaps.note_insert(slot, record)
        self.selectivity.note_insert(record)
        if self.pair_map is not None:
            self.pair_map.note_insert(slot, record)
        # Only the crossbar the INSERT landed in changed its bounds.
        self.candidates.bump([slot // self.zonemaps.rows])
        self._note_change()

    def note_delete(self, slots: np.ndarray, relation) -> None:
        slots = np.asarray(slots, dtype=np.int64)
        self.zonemaps.note_delete(slots)
        if slots.size:
            self.selectivity.note_remove(
                {
                    name: relation.columns[name][slots]
                    for name in relation.schema.names
                }
            )
        # No epoch bump: bounds only stay conservatively wide under DELETE;
        # the shrunken live prefilter is intersected fresh at plan assembly.
        self._note_change()

    def note_update(
        self, attribute: str, encoded: int, crossbars: np.ndarray, old_values
    ) -> None:
        self.zonemaps.note_update(attribute, encoded, crossbars)
        self.selectivity.note_update(attribute, old_values, encoded)
        if self.pair_map is not None:
            self.pair_map.note_update(attribute, crossbars)
        self.candidates.bump(crossbars)
        self._note_change()

    def rebuild(self, relation, valid=None) -> None:
        self.zonemaps.rebuild(relation, valid)
        # An exact rebuild must leave no widen-only drift behind; the check
        # recomputes the bounds through an independent reduction path.
        self.zonemaps.assert_tight(relation, valid)
        self.selectivity.rebuild(relation, valid)
        if self.pair_map is not None:
            self.pair_map.rebuild(relation, valid)
        # Compaction moves rows between crossbars and rebuilds the bounds
        # exactly (they may *narrow*), so every cached verdict is stale.
        self.candidates.bump_all()
        self._note_change()

    # ------------------------------------------------------------ cost model
    charge_check = staticmethod(ZoneMaps.charge_check)
    charge_maintenance = staticmethod(ZoneMaps.charge_maintenance)


# ---------------------------------------------------------------------------
# pim-vs-host routing
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PlanDecision:
    """One routing decision of the cost planner."""

    #: Chosen execution route: ``"pim"`` or ``"host"``.
    target: str
    #: Estimated selected fraction of the records.
    estimated_selectivity: float
    #: Modelled cost estimates the decision compared, seconds.
    est_pim_time_s: float
    est_host_time_s: float


def _host_scan_read_plan(stored, query: Query) -> dict[int, tuple[list[str], int]]:
    """Columns a host scan must stream, per partition: ``(names, lines)``.

    The host streams the 16-bit words covering the referenced attributes of
    every slot; a cache line carries one word of the 32 records interleaved
    across a page's crossbars, so the line count is
    ``pages x rows x distinct words``.
    """
    by_partition: dict[int, list[str]] = {}
    for name in query.referenced_attributes:
        by_partition.setdefault(stored.partition_of(name), []).append(name)
    plan: dict[int, tuple[list[str], int]] = {}
    for partition, names in by_partition.items():
        layout = stored.layouts[partition]
        words = len(layout.words_for_fields(names))
        allocation = stored.allocations[partition]
        lines = allocation.pages * allocation.rows_per_crossbar * words
        plan[partition] = (names, lines)
    return plan


class CostPlanner:
    """Chooses between the PIM engine and a host scan for each query."""

    def route(self, query: Query, engine) -> PlanDecision:
        """Decide the route for one query on one (unsharded) engine."""
        tracer = getattr(engine, "tracer", NULL_TRACER)
        with tracer.span("plan") as span:
            stored = engine.stored
            statistics = getattr(stored, "statistics", None)
            if statistics is None:
                decision = PlanDecision("pim", 1.0, 0.0, float("inf"))
            else:
                selectivity = statistics.estimate(query.predicate)
                est_host = self._estimate_host(query, engine, selectivity)
                est_pim = self._estimate_pim(query, engine, selectivity)
                target = "host" if est_host < est_pim else "pim"
                decision = PlanDecision(target, selectivity, est_pim, est_host)
            if tracer.enabled:
                span.set(
                    target=decision.target,
                    estimated_selectivity=decision.estimated_selectivity,
                    est_pim_time_s=decision.est_pim_time_s,
                    est_host_time_s=decision.est_host_time_s,
                )
            return decision

    # ------------------------------------------------------------- estimates
    def _estimate_host(self, query: Query, engine, selectivity: float) -> float:
        """Modelled time of :func:`execute_host_scan` for this query."""
        stored = engine.stored
        config: SystemConfig = engine.config
        scale = engine.timing_scale
        host = config.host
        read_time = sum(
            dram.stream_read_time(host, lines * dram.CACHE_LINE_BYTES * scale)
            for _, lines in _host_scan_read_plan(stored, query).values()
        )
        selected = selectivity * stored.live_count * scale
        agg_time = cpu_time(
            host, selected, host.host_agg_cycles_per_record, host.query_threads
        )
        return read_time + agg_time

    def _estimate_pim(self, query: Query, engine, selectivity: float) -> float:
        """Rough modelled time of the (pruned) PIM execution."""
        stored = engine.stored
        config: SystemConfig = engine.config
        scale = engine.timing_scale
        xbar = config.pim.crossbar
        gap = config.pim.request_issue_gap_s
        cp = config.pim.crossbars_per_page
        statistics = stored.statistics
        try:
            per_partition = partition_conjuncts(
                query.predicate, stored.partition_attributes
            )
            # Peek at the memoized plan: the engine re-requests the
            # identical decision right after routing, and the billing
            # (zonemap-check entries) is consumed by that request, so the
            # walk is paid for exactly once per cold query.
            prune = (
                statistics.plan(
                    query.predicate, stored.partition_attributes, cp, peek=True
                )
                if getattr(engine, "pruning", False)
                else None
            )
        except CompilationError:
            return 0.0  # the engine will raise the real error — stay on PIM
        schema = stored.relation.schema
        total = 0.0
        scanned_pages = stored.pages * scale
        for index, conjunct in enumerate(per_partition):
            layout = stored.layouts[index]
            pages = stored.allocations[index].pages * scale
            if prune is not None:
                mask = prune.candidates[index]
                pages *= mask.sum() / max(1, len(mask))
            try:
                program = engine.compiler.filter_program(conjunct, schema, layout)
                cycles = program.cycles
            except CompilationError:
                cycles = 64
            total += pages * gap + cycles * xbar.logic_cycle_s
            scanned_pages = min(scanned_pages, pages)
        # Aggregation: the circuit streams every row of the scanned pages.
        layout = stored.layouts[0]
        circuit = config.pim.aggregation_circuit
        for aggregate in query.aggregates:
            if aggregate.attribute is None:
                reads = 1
            else:
                width = stored.layout_of(aggregate.attribute).field_width(
                    aggregate.attribute
                )
                reads = int(math.ceil(width / xbar.read_width_bits))
            total += scanned_pages * gap + layout.rows * reads * circuit.cycle_s
        total += dram.scattered_read_time(
            config.host,
            scanned_pages * len(layout.result_word_indexes),
            config.host.query_threads,
        )
        if query.group_by:
            # host-gb over the selected records (the common residual pass):
            # distinct (page, row) line groups, then the hash aggregation.
            pages = stored.pages * scale
            pairs = pages * layout.rows * (1.0 - (1.0 - selectivity) ** cp)
            # Referenced attributes may be spread over the vertical
            # partitions; count the touched row-fragment words in each.
            words = sum(
                len(part_layout.words_for_fields(
                    [name for name in query.referenced_attributes
                     if name in part_layout.fields]
                ))
                for part_layout in stored.layouts
            )
            total += dram.scattered_read_time(
                config.host, pairs * words, config.host.query_threads
            )
            total += cpu_time(
                config.host,
                selectivity * stored.live_count * scale,
                config.host.host_agg_cycles_per_record,
                config.host.query_threads,
            )
            total += dram.stream_read_time(
                config.host, stored.num_records / 8 * scale
            )
        return total


def execute_host_scan(engine, query: Query, decision: PlanDecision | None = None):
    """Execute a query by streaming the relation through the host load path.

    The functional answer is the reference aggregation over the live ground
    truth — bit-exact with the PIM engine by construction.  The modelled cost
    is a bandwidth-bound stream of the referenced columns plus the host-side
    hash aggregation of the selected records, charged through the same
    :class:`~repro.pim.stats.PimStats` the PIM path uses.
    """
    tracer = getattr(engine, "tracer", NULL_TRACER)
    with tracer.span("host-scan", label=engine.label):
        return _execute_host_scan(engine, query, decision, tracer)


def _execute_host_scan(engine, query: Query, decision, tracer):
    from repro.core.executor import QueryExecution
    from repro.host.aggregator import host_group_aggregate
    from repro.host.readpath import HostReadModel

    stored = engine.stored
    config: SystemConfig = engine.config
    scale = engine.timing_scale
    stats = PimStats()
    tracer.bind(stats)
    read_model = HostReadModel(config, stats, traffic_scale=scale)

    mask = evaluate_predicate(query.predicate, stored.relation)
    mask &= stored.valid_mask(0)
    for _, lines in _host_scan_read_plan(stored, query).values():
        read_model.charge_stream_lines(lines, phase="host-scan-read")
    group_columns = {
        name: stored.relation.column(name)[mask] for name in query.group_by
    }
    value_columns = {
        a.attribute: stored.relation.column(a.attribute)[mask]
        for a in query.aggregates
        if a.attribute is not None
    }
    rows = host_group_aggregate(
        group_columns,
        value_columns,
        query.aggregates,
        config.host,
        stats=stats,
        threads=config.host.query_threads,
        phase="host-scan-agg",
        workload_scale=scale,
    )
    # Normalize by the live rows, not the slots in use: tombstoned slots can
    # never be selected (the valid mask was just ANDed in), and the PIM path
    # and the selectivity estimator both speak live-row fractions.
    selectivity = (
        float(mask.sum() / stored.live_count) if stored.live_count else 0.0
    )
    total_crossbars = sum(a.crossbars for a in stored.allocations)
    # Record the planner estimate whether or not the router handed one over,
    # and feed the feedback loop: a host-routed execution observes estimation
    # error too (it streamed every crossbar, so that is its scan volume).
    statistics = getattr(stored, "statistics", None)
    if decision is not None:
        estimated = decision.estimated_selectivity
    elif statistics is not None:
        estimated = statistics.estimate(query.predicate)
    else:
        estimated = None
    if statistics is not None and query.predicate is not None:
        statistics.observe_execution(
            query.predicate,
            estimated,
            selectivity,
            crossbars_scanned=total_crossbars,
            stored=stored,
            stats=stats,
            host=config.host,
            timing_scale=scale,
        )
    return QueryExecution(
        query=query,
        label=f"{engine.label}/host-scan",
        rows=rows,
        stats=stats,
        selectivity=selectivity,
        total_subgroups=len(rows) if query.group_by else 1,
        subgroups_in_sample=0,
        pim_subgroups=0,
        max_writes_per_row=0,
        plan=None,
        crossbars_total=total_crossbars,
        crossbars_scanned=0,
        estimated_selectivity=estimated,
    )
