"""Statistics and planning: zone maps, selectivity, crossbar skipping.

The subsystem has three layers:

* :mod:`repro.planner.zonemap` — conservative per-crossbar ``(min, max,
  live)`` statistics that prove crossbars irrelevant to a predicate;
* :mod:`repro.planner.selectivity` — per-column histograms estimating
  selected fractions, driving conjunct ordering and routing;
* :mod:`repro.planner.candidates` — the semantic candidate-set cache:
  memoized per-fragment pruning outcomes with per-crossbar epoch
  invalidation, intersected per conjunctive query;
* :mod:`repro.planner.planner` — :class:`RelationStatistics` (the bundle a
  :class:`~repro.db.storage.StoredRelation` carries and DML maintains) and
  :class:`CostPlanner` (the query service's pim-vs-host routing).
"""

from repro.planner.candidates import (
    CandidateCacheStats,
    CandidateSetCache,
    normalize_fragment,
)
from repro.planner.planner import (
    CostPlanner,
    PlanDecision,
    RelationStatistics,
    execute_host_scan,
)
from repro.planner.selectivity import ColumnHistogram, SelectivityModel
from repro.planner.zonemap import PruneDecision, ZoneCheck, ZoneMaps

__all__ = [
    "CandidateCacheStats",
    "CandidateSetCache",
    "ColumnHistogram",
    "CostPlanner",
    "PlanDecision",
    "PruneDecision",
    "RelationStatistics",
    "SelectivityModel",
    "ZoneCheck",
    "ZoneMaps",
    "execute_host_scan",
    "normalize_fragment",
]
