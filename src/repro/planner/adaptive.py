"""Feedback-driven statistics: the observe→decide→reorganize accumulator.

The planner *observes* estimation error on every execution
(``QueryExecution.estimated_selectivity`` vs. the actual selected fraction)
and compaction *rewrites* rows, but until this module nothing connected the
two.  :class:`AdaptiveController` is the per-relation accumulator that closes
the loop:

* **Estimation-error accounting** — every execution folds the relative error
  ``|estimated - actual| / max(estimated, actual)`` into a per-column
  accumulator (split evenly over the predicate's columns: with independence
  assumed, any of them may be the culprit).  When a column's accumulated
  error crosses :data:`DEFAULT_ERROR_THRESHOLD`,
  :meth:`RelationStatistics.observe_execution
  <repro.planner.planner.RelationStatistics.observe_execution>` rebuilds that
  column's histogram **equi-depth** from the live rows and the accumulator
  resets.  The column stays equi-depth across later exact rebuilds.
* **Hot-column tracking** — the same fold credits each predicate column with
  the crossbars the execution scanned.  :meth:`hottest_column` ranks columns
  by that scan volume; threshold-triggered compaction sorts live rows by the
  hottest column before the dense rewrite, which is what turns an
  unclustered relation into a prunable one.
* **Correlated-pair tracking** — executions whose predicate constrains two
  or more columns also credit each unordered column pair.  Once the top
  pair's volume crosses :data:`DEFAULT_PAIR_THRESHOLD`, the owning
  :class:`~repro.planner.planner.RelationStatistics` builds a
  :class:`~repro.planner.zonemap.PairZoneMap` sketch for it.

The controller is pure bookkeeping — it never touches crossbars and holds no
numpy state proportional to the relation — so it is cheap enough to update on
every execution.  All *decisions* (rebuilds, sketch builds, re-cluster keys)
are applied by the owning ``RelationStatistics``/compaction code, which also
charges the modelled maintenance cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.query import Predicate, attributes_referenced
from repro.obs.metrics import add_stats

#: Accumulated relative estimation error (per column) that triggers an
#: equi-depth histogram rebuild of that column.
DEFAULT_ERROR_THRESHOLD = 4.0

#: Accumulated pair scan volume (in crossbars) that triggers building a
#: correlated-pair zone-map sketch for the top pair.
DEFAULT_PAIR_THRESHOLD = 256.0

#: Floor for the relative-error denominator: below one part per million the
#: estimate and the observation are both "practically zero" and the miss is
#: not actionable.
_ERROR_FLOOR = 1e-6


@dataclass
class ColumnFeedback:
    """Mutable per-column accumulator state."""

    error: float = 0.0
    observations: int = 0
    scan_volume: float = 0.0


@dataclass(frozen=True)
class AdaptiveSnapshot:
    """Point-in-time counters of one controller (or a sum of several)."""

    observations: int = 0
    rebuilds: int = 0
    pair_sketches: int = 0
    accumulated_error: float = 0.0
    hot_column: str | None = None
    hot_pair: tuple[str, str] | None = None

    def __add__(self, other: AdaptiveSnapshot) -> AdaptiveSnapshot:
        # Numeric counters sum; the hottest column/pair carry no volumes, so
        # first non-None wins (shards of one relation converge to the same
        # column anyway) — exactly the shared-algebra rule.
        return add_stats(self, other)


class AdaptiveController:
    """Per-relation feedback accumulator driving rebuilds and re-clustering."""

    def __init__(
        self,
        error_threshold: float = DEFAULT_ERROR_THRESHOLD,
        pair_threshold: float = DEFAULT_PAIR_THRESHOLD,
    ) -> None:
        if error_threshold <= 0 or pair_threshold <= 0:
            raise ValueError("adaptive thresholds must be positive")
        self.error_threshold = float(error_threshold)
        self.pair_threshold = float(pair_threshold)
        self.columns: dict[str, ColumnFeedback] = {}
        self.pair_volume: dict[tuple[str, str], float] = {}
        self.observations = 0
        self.rebuilds = 0
        self.pair_sketches = 0

    # ----------------------------------------------------------------- folds
    def observe(
        self,
        predicate: Predicate,
        estimated: float | None,
        actual: float,
        crossbars_scanned: int,
    ) -> list[str]:
        """Fold one execution's (estimated, actual) pair into the accumulator.

        Returns the columns whose accumulated error crossed the rebuild
        threshold on this observation (their accumulators reset — the caller
        performs the rebuild).  ``crossbars_scanned`` is the scan volume the
        execution actually paid (a host scan passes the full crossbar count:
        it streamed everything).
        """
        names = sorted(attributes_referenced(predicate))
        if not names:
            return []
        self.observations += 1
        volume_share = float(crossbars_scanned) / len(names)
        triggered: list[str] = []
        error = 0.0
        if estimated is not None:
            scale = max(float(estimated), float(actual), _ERROR_FLOOR)
            error = abs(float(estimated) - float(actual)) / scale
        error_share = error / len(names)
        for name in names:
            feedback = self.columns.setdefault(name, ColumnFeedback())
            feedback.observations += 1
            feedback.scan_volume += volume_share
            feedback.error += error_share
            if feedback.error >= self.error_threshold:
                feedback.error = 0.0
                triggered.append(name)
        if len(names) >= 2:
            pair_share = float(crossbars_scanned) / len(names)
            for i, a in enumerate(names):
                for b in names[i + 1:]:
                    key = (a, b)
                    self.pair_volume[key] = self.pair_volume.get(key, 0.0) + pair_share
        return triggered

    def note_rebuild(self, count: int = 1) -> None:
        """Record that the owner applied ``count`` error-triggered rebuilds."""
        self.rebuilds += int(count)

    def note_pair_sketch(self) -> None:
        """Record that the owner built a correlated-pair sketch."""
        self.pair_sketches += 1

    # ------------------------------------------------------------- decisions
    def hottest_column(self) -> str | None:
        """Predicate column with the largest accumulated scan volume."""
        best = None
        best_volume = 0.0
        for name in sorted(self.columns):
            volume = self.columns[name].scan_volume
            if volume > best_volume:
                best, best_volume = name, volume
        return best

    def hot_pair(self) -> tuple[str, str] | None:
        """Top correlated column pair once its volume crosses the threshold."""
        best = None
        best_volume = self.pair_threshold
        for key in sorted(self.pair_volume):
            volume = self.pair_volume[key]
            if volume >= best_volume:
                best, best_volume = key, volume
        return best

    # --------------------------------------------------------------- counters
    def snapshot(self) -> AdaptiveSnapshot:
        return AdaptiveSnapshot(
            observations=self.observations,
            rebuilds=self.rebuilds,
            pair_sketches=self.pair_sketches,
            accumulated_error=sum(f.error for f in self.columns.values()),
            hot_column=self.hottest_column(),
            hot_pair=self.hot_pair(),
        )
