"""Selectivity estimation from small per-column histograms.

The planner needs two estimates the zone maps alone cannot give:

* the *fraction of records* a predicate selects (zone maps only bound which
  crossbars may contain a match), which drives the pim-vs-host routing of
  the query service, and
* the relative selectivity of the individual conjuncts, which orders the
  zone-map checks so the most selective conjunct prunes first (the NOR
  program itself evaluates every conjunct regardless of order — bulk-bitwise
  logic has no short circuit — so ordering only matters for the checks).

:class:`ColumnHistogram` is a classic equi-width histogram over the encoded
domain of one attribute; :class:`SelectivityModel` combines them with the
textbook independence assumptions (conjunctions multiply, disjunctions
combine by inclusion–exclusion).  Estimates are *estimates*: the DML hooks
keep them in sync (inserts/deletes adjust bucket counts, compaction rebuilds
exactly), but no correctness property depends on them — pruning soundness
rests solely on the zone maps.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.db.query import And, Comparison, Or, Predicate
from repro.db.query import (
    BETWEEN,
    EQ,
    GE,
    GT,
    IN,
    LE,
    LT,
    NE,
    clamp_between,
    fold_comparison,
)
from repro.db.schema import Schema

#: Target bucket count of a column histogram (power of two; narrow columns
#: get one bucket per value).
DEFAULT_BUCKETS = 16


class ColumnHistogram:
    """Equi-width histogram over the encoded domain of one attribute."""

    def __init__(self, width: int, buckets: int = DEFAULT_BUCKETS) -> None:
        self.width = int(width)
        bucket_bits = max(0, self.width - int(buckets).bit_length() + 1)
        #: Encoded values shift right by this much to find their bucket.
        self.shift = bucket_bits
        #: Number of encoded values an individual bucket spans.
        self.span = 1 << self.shift
        self.buckets = 1 << max(0, self.width - self.shift)
        self.counts = np.zeros(self.buckets, dtype=np.int64)
        self.total = 0

    @classmethod
    def from_values(
        cls, values: np.ndarray, width: int, buckets: int = DEFAULT_BUCKETS
    ) -> "ColumnHistogram":
        histogram = cls(width, buckets)
        histogram.add(values)
        return histogram

    # ---------------------------------------------------------------- updates
    def _bucket_of(self, values: np.ndarray) -> np.ndarray:
        return (np.asarray(values, dtype=np.uint64) >> np.uint64(self.shift)).astype(
            np.int64
        )

    def add(self, values: np.ndarray) -> None:
        values = np.atleast_1d(np.asarray(values, dtype=np.uint64))
        if values.size == 0:
            return
        self.counts += np.bincount(
            np.clip(self._bucket_of(values), 0, self.buckets - 1),
            minlength=self.buckets,
        )
        self.total += int(values.size)

    def remove(self, values: np.ndarray) -> None:
        values = np.atleast_1d(np.asarray(values, dtype=np.uint64))
        if values.size == 0:
            return
        self.counts -= np.bincount(
            np.clip(self._bucket_of(values), 0, self.buckets - 1),
            minlength=self.buckets,
        )
        np.maximum(self.counts, 0, out=self.counts)
        self.total = max(0, self.total - int(values.size))

    # -------------------------------------------------------------- estimates
    def fraction_eq(self, encoded: int) -> float:
        """Estimated fraction of records equal to ``encoded``."""
        if self.total == 0:
            return 0.0
        bucket = min(encoded >> self.shift, self.buckets - 1)
        return self.counts[bucket] / self.total / self.span

    def fraction_below(self, encoded: int, inclusive: bool) -> float:
        """Estimated fraction of records ``<`` (or ``<=``) ``encoded``."""
        if self.total == 0:
            return 0.0
        limit = encoded + 1 if inclusive else encoded
        if limit <= 0:
            return 0.0
        full_buckets = min(limit >> self.shift, self.buckets)
        below = int(self.counts[:full_buckets].sum())
        if full_buckets < self.buckets:
            # Partial bucket: assume values spread uniformly inside it.
            within = limit - (full_buckets << self.shift)
            below += self.counts[full_buckets] * within / self.span
        return min(1.0, below / self.total)

    def fraction_between(self, low: int, high: int) -> float:
        """Estimated fraction of records in ``[low, high]`` (inclusive)."""
        if low > high:
            return 0.0
        return max(
            0.0,
            self.fraction_below(high, inclusive=True)
            - self.fraction_below(low, inclusive=False),
        )


class SelectivityModel:
    """Predicate selectivity estimates over one relation's histograms."""

    def __init__(self, schema: Schema, histograms: Dict[str, ColumnHistogram]):
        self.schema = schema
        self.histograms = histograms

    @classmethod
    def from_relation(cls, relation, buckets: int = DEFAULT_BUCKETS) -> "SelectivityModel":
        histograms = {
            attribute.name: ColumnHistogram.from_values(
                relation.column(attribute.name), attribute.width, buckets
            )
            for attribute in relation.schema
        }
        return cls(relation.schema, histograms)

    # ---------------------------------------------------------------- updates
    def note_insert(self, record: Mapping[str, object]) -> None:
        for name, histogram in self.histograms.items():
            histogram.add(np.uint64(record[name]))

    def note_remove(self, columns: Mapping[str, np.ndarray]) -> None:
        for name, values in columns.items():
            self.histograms[name].remove(values)

    def note_update(self, attribute: str, old_values: np.ndarray, encoded: int) -> None:
        histogram = self.histograms[attribute]
        histogram.remove(old_values)
        histogram.add(np.full(len(old_values), encoded, dtype=np.uint64))

    def rebuild(self, relation, valid: Optional[np.ndarray] = None) -> None:
        for attribute in self.schema:
            values = relation.column(attribute.name)
            if valid is not None:
                values = values[np.asarray(valid, dtype=bool)]
            fresh = ColumnHistogram(attribute.width, DEFAULT_BUCKETS)
            fresh.add(values)
            self.histograms[attribute.name] = fresh

    # -------------------------------------------------------------- estimates
    def _encode(self, attribute: str, value) -> Optional[int]:
        attr = self.schema.attribute(attribute)
        try:
            return int(attr.encode_value(value))
        except KeyError:
            return None

    def estimate(self, predicate: Predicate) -> float:
        """Estimated selected fraction of the live records, in ``[0, 1]``."""
        if predicate is None:
            return 1.0
        if isinstance(predicate, Comparison):
            return self._estimate_comparison(predicate)
        if isinstance(predicate, And):
            product = 1.0
            for child in predicate.children:
                product *= self.estimate(child)
            return product
        if isinstance(predicate, Or):
            missing = 1.0
            for child in predicate.children:
                missing *= 1.0 - self.estimate(child)
            return 1.0 - missing
        return 1.0

    def _estimate_comparison(self, node: Comparison) -> float:
        histogram = self.histograms.get(node.attribute)
        if histogram is None:
            return 1.0
        max_value = self.schema.attribute(node.attribute).max_value
        op = node.op
        if op == IN:
            fraction = 0.0
            for value in node.values:
                encoded = self._encode(node.attribute, value)
                if encoded is not None and 0 <= encoded <= max_value:
                    fraction += histogram.fraction_eq(encoded)
            return min(1.0, fraction)
        if op == BETWEEN:
            bounds = clamp_between(
                self._encode(node.attribute, node.low),
                self._encode(node.attribute, node.high),
                max_value,
            )
            if bounds is None:
                return 0.0
            return histogram.fraction_between(*bounds)
        encoded = self._encode(node.attribute, node.value)
        # Folded comparisons (the shared definition): all or nothing.
        folded = fold_comparison(op, encoded, max_value)
        if folded is not None:
            return 1.0 if folded else 0.0
        if op == EQ:
            return histogram.fraction_eq(encoded)
        if op == NE:
            return 1.0 - histogram.fraction_eq(encoded)
        if op == LT:
            return histogram.fraction_below(encoded, inclusive=False)
        if op == LE:
            return histogram.fraction_below(encoded, inclusive=True)
        if op == GT:
            return 1.0 - histogram.fraction_below(encoded, inclusive=True)
        if op == GE:
            return 1.0 - histogram.fraction_below(encoded, inclusive=False)
        return 1.0

    def order_conjuncts(self, predicate: Predicate) -> list:
        """Top-level conjuncts ordered most-selective first (stable ties).

        Bulk-bitwise programs evaluate every conjunct regardless of order, so
        ordering drives the *zone-map check*: the conjunct expected to prune
        hardest runs first and the check exits as soon as no candidate
        crossbar remains.
        """
        if predicate is None:
            return []
        conjuncts = (
            list(predicate.children) if isinstance(predicate, And) else [predicate]
        )
        indexed = list(enumerate(conjuncts))
        indexed.sort(key=lambda pair: (self.estimate(pair[1]), pair[0]))
        return [conjunct for _, conjunct in indexed]
