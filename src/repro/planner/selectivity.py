"""Selectivity estimation from small per-column histograms.

The planner needs two estimates the zone maps alone cannot give:

* the *fraction of records* a predicate selects (zone maps only bound which
  crossbars may contain a match), which drives the pim-vs-host routing of
  the query service, and
* the relative selectivity of the individual conjuncts, which orders the
  zone-map checks so the most selective conjunct prunes first (the NOR
  program itself evaluates every conjunct regardless of order — bulk-bitwise
  logic has no short circuit — so ordering only matters for the checks).

:class:`ColumnHistogram` is a classic equi-width histogram over the encoded
domain of one attribute; :class:`SelectivityModel` combines them with the
textbook independence assumptions (conjunctions multiply, disjunctions
combine by inclusion–exclusion).  Estimates are *estimates*: the DML hooks
keep them in sync (inserts/deletes adjust bucket counts, compaction rebuilds
exactly), but no correctness property depends on them — pruning soundness
rests solely on the zone maps.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.db.query import And, Comparison, Or, Predicate
from repro.db.query import (
    BETWEEN,
    EQ,
    GE,
    GT,
    IN,
    LE,
    LT,
    NE,
    clamp_between,
    fold_comparison,
)
from repro.db.schema import Schema

#: Target bucket count of a column histogram (power of two; narrow columns
#: get one bucket per value).
DEFAULT_BUCKETS = 16


class ColumnHistogram:
    """Equi-width histogram over the encoded domain of one attribute."""

    #: Bucketing discipline, used by the adaptive rebuild logic and stats.
    kind = "equi-width"

    def __init__(self, width: int, buckets: int = DEFAULT_BUCKETS) -> None:
        self.width = int(width)
        bucket_bits = max(0, self.width - int(buckets).bit_length() + 1)
        #: Encoded values shift right by this much to find their bucket.
        self.shift = bucket_bits
        #: Number of encoded values an individual bucket spans.
        self.span = 1 << self.shift
        self.buckets = 1 << max(0, self.width - self.shift)
        self.counts = np.zeros(self.buckets, dtype=np.int64)
        self.total = 0

    @classmethod
    def from_values(
        cls, values: np.ndarray, width: int, buckets: int = DEFAULT_BUCKETS
    ) -> ColumnHistogram:
        histogram = cls(width, buckets)
        histogram.add(values)
        return histogram

    # ---------------------------------------------------------------- updates
    def _bucket_of(self, values: np.ndarray) -> np.ndarray:
        return (np.asarray(values, dtype=np.uint64) >> np.uint64(self.shift)).astype(
            np.int64
        )

    def add(self, values: np.ndarray) -> None:
        values = np.atleast_1d(np.asarray(values, dtype=np.uint64))
        if values.size == 0:
            return
        self.counts += np.bincount(
            np.clip(self._bucket_of(values), 0, self.buckets - 1),
            minlength=self.buckets,
        )
        self.total += int(values.size)

    def remove(self, values: np.ndarray) -> None:
        values = np.atleast_1d(np.asarray(values, dtype=np.uint64))
        if values.size == 0:
            return
        self.counts -= np.bincount(
            np.clip(self._bucket_of(values), 0, self.buckets - 1),
            minlength=self.buckets,
        )
        np.maximum(self.counts, 0, out=self.counts)
        self.total = max(0, self.total - int(values.size))

    # -------------------------------------------------------------- estimates
    def fraction_eq(self, encoded: int) -> float:
        """Estimated fraction of records equal to ``encoded``."""
        if self.total == 0:
            return 0.0
        bucket = min(encoded >> self.shift, self.buckets - 1)
        return self.counts[bucket] / self.total / self.span

    def fraction_below(self, encoded: int, inclusive: bool) -> float:
        """Estimated fraction of records ``<`` (or ``<=``) ``encoded``."""
        if self.total == 0:
            return 0.0
        limit = encoded + 1 if inclusive else encoded
        if limit <= 0:
            return 0.0
        full_buckets = min(limit >> self.shift, self.buckets)
        below = int(self.counts[:full_buckets].sum())
        if full_buckets < self.buckets:
            # Partial bucket: assume values spread uniformly inside it.
            within = limit - (full_buckets << self.shift)
            below += self.counts[full_buckets] * within / self.span
        return min(1.0, below / self.total)

    def fraction_between(self, low: int, high: int) -> float:
        """Estimated fraction of records in ``[low, high]`` (inclusive)."""
        if low > high:
            return 0.0
        return max(
            0.0,
            self.fraction_below(high, inclusive=True)
            - self.fraction_below(low, inclusive=False),
        )


class EquiDepthHistogram:
    """Equi-depth histogram: bucket edges at the quantiles of the live values.

    The adaptive feedback loop rebuilds a column equi-depth when the
    equi-width estimates keep missing (skewed columns concentrate their mass
    in a few equi-width buckets, so per-value estimates are off by the skew
    factor).  The public surface — ``add``/``remove``/``fraction_eq``/
    ``fraction_below``/``fraction_between``/``from_values`` — is identical to
    :class:`ColumnHistogram`, so :class:`SelectivityModel` routes estimates
    through either variant unchanged and DML hooks keep both approximately
    maintained between exact rebuilds.

    Bucket ``i`` covers the encoded range ``(edges[i-1], edges[i]]`` (bucket
    0 starts at 0; the last edge is pinned to the domain maximum so the whole
    domain is covered).  Estimates assume a uniform spread *inside* a bucket,
    as the equi-width variant does — the gain is that quantile edges make the
    buckets narrow exactly where the mass concentrates.
    """

    kind = "equi-depth"

    def __init__(self, width: int, buckets: int = DEFAULT_BUCKETS) -> None:
        self.width = int(width)
        self.max_value = (1 << self.width) - 1
        self.edges = np.array([self.max_value], dtype=np.uint64)
        self.counts = np.zeros(1, dtype=np.int64)
        self.total = 0
        self._target_buckets = int(buckets)

    @property
    def buckets(self) -> int:
        return len(self.edges)

    @classmethod
    def from_values(
        cls, values: np.ndarray, width: int, buckets: int = DEFAULT_BUCKETS
    ) -> EquiDepthHistogram:
        histogram = cls(width, buckets)
        values = np.atleast_1d(np.asarray(values, dtype=np.uint64))
        if values.size == 0:
            return histogram
        ordered = np.sort(values)
        count = int(ordered.size)
        target = max(1, min(int(buckets), count))
        # Quantile positions: the last value of each of `target` equal slices.
        positions = (np.arange(1, target + 1) * count) // target - 1
        edges = np.unique(ordered[positions]).astype(np.uint64)
        # Pin the last edge to the domain maximum so every encodable value
        # (including out-of-histogram inserts) lands in a bucket.
        if int(edges[-1]) != histogram.max_value:
            edges = np.append(edges, np.uint64(histogram.max_value))
        histogram.edges = edges
        histogram.counts = np.zeros(len(edges), dtype=np.int64)
        histogram.add(values)
        return histogram

    # ---------------------------------------------------------------- updates
    def _bucket_of(self, values: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(self.edges, values, side="left")
        return np.clip(idx, 0, len(self.edges) - 1)

    def add(self, values: np.ndarray) -> None:
        values = np.atleast_1d(np.asarray(values, dtype=np.uint64))
        if values.size == 0:
            return
        self.counts += np.bincount(
            self._bucket_of(values), minlength=len(self.edges)
        )
        self.total += int(values.size)

    def remove(self, values: np.ndarray) -> None:
        values = np.atleast_1d(np.asarray(values, dtype=np.uint64))
        if values.size == 0:
            return
        self.counts -= np.bincount(
            self._bucket_of(values), minlength=len(self.edges)
        )
        np.maximum(self.counts, 0, out=self.counts)
        self.total = max(0, self.total - int(values.size))

    # -------------------------------------------------------------- estimates
    def _bucket_low(self, bucket: int) -> int:
        return int(self.edges[bucket - 1]) + 1 if bucket > 0 else 0

    def fraction_eq(self, encoded: int) -> float:
        """Estimated fraction of records equal to ``encoded``."""
        if self.total == 0:
            return 0.0
        bucket = int(self._bucket_of(np.uint64(min(encoded, self.max_value)))[()])
        span = int(self.edges[bucket]) - self._bucket_low(bucket) + 1
        return self.counts[bucket] / self.total / span

    def fraction_below(self, encoded: int, inclusive: bool) -> float:
        """Estimated fraction of records ``<`` (or ``<=``) ``encoded``."""
        if self.total == 0:
            return 0.0
        limit = encoded + 1 if inclusive else encoded
        if limit <= 0:
            return 0.0
        # Buckets whose upper edge is below the limit are entirely selected.
        full_buckets = int(
            np.searchsorted(
                self.edges, np.uint64(min(limit - 1, self.max_value)), side="right"
            )
        )
        below = int(self.counts[:full_buckets].sum())
        if full_buckets < len(self.edges):
            low = self._bucket_low(full_buckets)
            span = int(self.edges[full_buckets]) - low + 1
            within = min(max(0, limit - low), span)
            below += self.counts[full_buckets] * within / span
        return min(1.0, below / self.total)

    def fraction_between(self, low: int, high: int) -> float:
        """Estimated fraction of records in ``[low, high]`` (inclusive)."""
        if low > high:
            return 0.0
        return max(
            0.0,
            self.fraction_below(high, inclusive=True)
            - self.fraction_below(low, inclusive=False),
        )


#: Either histogram variant — they share the estimation/maintenance surface.
AnyHistogram = ColumnHistogram | EquiDepthHistogram


class SelectivityModel:
    """Predicate selectivity estimates over one relation's histograms."""

    def __init__(self, schema: Schema, histograms: dict[str, AnyHistogram]):
        self.schema = schema
        self.histograms = histograms

    @classmethod
    def from_relation(cls, relation, buckets: int = DEFAULT_BUCKETS) -> SelectivityModel:
        histograms = {
            attribute.name: ColumnHistogram.from_values(
                relation.column(attribute.name), attribute.width, buckets
            )
            for attribute in relation.schema
        }
        return cls(relation.schema, histograms)

    # ---------------------------------------------------------------- updates
    def note_insert(self, record: Mapping[str, object]) -> None:
        for name, histogram in self.histograms.items():
            histogram.add(np.uint64(record[name]))

    def note_remove(self, columns: Mapping[str, np.ndarray]) -> None:
        for name, values in columns.items():
            self.histograms[name].remove(values)

    def note_update(self, attribute: str, old_values: np.ndarray, encoded: int) -> None:
        histogram = self.histograms[attribute]
        histogram.remove(old_values)
        histogram.add(np.full(len(old_values), encoded, dtype=np.uint64))

    def rebuild(self, relation, valid: np.ndarray | None = None) -> None:
        """Rebuild every histogram exactly, preserving each column's variant.

        A column the feedback loop promoted to equi-depth stays equi-depth
        across compactions (its quantile edges are recomputed from the live
        values); columns without an adaptive verdict stay equi-width.
        """
        for attribute in self.schema:
            values = relation.column(attribute.name)
            if valid is not None:
                values = values[np.asarray(valid, dtype=bool)]
            current = self.histograms.get(attribute.name)
            variant = type(current) if current is not None else ColumnHistogram
            self.histograms[attribute.name] = variant.from_values(
                values, attribute.width, DEFAULT_BUCKETS
            )

    def rebuild_column(
        self,
        relation,
        name: str,
        valid: np.ndarray | None = None,
        equi_depth: bool = True,
    ) -> AnyHistogram:
        """Rebuild one column's histogram exactly from the live values.

        The feedback loop calls this with ``equi_depth=True`` when a column's
        accumulated estimation error crosses the rebuild threshold; the
        column keeps the equi-depth variant from then on (see
        :meth:`rebuild`).
        """
        attribute = self.schema.attribute(name)
        values = relation.column(name)
        if valid is not None:
            values = values[np.asarray(valid, dtype=bool)]
        variant = EquiDepthHistogram if equi_depth else ColumnHistogram
        fresh = variant.from_values(values, attribute.width, DEFAULT_BUCKETS)
        self.histograms[name] = fresh
        return fresh

    # -------------------------------------------------------------- estimates
    def _encode(self, attribute: str, value) -> int | None:
        attr = self.schema.attribute(attribute)
        try:
            return int(attr.encode_value(value))
        except KeyError:
            return None

    def estimate(self, predicate: Predicate) -> float:
        """Estimated selected fraction of the live records, in ``[0, 1]``."""
        if predicate is None:
            return 1.0
        if isinstance(predicate, Comparison):
            return self._estimate_comparison(predicate)
        if isinstance(predicate, And):
            product = 1.0
            for child in predicate.children:
                product *= self.estimate(child)
            return product
        if isinstance(predicate, Or):
            missing = 1.0
            for child in predicate.children:
                missing *= 1.0 - self.estimate(child)
            return 1.0 - missing
        return 1.0

    def _estimate_comparison(self, node: Comparison) -> float:
        histogram = self.histograms.get(node.attribute)
        if histogram is None:
            return 1.0
        max_value = self.schema.attribute(node.attribute).max_value
        op = node.op
        if op == IN:
            fraction = 0.0
            for value in node.values:
                encoded = self._encode(node.attribute, value)
                if encoded is not None and 0 <= encoded <= max_value:
                    fraction += histogram.fraction_eq(encoded)
            return min(1.0, fraction)
        if op == BETWEEN:
            bounds = clamp_between(
                self._encode(node.attribute, node.low),
                self._encode(node.attribute, node.high),
                max_value,
            )
            if bounds is None:
                return 0.0
            return histogram.fraction_between(*bounds)
        encoded = self._encode(node.attribute, node.value)
        # Folded comparisons (the shared definition): all or nothing.
        folded = fold_comparison(op, encoded, max_value)
        if folded is not None:
            return 1.0 if folded else 0.0
        if op == EQ:
            return histogram.fraction_eq(encoded)
        if op == NE:
            return 1.0 - histogram.fraction_eq(encoded)
        if op == LT:
            return histogram.fraction_below(encoded, inclusive=False)
        if op == LE:
            return histogram.fraction_below(encoded, inclusive=True)
        if op == GT:
            return 1.0 - histogram.fraction_below(encoded, inclusive=True)
        if op == GE:
            return 1.0 - histogram.fraction_below(encoded, inclusive=False)
        return 1.0

    def order_conjuncts(self, predicate: Predicate) -> list:
        """Top-level conjuncts ordered most-selective first (stable ties).

        Bulk-bitwise programs evaluate every conjunct regardless of order, so
        ordering drives the *zone-map check*: the conjunct expected to prune
        hardest runs first and the check exits as soon as no candidate
        crossbar remains.
        """
        if predicate is None:
            return []
        conjuncts = (
            list(predicate.children) if isinstance(predicate, And) else [predicate]
        )
        indexed = list(enumerate(conjuncts))
        indexed.sort(key=lambda pair: (self.estimate(pair[1]), pair[0]))
        return [conjunct for _, conjunct in indexed]
