"""Semantic candidate-set cache: memoized pruning outcomes per predicate fragment.

The :class:`~repro.service.cache.ProgramCache` memoizes *compilation*; this
module memoizes *pruning outcomes*.  It is PartitionCache's core idea — cache
partition identifiers per subquery and intersect the cached sets on reuse —
transplanted to crossbars-as-partitions:

* The cache is keyed by **normalized predicate fragments**, the top-level
  conjuncts :func:`~repro.db.compiler.partition_conjuncts` already splits a
  WHERE clause into.  Normalization (:func:`normalize_fragment`) flattens
  nested AND/OR nests, deduplicates and canonically orders children, and
  sorts IN lists, so syntactic variants of one fragment share an entry.
  The normalizer is a process-wide memo, so the per-shard caches of a
  sharded relation share the normalized keys (the expensive part of a
  lookup) even though each shard caches its own masks.
* Each entry stores the fragment's **candidate-crossbar bitmask** — the
  conservative per-crossbar "some live row may satisfy this" verdict of the
  zone maps, *excluding* the ``live > 0`` prefilter.  A conjunctive query
  intersects the cached masks of its fragments (with the live mask applied
  fresh at assembly time), so a partial hit still skips most of the walk: a
  new conjunct only narrows the cached superset.
* Invalidation is **per-crossbar epoch counters**, not a wholesale clear:
  INSERT and UPDATE bump only the epochs of the crossbars whose bounds they
  widened, and a cached set re-validates by re-checking just the stale
  crossbars.  DELETE never invalidates — bounds only stay conservatively
  wide, and the shrunken live set is intersected fresh by the caller.
  Compaction moves rows between crossbars (and a fresh-crossbar INSERT can
  *narrow* bounds), so both bump every epoch.

The modelled cost follows the zone-map check's units: a cold fragment pays
the two-level walk (pages, then crossbars of surviving pages), a
re-validation pays one entry per stale crossbar, and a clean hit pays
nothing.  Soundness is unchanged from :class:`~repro.planner.zonemap.ZoneMaps`
— a cached mask is bit-identical to the mask a cold walk would produce,
which is what keeps pruned execution bit-exact.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from collections.abc import Hashable

import numpy as np

from repro.db.query import BETWEEN, IN, And, Comparison, Or, Predicate
from repro.obs.metrics import add_stats, sub_stats
from repro.planner.zonemap import ZoneMaps

#: Cached fragment masks kept per relation (fragments are small — a mask and
#: an epoch vector — so the cache can be generous).
DEFAULT_FRAGMENT_CAPACITY = 256


# ---------------------------------------------------------------------------
# fragment normalization
# ---------------------------------------------------------------------------

def _normalize(node: Predicate) -> Hashable:
    if node is None:
        return ("true",)
    if isinstance(node, Comparison):
        if node.op == IN:
            # IN lists are sets: order (and duplicates) must not split keys.
            values = tuple(sorted(set(node.values), key=repr))
            return ("cmp", node.attribute, node.op, values)
        if node.op == BETWEEN:
            return ("cmp", node.attribute, node.op, (node.low, node.high))
        return ("cmp", node.attribute, node.op, (node.value,))
    if isinstance(node, (And, Or)):
        tag = "and" if isinstance(node, And) else "or"
        children = []
        for child in node.children:
            key = _normalize(child)
            if isinstance(key, tuple) and key and key[0] == tag:
                children.extend(key[1])  # flatten And(And(...)) / Or(Or(...))
            else:
                children.append(key)
        return (tag, tuple(sorted(set(children), key=repr)))
    # Unknown node kinds never prune (the zone maps return all-ones), so
    # keying on the node itself is safe — distinct unknowns stay distinct.
    return ("opaque", node)


@lru_cache(maxsize=4096)
def normalize_fragment(fragment: Predicate) -> Hashable:
    """Canonical hashable key of one predicate fragment.

    The memo is process-wide on purpose: the predicate IR is frozen and
    hashable, and every :class:`CandidateSetCache` — in particular the K
    per-shard caches of one sharded relation — shares the normalized keys.
    """
    return _normalize(fragment)


# ---------------------------------------------------------------------------
# counters
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CandidateCacheStats:
    """Counters of a :class:`CandidateSetCache` (or a sum/delta of several).

    ``entries_checked`` is in zone-map-entry units — the same unit
    :meth:`~repro.planner.zonemap.ZoneMaps.charge_check` charges — so it is
    directly comparable with the cost of uncached walks.
    """

    hits: int = 0
    misses: int = 0
    revalidations: int = 0
    stale_crossbars: int = 0
    evictions: int = 0
    entries_checked: int = 0
    #: Occupancy/capacity of the cache the counters came from (summed when
    #: aggregating several caches, preserved across a delta).
    entries: int = 0
    capacity: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.revalidations

    @property
    def hit_rate(self) -> float:
        """Clean hits over lookups (re-validations count as lookups)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __add__(self, other: CandidateCacheStats) -> CandidateCacheStats:
        # Occupancy/capacity sum too: adding aggregates *distinct* caches.
        return add_stats(self, other)

    def __sub__(self, other: CandidateCacheStats) -> CandidateCacheStats:
        # Subtracting deltas two snapshots of the *same* cache set, so the
        # later snapshot's occupancy/capacity carry through unchanged.
        return sub_stats(self, other, keep=("entries", "capacity"))


@dataclass
class _CachedFragment:
    """One cached fragment: its mask and the epochs it was computed under."""

    mask: np.ndarray  # read-only bool, one slot per crossbar
    epochs: np.ndarray  # int64 snapshot of the cache's epoch vector


# ---------------------------------------------------------------------------
# the cache
# ---------------------------------------------------------------------------

class CandidateSetCache:
    """LRU cache of per-fragment candidate-crossbar masks with epoch re-validation.

    Owned by one :class:`~repro.planner.planner.RelationStatistics` (one per
    shard of a sharded relation).  The cached masks are *bounds-only*: they
    answer "could any value in this crossbar's range satisfy the fragment",
    independent of the live counts — the caller intersects ``live > 0``
    fresh, which is what lets DELETE leave the cache untouched.
    """

    def __init__(
        self, zonemaps: ZoneMaps, capacity: int = DEFAULT_FRAGMENT_CAPACITY
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.zonemaps = zonemaps
        self.capacity = int(capacity)
        #: Per-crossbar epoch counters; a bump marks every cached verdict for
        #: that crossbar stale.
        self.epochs = np.zeros(zonemaps.crossbars, dtype=np.int64)
        self._entries: OrderedDict[Hashable, _CachedFragment] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._revalidations = 0
        self._stale_crossbars = 0
        self._evictions = 0
        self._entries_checked = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ---------------------------------------------------------- invalidation
    def bump(self, crossbars) -> None:
        """Mark the given crossbars stale (INSERT/UPDATE widened their bounds)."""
        crossbars = np.asarray(crossbars, dtype=np.int64)
        if crossbars.size:
            self.epochs[crossbars] += 1

    def bump_all(self) -> None:
        """Mark every crossbar stale (compaction rebuilt the maps exactly)."""
        self.epochs += 1

    def clear(self) -> None:
        """Drop every cached fragment (counters are kept)."""
        self._entries.clear()

    # ---------------------------------------------------------------- lookup
    def lookup(
        self, fragment: Predicate, crossbars_per_page: int
    ) -> tuple[np.ndarray, int]:
        """Candidate mask of one fragment plus the entries this call consulted.

        Returns ``(mask, entries)`` where ``mask`` is the read-only
        bounds-only candidate mask and ``entries`` is the modelled zone-map
        work of *this* call: ``0`` on a clean hit, the stale-crossbar count
        on a re-validation, the full two-level walk on a miss.
        """
        key = normalize_fragment(fragment)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            stale = np.nonzero(entry.epochs != self.epochs)[0]
            if stale.size == 0:
                self._hits += 1
                return entry.mask, 0
            # Re-validate just the stale crossbars: bounds of the others are
            # unchanged (every bounds write bumps an epoch), so their cached
            # verdicts still hold.
            possible = self.zonemaps.possible(fragment)
            mask = entry.mask.copy()
            mask[stale] = possible[stale]
            mask.setflags(write=False)
            entry.mask = mask
            entry.epochs = self.epochs.copy()
            consulted = int(stale.size)
            self._revalidations += 1
            self._stale_crossbars += consulted
            self._entries_checked += consulted
            return mask, consulted
        self._misses += 1
        mask = self.zonemaps.possible(fragment)
        mask.setflags(write=False)
        consulted = self._cold_walk_entries(mask, crossbars_per_page)
        self._entries[key] = _CachedFragment(mask, self.epochs.copy())
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1
        self._entries_checked += consulted
        return mask, consulted

    def _cold_walk_entries(
        self, possible: np.ndarray, crossbars_per_page: int
    ) -> int:
        """Modelled two-level cost of one uncached fragment check.

        Mirrors :meth:`~repro.planner.zonemap.ZoneMaps.check`: the per-page
        summaries first, per-crossbar entries only inside pages the summary
        (restricted to live crossbars) could not rule out.
        """
        crossbars = self.zonemaps.crossbars
        pages = max(1, -(-crossbars // crossbars_per_page))
        padded = np.zeros(pages * crossbars_per_page, dtype=bool)
        padded[:crossbars] = possible & (self.zonemaps.live > 0)
        surviving = int(
            padded.reshape(pages, crossbars_per_page).any(axis=1).sum()
        )
        return pages + surviving * crossbars_per_page

    # --------------------------------------------------------------- counters
    def stats(self) -> CandidateCacheStats:
        """Point-in-time snapshot of the counters (plus occupancy/capacity)."""
        return CandidateCacheStats(
            hits=self._hits,
            misses=self._misses,
            revalidations=self._revalidations,
            stale_crossbars=self._stale_crossbars,
            evictions=self._evictions,
            entries_checked=self._entries_checked,
            entries=len(self._entries),
            capacity=self.capacity,
        )
